//! Deep dive into one SPEC-like workload: run `181.mcf` end-to-end and
//! compare what the heuristic, OKN, and BDH each flag against the
//! measured per-load miss profile.
//!
//! ```text
//! cargo run --release --example benchmark_deep_dive [benchmark-name]
//! ```

use std::collections::BTreeSet;

use delinquent_loads::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "181.mcf".to_owned());
    let bench = delinquent_loads::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`; see dl_workloads::all()"));
    println!("== {} — {}", bench.name, bench.description);

    let pipeline = Pipeline::new();
    let run = pipeline.run(&bench, OptLevel::O0, 1, CacheConfig::paper_baseline());

    let heuristic = Heuristic::default();
    let ours: BTreeSet<usize> = heuristic.predict(run.ctx()).into_iter().collect();
    let okn: BTreeSet<usize> = Okn.predict(run.ctx()).into_iter().collect();
    let bdh: BTreeSet<usize> = Bdh.predict(run.ctx()).into_iter().collect();

    let lambda = run.lambda();
    for (label, set) in [("heuristic", &ours), ("OKN", &okn), ("BDH", &bdh)] {
        let indices: Vec<usize> = set.iter().copied().collect();
        println!(
            "{label:>9}: π = {:5.2}%  ρ = {:5.1}%  ({} loads)",
            100.0 * pi(set.len(), lambda),
            100.0 * rho(&run.result, &indices),
            set.len()
        );
    }

    // The ten loads with the most misses, and who caught them.
    let mut by_miss: Vec<&dl_analysis::extract::LoadInfo> = run.analysis().loads.iter().collect();
    by_miss.sort_by_key(|l| std::cmp::Reverse(run.result.load_misses[l.index]));
    println!(
        "\ntop-10 missing loads (total misses {}):",
        run.result.load_misses_total
    );
    println!(
        "{:>6} {:>9} {:>8} {:^9} {:^5} {:^5}  pattern",
        "inst", "misses", "execs", "heuristic", "OKN", "BDH"
    );
    for load in by_miss.iter().take(10) {
        let i = load.index;
        let yes = |s: &BTreeSet<usize>| if s.contains(&i) { "yes" } else { "-" };
        println!(
            "{:>6} {:>9} {:>8} {:^9} {:^5} {:^5}  {}",
            i,
            run.result.load_misses[i],
            run.result.exec_counts[i],
            yes(&ours),
            yes(&okn),
            yes(&bdh),
            load.patterns
                .first()
                .map_or_else(|| "?".to_owned(), ToString::to_string),
        );
    }
}
