//! Quickstart: compile a MiniC kernel, simulate it, and ask the
//! heuristic which loads are possibly delinquent.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use delinquent_loads::prelude::*;

fn main() {
    // Two kinds of memory behaviour side by side: a cache-friendly
    // running sum over a small array, and a pointer chase over a heap
    // list far bigger than the cache.
    let source = r#"
        struct node { int value; struct node* next; int pad1; int pad2; };
        int small[64];
        int main() {
            struct node* head; struct node* p;
            int i; int sum;
            head = 0;
            for (i = 0; i < 8000; i = i + 1) {
                p = malloc(sizeof(struct node));
                p->value = i;
                p->next = head;
                head = p;
            }
            sum = 0;
            for (i = 0; i < 8000; i = i + 1) {
                sum = sum + small[i & 63];          // cache-friendly
            }
            for (p = head; p != 0; p = p->next) {
                sum = sum + p->value;               // delinquent chase
            }
            print(sum);
            return 0;
        }
    "#;

    let program = compile(source, OptLevel::O0).expect("kernel compiles");
    let result = run(&program, &RunConfig::default()).expect("kernel runs");
    let analysis = analyze_program(&program, &AnalysisConfig::default());

    let heuristic = Heuristic::default();
    let delinquent = heuristic.classify(&analysis, &result.exec_counts);

    println!(
        "static loads: {}   flagged: {} (π = {:.1}%)   coverage ρ = {:.1}%",
        analysis.loads.len(),
        delinquent.len(),
        100.0 * pi(delinquent.len(), analysis.loads.len()),
        100.0 * rho(&result, &delinquent),
    );
    println!();
    println!(
        "{:>6} {:>10} {:>9} {:>7}  pattern",
        "inst", "execs", "misses", "phi"
    );
    for load in &analysis.loads {
        let execs = result.exec_counts[load.index];
        let misses = result.load_misses[load.index];
        if execs == 0 {
            continue;
        }
        let phi = heuristic.score(load, execs);
        let mark = if delinquent.contains(&load.index) {
            " <== delinquent"
        } else {
            ""
        };
        println!(
            "{:>6} {:>10} {:>9} {:>7.2}  {}{}",
            load.index,
            execs,
            misses,
            phi,
            load.patterns
                .first()
                .map_or_else(|| "?".to_owned(), ToString::to_string),
            mark
        );
    }
}
