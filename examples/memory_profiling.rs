//! The methodology the heuristic replaces: full memory profiling.
//!
//! The paper (§3) explains why static identification matters — the
//! off-line alternative is to capture a memory trace and push it
//! through a cache simulator, which is "time and space consuming".
//! This example does exactly that for one workload: capture the trace
//! once, replay it across a sweep of cache geometries, and compare the
//! trace-derived delinquent sets against what the *static* heuristic
//! flagged without ever running the program.
//!
//! ```text
//! cargo run --release --example memory_profiling [benchmark-name]
//! ```

use std::time::Instant;

use delinquent_loads::prelude::*;
use delinquent_loads::sim::trace::{capture_trace, replay_trace};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "129.compress".to_owned());
    let bench = delinquent_loads::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    println!("== memory profiling methodology on {}", bench.name);

    let program = bench.compile(OptLevel::O0).expect("compiles");
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    let config = RunConfig {
        input: bench.input1.clone(),
        ..RunConfig::default()
    };

    // One traced execution...
    let t0 = Instant::now();
    let (trace, result) = capture_trace(&program, &config).expect("runs");
    let capture_ms = t0.elapsed().as_millis();
    println!(
        "captured {} accesses ({} MiB of trace) in {capture_ms} ms",
        trace.len(),
        trace.len() * std::mem::size_of_val(&trace[0]) / (1024 * 1024)
    );

    // ...then replay across geometries without re-executing.
    let heuristic = Heuristic::default();
    let static_set = heuristic.classify(&analysis, &result.exec_counts);
    println!(
        "\n{:>10} {:>10} {:>12} {:>14} {:>12}",
        "cache", "misses", "replay ms", "ideal-90 |Δ|", "static ρ"
    );
    for geometry in [
        CacheConfig::kb(4, 2),
        CacheConfig::kb(8, 4),
        CacheConfig::kb(16, 4),
        CacheConfig::kb(32, 4),
        CacheConfig::kb(64, 8),
    ] {
        let t1 = Instant::now();
        let stats = replay_trace(&trace, geometry, program.insts.len());
        let replay_ms = t1.elapsed().as_millis();
        // Trace-derived ideal set for 90% coverage at this geometry.
        let mut by_miss: Vec<usize> = (0..program.insts.len())
            .filter(|&i| stats.load_misses[i] > 0)
            .collect();
        by_miss.sort_by_key(|&i| std::cmp::Reverse(stats.load_misses[i]));
        let target = stats.load_misses_total * 9 / 10;
        let mut covered = 0;
        let mut ideal = 0;
        for &i in &by_miss {
            if covered >= target {
                break;
            }
            covered += stats.load_misses[i];
            ideal += 1;
        }
        // How much of this geometry's misses does the *static* set cover?
        let static_rho = if stats.load_misses_total == 0 {
            0.0
        } else {
            static_set
                .iter()
                .map(|&i| stats.load_misses[i])
                .sum::<u64>() as f64
                / stats.load_misses_total as f64
        };
        println!(
            "{:>10} {:>10} {:>12} {:>14} {:>11.1}%",
            geometry
                .to_string()
                .split_whitespace()
                .next()
                .unwrap_or("?"),
            stats.load_misses_total,
            replay_ms,
            ideal,
            100.0 * static_rho
        );
    }
    println!(
        "\nThe static set was computed once, from assembly; memory profiling \
         needs the trace (and its storage) for every new configuration."
    );
}
