//! The paper's motivating use case: drive a prefetching decision from
//! the static classification. This example combines basic-block
//! profiling with the heuristic (the §9 ε-scheme), then reports how
//! much of the program's miss traffic a prefetcher instrumenting only
//! those loads would see, versus instrumenting everything profiling
//! flags.
//!
//! ```text
//! cargo run --release --example prefetch_guidance [benchmark-name]
//! ```

use delinquent_loads::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "183.equake".to_owned());
    let bench = delinquent_loads::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    println!("== prefetch site selection for {}", bench.name);

    let pipeline = Pipeline::new();
    let run = pipeline.run(&bench, OptLevel::O0, 1, CacheConfig::paper_training());
    let lambda = run.lambda();

    let heuristic = Heuristic::default();
    let delta_h = heuristic.predict(run.ctx());
    let delta_p = profiling_set(run.program(), &run.result, 0.9);
    let scored = heuristic.score_all(run.analysis(), &run.result.exec_counts);

    println!(
        "\n{:<26} {:>7} {:>8} {:>8}",
        "site-selection policy", "sites", "π", "ρ"
    );
    let show = |label: &str, set: &[usize]| {
        println!(
            "{:<26} {:>7} {:>7.2}% {:>7.1}%",
            label,
            set.len(),
            100.0 * pi(set.len(), lambda),
            100.0 * rho(&run.result, set)
        );
    };
    show("all loads", &run.load_indices());
    show("hot blocks (profiling)", &delta_p);
    show("heuristic", &delta_h);
    for eps in [0.0, 0.1, 0.3] {
        let combined = combine_with_profiling(&delta_p, &scored, &delta_h, eps);
        show(&format!("profiling ∩ heuristic ε={eps}"), &combined);
    }

    println!(
        "\nA prefetcher instrumenting only the ε=0 set touches a fraction of \
         the sites while still seeing most of the miss traffic — the paper's \
         overhead-containment argument in one table."
    );
}
