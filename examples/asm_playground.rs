//! The disassembler path: the paper's framework is "loosely coupled"
//! with the compiler, so it also works on *hand-written or
//! disassembled* assembly. This example writes a kernel directly in
//! assembly text, round-trips it through the binary encoder (the
//! "executable" form), and runs the analysis + heuristic on the
//! decoded image — no compiler involved anywhere.
//!
//! ```text
//! cargo run --release --example asm_playground
//! ```

use delinquent_loads::mips::encode::{decode_program, encode_program};
use delinquent_loads::mips::parse::parse_asm;
use delinquent_loads::mips::program::Program;
use delinquent_loads::prelude::*;

fn main() {
    // A hand-written pointer chase: $a0 carries the list head; each
    // node stores its successor at offset 0 and a payload at offset 4.
    // Built next to it, a strided sweep over a global table.
    let source = "\
        \t.data\n\
        table:\t.space 65536\n\
        \t.text\n\
        main:\n\
        \taddiu $sp, $sp, -16\n\
        # build a strided address stream over `table`\n\
        \tli   $t0, 0\n\
        \tli   $t3, 8192\n\
        .Lsweep:\n\
        \tsll  $t1, $t0, 3\n\
        \taddiu $t2, $gp, -32768\n\
        \taddu $t1, $t2, $t1\n\
        \tlw   $t4, 0($t1)\n\
        \taddiu $t0, $t0, 1\n\
        \tbne  $t0, $t3, .Lsweep\n\
        \taddiu $sp, $sp, 16\n\
        \tli   $v0, 10\n\
        \tli   $a0, 0\n\
        \tsyscall\n";

    let parsed = parse_asm(source).expect("assembly parses");

    // Through the executable image and back — the objdump step.
    let image = encode_program(&parsed).expect("encodes");
    let decoded = decode_program(&image).expect("decodes");
    assert_eq!(decoded, parsed.insts, "binary round trip is exact");
    println!(
        "assembled {} instructions into {} bytes of text segment",
        parsed.insts.len(),
        image.len() * 4
    );

    let program = Program {
        insts: decoded,
        ..parsed
    };
    let result = run(&program, &RunConfig::default()).expect("runs");
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    let heuristic = Heuristic::default();
    let flagged = heuristic.classify(&analysis, &result.exec_counts);

    println!(
        "loads: {}   flagged: {:?}   coverage: {:.1}%",
        analysis.loads.len(),
        flagged,
        100.0 * rho(&result, &flagged)
    );
    for load in &analysis.loads {
        println!(
            "  inst {:>2}  misses {:>5}  φ {:>5.2}  {}",
            load.index,
            result.load_misses[load.index],
            heuristic.score(load, result.exec_counts[load.index]),
            load.patterns
                .first()
                .map_or_else(|| "?".to_owned(), ToString::to_string)
        );
    }
}
