//! Re-derive the aggregate-class weights from scratch on the eleven
//! training benchmarks (the paper's §7 training phase) and compare
//! them with the published Table 5 values — then evaluate both weight
//! sets on the held-out benchmarks.
//!
//! ```text
//! cargo run --release --example train_weights
//! ```

use delinquent_loads::heuristic::training::{train_weights, TrainingParams, TrainingRun};
use delinquent_loads::prelude::*;

fn main() {
    let pipeline = Pipeline::new();
    let runs: Vec<_> = delinquent_loads::workloads::training_set()
        .into_iter()
        .map(|b| {
            let run = pipeline.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
            (b, run)
        })
        .collect();
    let views: Vec<TrainingRun<'_>> = runs
        .iter()
        .map(|(b, r)| TrainingRun {
            name: b.name,
            loads: &r.analysis().loads,
            exec_counts: &r.result.exec_counts,
            load_misses: &r.result.load_misses,
            total_load_misses: r.result.load_misses_total,
        })
        .collect();

    let trained = train_weights(&views, &TrainingParams::default());
    let paper = Weights::paper();
    println!(
        "{:<5} {:<28} {:>8} {:>8}",
        "class", "feature", "trained", "paper"
    );
    for c in AgClass::ALL {
        println!(
            "{:<5} {:<28} {:>+8.2} {:>+8.2}",
            c.name(),
            c.feature(),
            trained.get(c),
            paper.get(c)
        );
    }

    // Held-out evaluation with both weight tables.
    println!("\nheld-out benchmarks (π / ρ):");
    println!("{:<14} {:>15} {:>15}", "benchmark", "trained", "paper");
    for b in delinquent_loads::workloads::test_set() {
        let run = pipeline.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let mut cells = Vec::new();
        for w in [trained, paper] {
            let h = Heuristic::default().with_weights(w);
            let delta = h.classify(run.analysis(), &run.result.exec_counts);
            cells.push(format!(
                "{:5.1}% / {:4.1}%",
                100.0 * pi(delta.len(), run.lambda()),
                100.0 * rho(&run.result, &delta)
            ));
        }
        println!("{:<14} {:>15} {:>15}", b.name, cells[0], cells[1]);
    }
}
