#!/usr/bin/env bash
# Offline CI for the delinquent-loads reproduction.
#
#   ./ci.sh          # full gate: fmt, build, test, bench smoke
#
# Everything here must pass with no network access.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== bench smoke =="
./target/release/bench --smoke --jobs 2
test -s BENCH_pipeline.json

# Validate the benchmark JSON is well-formed and has the agreed keys.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
doc = json.load(open("BENCH_pipeline.json"))
for key in ("jobs", "sequential_secs", "parallel_secs", "speedup", "sim_insts_per_sec"):
    assert key in doc, f"BENCH_pipeline.json missing {key}"
assert doc["sequential_secs"] > 0 and doc["parallel_secs"] > 0
print("BENCH_pipeline.json OK:", json.dumps(doc))
EOF
elif command -v jq >/dev/null 2>&1; then
  jq -e '.jobs and .sequential_secs > 0 and .parallel_secs > 0 and .speedup and .sim_insts_per_sec' \
    BENCH_pipeline.json >/dev/null
  echo "BENCH_pipeline.json OK"
else
  echo "warning: neither python3 nor jq available; skipped JSON validation"
fi

echo "== repro determinism check =="
./target/release/repro --jobs 1 table3 > /tmp/ci_seq.out 2>/dev/null
./target/release/repro --jobs 4 table3 > /tmp/ci_par.out 2>/dev/null
cmp /tmp/ci_seq.out /tmp/ci_par.out
echo "parallel output byte-identical"

echo "CI green"
