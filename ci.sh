#!/usr/bin/env bash
# Offline CI for the delinquent-loads reproduction.
#
#   ./ci.sh          # full gate: fmt, build, test, bench smoke
#
# Everything here must pass with no network access.

set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== bench smoke =="
# Written to /tmp so the smoke run never clobbers the tracked
# full-run numbers in BENCH_pipeline.json. Smoke keeps --best-of 2:
# enough to exercise the best-of machinery without the committed
# numbers' full repetition count.
./target/release/bench --smoke --jobs 2 --best-of 2 --out /tmp/ci_bench.json
test -s /tmp/ci_bench.json

# Validate the benchmark JSON is well-formed and has the agreed keys.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
doc = json.load(open("/tmp/ci_bench.json"))
for key in ("jobs", "sequential_secs", "parallel_secs", "speedup", "memo", "analysis", "sim_insts_per_sec"):
    assert key in doc, f"bench JSON missing {key}"
assert doc["sequential_secs"] > 0 and doc["parallel_secs"] > 0
analysis = doc["analysis"]
for key in ("contexts", "hits", "misses", "hit_rate", "compute_secs"):
    assert key in analysis, f"bench analysis section missing {key}"
assert analysis["contexts"] > 0, "bench recorded no analysis contexts"
# Block-engine contract: the throughput section reports both engines
# and the block-cache counters prove the decoded-block path ran.
assert doc["sim_engine"] == "block", "throughput engine is not the block engine"
for key in ("sim_step_insts_per_sec", "sim_engine_speedup",
            "sim_l2_insts_per_sec", "sim_prefetch_insts_per_sec"):
    assert doc.get(key, 0) > 0, f"bench JSON missing {key}"
# Probe microbench: ns/access for every regime, plus the recorded
# repetition count of the best-of methodology.
assert doc.get("best_of", 0) == 2, "smoke run did not record --best-of 2"
for key in ("sim_probe_plain_ns", "sim_probe_coalesced_ns",
            "sim_probe_l2_ns", "sim_probe_prefetch_ns"):
    assert doc.get(key, 0) > 0, f"bench JSON missing {key}"
bc = doc["block_cache"]
for key in ("blocks_decoded", "insts_decoded", "mean_block_len",
            "dispatches", "dispatch_hits", "insts_retired"):
    assert key in bc, f"bench block_cache missing {key}"
assert bc["dispatches"] > 0, "block engine never dispatched a block"
assert bc["insts_retired"] > 0, "block engine retired no instructions"
print("bench JSON OK:", json.dumps(doc))
EOF
elif command -v jq >/dev/null 2>&1; then
  jq -e '.jobs and .sequential_secs > 0 and .parallel_secs > 0 and .speedup and .memo and .sim_insts_per_sec
         and .sim_engine == "block" and .sim_step_insts_per_sec > 0 and .sim_engine_speedup > 0
         and .sim_l2_insts_per_sec > 0 and .sim_prefetch_insts_per_sec > 0
         and .best_of == 2 and .sim_probe_plain_ns > 0 and .sim_probe_coalesced_ns > 0
         and .sim_probe_l2_ns > 0 and .sim_probe_prefetch_ns > 0
         and .block_cache.dispatches > 0 and .block_cache.insts_retired > 0
         and .analysis.contexts > 0 and .analysis.hit_rate != null' \
    /tmp/ci_bench.json >/dev/null
  echo "bench JSON OK"
else
  echo "warning: neither python3 nor jq available; skipped JSON validation"
fi

echo "== repro manifest smoke =="
./target/release/repro --smoke --jobs 2 --manifest /tmp/ci_manifest.json > /dev/null
test -s /tmp/ci_manifest.json

# The manifest is the observability contract: fail CI if a mandatory
# section or key disappears.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
doc = json.load(open("/tmp/ci_manifest.json"))
assert doc["schema"] == "dl-obs/1", f"unexpected schema {doc.get('schema')}"
for key in ("stages", "memo", "workers", "sim", "miss_classes", "memory", "reuse", "profile", "analysis"):
    assert key in doc, f"manifest missing {key}"
memory = doc["memory"]
for key in ("non_default_configs", "l2_hits", "l2_misses", "prefetch_fills", "prefetch_useful"):
    assert key in memory, f"manifest memory section missing {key}"
assert doc["stages"], "manifest has no stage timings"
assert all("secs" in s for s in doc["stages"]), "stage entries missing wall times"
assert "hit_rate" in doc["memo"], "manifest missing memo hit rate"
for key in ("hits", "misses", "waits"):
    assert key in doc["memo"], f"manifest memo missing {key}"
assert doc["workers"], "manifest has no per-worker stats"
assert doc["sim"]["insts_per_sec"] > 0, "manifest missing sim throughput"
assert doc["sim"]["engine"] in ("step", "block"), "manifest missing sim engine"
bc = doc["sim"]["block_cache"]
for key in ("blocks_decoded", "insts_decoded", "mean_block_len",
            "dispatches", "dispatch_hits", "insts_retired"):
    assert key in bc, f"manifest block_cache missing {key}"
assert doc["miss_classes"]["total"] > 0, "manifest classified no misses"
assert doc["reuse"]["loads"] > 0, "manifest reuse section saw no loads"
profile = doc["profile"]
for key in ("runs", "loads", "modeled", "abstained", "interprocedural", "flagged"):
    assert key in profile, f"manifest profile section missing {key}"
assert profile["loads"] > 0, "manifest profile section saw no loads"
assert profile["modeled"] + profile["abstained"] == profile["loads"], \
    "profile modeled/abstained split does not cover every load"
lat = doc["sim"]["latency"]
for key in ("p50_secs", "p90_secs", "p99_secs"):
    assert key in lat, f"manifest sim.latency missing {key}"
assert lat["p50_secs"] <= lat["p99_secs"], "latency percentiles not monotone"
analysis = doc["analysis"]
for key in ("contexts", "hits", "misses", "hit_rate", "total_compute_secs", "passes"):
    assert key in analysis, f"manifest analysis section missing {key}"
assert analysis["contexts"] > 0, "manifest recorded no analysis contexts"
assert analysis["hits"] > 0, "analysis ctx cache recorded no sharing"
assert len(analysis["passes"]) == 9, "manifest pass list incomplete"
per_program = {p["pass"]: p["misses"] for p in analysis["passes"]}
# Each program is analyzed exactly once however many configurations
# share it: program-level passes compute once per context, never more.
assert per_program["patterns"] == analysis["contexts"], "a program was re-analyzed"
print("RUN_MANIFEST OK: schema", doc["schema"])
EOF
elif command -v jq >/dev/null 2>&1; then
  jq -e '.schema == "dl-obs/1" and (.stages | length > 0) and .memo.hit_rate != null
         and (.workers | length > 0) and .sim.insts_per_sec > 0
         and (.sim.engine == "step" or .sim.engine == "block") and .sim.block_cache != null
         and .sim.latency.p50_secs != null and .sim.latency.p99_secs != null
         and .miss_classes.total > 0 and .memory.prefetch_fills != null and .reuse.loads > 0
         and .profile.loads > 0 and (.profile.modeled + .profile.abstained) == .profile.loads
         and .analysis.contexts > 0 and .analysis.hits > 0
         and (.analysis.passes | length == 9)' /tmp/ci_manifest.json >/dev/null
  echo "RUN_MANIFEST OK"
else
  echo "warning: neither python3 nor jq available; skipped manifest validation"
fi

echo "== trace export smoke =="
./target/release/repro --smoke --jobs 2 --trace-out /tmp/ci_trace.json table3 > /dev/null
test -s /tmp/ci_trace.json

# The trace is the timeline contract: valid Chrome trace-event JSON
# with complete ("X") events carrying the required keys, and spans for
# each pipeline layer (compile, per-pass analysis, simulation).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
doc = json.load(open("/tmp/ci_trace.json"))
events = doc["traceEvents"]
assert events, "trace has no events"
for e in events:
    for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
        assert key in e, f"trace event missing {key}: {e}"
    assert e["ph"] == "X", f"unexpected event phase {e['ph']}"
cats = {e["cat"] for e in events}
for cat in ("compile", "analysis", "sim", "warm", "tables"):
    assert cat in cats, f"trace missing {cat} spans (saw {sorted(cats)})"
sims = [e for e in events if e["cat"] == "sim"]
assert all("/" in e["name"] for e in sims), "sim spans missing config labels"
print(f"trace OK: {len(events)} events, categories {sorted(cats)}")
EOF
elif command -v jq >/dev/null 2>&1; then
  jq -e '(.traceEvents | length > 0)
         and ([.traceEvents[] | select(.name and .ph == "X" and .ts != null and .dur != null)] | length) == (.traceEvents | length)
         and ([.traceEvents[].cat] | unique | contains(["analysis", "compile", "sim"]))' \
    /tmp/ci_trace.json >/dev/null
  echo "trace OK"
else
  echo "warning: neither python3 nor jq available; skipped trace validation"
fi

echo "== dlc observatory smoke =="
# A tiny standalone program: repeated array scans produce a clean
# per-epoch miss phase for the observatory to window.
cat > /tmp/ci_top.mc <<'EOF'
int main() {
    int n; int i; int j; int s;
    int* a;
    n = read();
    if (n < 64) { n = 64; }
    a = malloc(n * sizeof(int));
    for (i = 0; i < n; i = i + 1) { a[i] = i; }
    s = 0;
    for (j = 0; j < 8; j = j + 1) {
        for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
    }
    print(s);
    return 0;
}
EOF
./target/release/dlc top /tmp/ci_top.mc --input 20000 --epoch 8192 --limit 5 \
  --trace-out /tmp/ci_dlc_trace.json > /tmp/ci_top.out
grep -q "epoch = 8192 loads" /tmp/ci_top.out
grep -q "heur okn bdh reuse" /tmp/ci_top.out
test -s /tmp/ci_dlc_trace.json
# The observatory must never perturb the simulation itself: stdout of
# a plain run is byte-identical whether or not `top` instrumented it.
./target/release/dlc run /tmp/ci_top.mc --input 20000 > /tmp/ci_run_plain.out 2>/dev/null
./target/release/dlc run /tmp/ci_top.mc --input 20000 --engine step > /tmp/ci_run_step.out 2>/dev/null
cmp /tmp/ci_run_plain.out /tmp/ci_run_step.out
echo "dlc top OK"

echo "== dlc memory-system smoke =="
# The memory flags reshape the simulated hierarchy: a stride
# prefetcher must hide misses on the scan kernel (the `top` report
# grows a hidden column), the same config must arrive via DL_* env
# vars, and the step engine must agree byte-for-byte under the full
# stack (non-LRU policy + L2 + prefetch).
./target/release/dlc top /tmp/ci_top.mc --input 20000 --epoch 8192 --limit 5 \
  --prefetch 2 > /tmp/ci_top_pf.out 2>&1
grep -q "hidden" /tmp/ci_top_pf.out
grep -q "hidden by prefetch" /tmp/ci_top_pf.out
DL_POLICY=plru DL_L2=64 DL_PREFETCH=2 ./target/release/dlc run /tmp/ci_top.mc \
  --input 20000 > /tmp/ci_run_env.out 2>/tmp/ci_run_env.err
grep -q "memory plru" /tmp/ci_run_env.err
./target/release/dlc run /tmp/ci_top.mc --input 20000 \
  --policy plru --l2 64 --prefetch 2 > /tmp/ci_run_mem.out 2>/dev/null
cmp /tmp/ci_run_env.out /tmp/ci_run_mem.out
./target/release/dlc run /tmp/ci_top.mc --input 20000 --engine step \
  --policy plru --l2 64 --prefetch 2 > /tmp/ci_run_mem_step.out 2>/dev/null
cmp /tmp/ci_run_mem.out /tmp/ci_run_mem_step.out
echo "dlc memory flags OK"

echo "== perf-regression gate (bench-diff) =="
# Smoke-run numbers against the committed full-run baseline. Hosts
# and smoke inputs vary wildly, so the threshold is deliberately
# generous: this gate catches order-of-magnitude collapses (an engine
# falling off its fast path), not scheduling noise. The probe-cost
# band is wider still: ns/access on the smoke kernel runs
# systematically hotter than the committed full-run numbers (smaller
# kernel = larger cold-miss share, and CI measures right after the
# repro sweeps heated the host), and unlike a throughput drop a cost
# rise is unbounded — 250% still catches a fast-path collapse, which
# shows up as 5-10x.
./target/release/dlc bench-diff BENCH_pipeline.json /tmp/ci_bench.json \
  --threshold 75 --cost-threshold 250

echo "== repro determinism check =="
./target/release/repro --jobs 1 table3 > /tmp/ci_seq.out 2>/dev/null
./target/release/repro --jobs 4 table3 > /tmp/ci_par.out 2>/dev/null
cmp /tmp/ci_seq.out /tmp/ci_par.out
echo "parallel output byte-identical"
DL_OBS=text ./target/release/repro --jobs 2 table3 > /tmp/ci_obs.out 2>/dev/null
cmp /tmp/ci_seq.out /tmp/ci_obs.out
echo "observed (DL_OBS=text) output byte-identical"

echo "== reuse-predictor determinism check =="
./target/release/repro --jobs 1 extension-reuse > /tmp/ci_reuse_seq.out 2>/dev/null
./target/release/repro --jobs 4 extension-reuse > /tmp/ci_reuse_par.out 2>/dev/null
cmp /tmp/ci_reuse_seq.out /tmp/ci_reuse_par.out
echo "extension-reuse output byte-identical"

echo "== reuse-profile determinism check =="
# The profile engine's OnceLock-cached histograms and the per-geometry
# pricing must not depend on worker scheduling: both profile tables are
# byte-compared across job counts.
./target/release/repro --jobs 1 extension-profile profile-geometries > /tmp/ci_prof_seq.out 2>/dev/null
./target/release/repro --jobs 4 extension-profile profile-geometries > /tmp/ci_prof_par.out 2>/dev/null
cmp /tmp/ci_prof_seq.out /tmp/ci_prof_par.out
echo "profile tables byte-identical"

echo "== manifest + trace combination determinism check =="
# --manifest and --trace-out together must not perturb table output,
# and the manifest's stage list must be schedule-independent: with
# timings stripped, runs at different job counts render identical
# manifests.
./target/release/repro --smoke --jobs 1 --manifest /tmp/ci_m1.json --trace-out /tmp/ci_t1.json table3 > /tmp/ci_mt1.out 2>/dev/null
./target/release/repro --smoke --jobs 4 --manifest /tmp/ci_m4.json --trace-out /tmp/ci_t4.json table3 > /tmp/ci_mt4.out 2>/dev/null
cmp /tmp/ci_mt1.out /tmp/ci_mt4.out
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

def zero(value, timing):
    if isinstance(value, dict):
        return {k: zero(v, "sec" in k or k.endswith(("_us", "_ms", "_ns")))
                for k, v in value.items()}
    if isinstance(value, list):
        return [zero(v, timing) for v in value]
    if timing and isinstance(value, (int, float)) and not isinstance(value, bool):
        return 0
    return value

docs = [zero(json.load(open(p)), False) for p in ("/tmp/ci_m1.json", "/tmp/ci_m4.json")]
# Sections that are deterministic by contract. Scheduling-dependent
# counters (workers, memo waits, per-pass hit splits under racing
# OnceLock initialization) are legitimately job-count-dependent.
for key in ("schema", "command", "stages", "miss_classes", "reuse", "profile"):
    assert docs[0][key] == docs[1][key], f"zeroed manifest `{key}` diverges across job counts"
names = [s["name"] for s in docs[0]["stages"]]
assert names == sorted(names), f"manifest stages not sorted: {names}"
print(f"manifest+trace OK: {len(names)} stages, schedule-independent")
EOF
else
  echo "warning: python3 unavailable; skipped manifest combination validation"
fi

echo "== memory-system matrix determinism check =="
# The extension-memmatrix table sweeps {replacement policy} × {L1,
# +L2 inclusive, +L2 exclusive} × {prefetch off/on}; its output must
# be byte-identical across worker counts and across both simulator
# engines (smoke inputs — the full sweep runs in the test suite).
./target/release/repro --smoke --jobs 1 extension-memmatrix > /tmp/ci_mem_seq.out 2>/dev/null
./target/release/repro --smoke --jobs 4 extension-memmatrix > /tmp/ci_mem_par.out 2>/dev/null
cmp /tmp/ci_mem_seq.out /tmp/ci_mem_par.out
DL_SIM_ENGINE=step ./target/release/repro --smoke --jobs 4 extension-memmatrix > /tmp/ci_mem_step.out 2>/dev/null
cmp /tmp/ci_mem_seq.out /tmp/ci_mem_step.out
grep -q "plru" /tmp/ci_mem_seq.out
grep -q "random" /tmp/ci_mem_seq.out
echo "memory-matrix table byte-identical across jobs and engines"

echo "== paper-tables determinism check =="
# The shared AnalysisCtx must not change any table under concurrency:
# the heuristic, baseline, and combination tables are byte-compared
# across worker counts.
./target/release/repro --jobs 1 table11 table12 table14 > /tmp/ci_paper_seq.out 2>/dev/null
./target/release/repro --jobs 4 table11 table12 table14 > /tmp/ci_paper_par.out 2>/dev/null
cmp /tmp/ci_paper_seq.out /tmp/ci_paper_par.out
echo "paper tables byte-identical"

echo "== engine equivalence check =="
# The block-cached engine is a pure optimization: the reference step
# interpreter must render byte-identical paper tables. The parallel
# block-engine run above doubles as the "block" side for tables 11/12/14.
DL_SIM_ENGINE=step ./target/release/repro --jobs 4 table11 table12 table14 > /tmp/ci_step_paper.out 2>/dev/null
cmp /tmp/ci_paper_seq.out /tmp/ci_step_paper.out
DL_SIM_ENGINE=step ./target/release/repro --jobs 4 table3 > /tmp/ci_step_t3.out 2>/dev/null
cmp /tmp/ci_seq.out /tmp/ci_step_t3.out
echo "step and block engines byte-identical"

echo "== probe-elimination equivalence check =="
# The probe layer (decode-time same-line coalescing + per-site line
# predictor) is a pure optimization: DL_PROBE_FAST=off must not change
# a byte of any table, and the step engine (which never had the layer)
# must agree with both. Tables 3/11/12/14 plus the memory-system
# matrix cover every policy/L2/prefetch regime the layer specializes.
DL_PROBE_FAST=off ./target/release/repro --jobs 4 table3 > /tmp/ci_nofast_t3.out 2>/dev/null
cmp /tmp/ci_seq.out /tmp/ci_nofast_t3.out
DL_PROBE_FAST=off ./target/release/repro --jobs 4 table11 table12 table14 > /tmp/ci_nofast_paper.out 2>/dev/null
cmp /tmp/ci_paper_seq.out /tmp/ci_nofast_paper.out
DL_PROBE_FAST=off ./target/release/repro --smoke --jobs 4 extension-memmatrix > /tmp/ci_nofast_mem.out 2>/dev/null
cmp /tmp/ci_mem_seq.out /tmp/ci_nofast_mem.out
DL_PROBE_FAST=off DL_SIM_ENGINE=step ./target/release/repro --smoke --jobs 4 extension-memmatrix > /tmp/ci_nofast_mem_step.out 2>/dev/null
cmp /tmp/ci_mem_seq.out /tmp/ci_nofast_mem_step.out
echo "probe layer byte-identical on/off, both engines"

echo "CI green"
