//! Robustness property tests: arbitrary token soup must never panic
//! the lexer, parser, or semantic analysis — they either succeed or
//! return a structured error with a line number.

use proptest::prelude::*;

use dl_minic::{compile, OptLevel};

/// Fragments likely to stress the grammar when concatenated.
fn arb_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("int ".to_owned()),
        Just("char ".to_owned()),
        Just("void ".to_owned()),
        Just("struct ".to_owned()),
        Just("if ".to_owned()),
        Just("else ".to_owned()),
        Just("while ".to_owned()),
        Just("for ".to_owned()),
        Just("return ".to_owned()),
        Just("break; ".to_owned()),
        Just("continue; ".to_owned()),
        Just("sizeof".to_owned()),
        Just("main".to_owned()),
        Just("x".to_owned()),
        Just("yy".to_owned()),
        Just("( ".to_owned()),
        Just(") ".to_owned()),
        Just("{ ".to_owned()),
        Just("} ".to_owned()),
        Just("[ ".to_owned()),
        Just("] ".to_owned()),
        Just("; ".to_owned()),
        Just(", ".to_owned()),
        Just("= ".to_owned()),
        Just("== ".to_owned()),
        Just("-> ".to_owned()),
        Just(". ".to_owned()),
        Just("* ".to_owned()),
        Just("& ".to_owned()),
        Just("+ ".to_owned()),
        Just("- ".to_owned()),
        Just("/ ".to_owned()),
        Just("% ".to_owned()),
        Just("<< ".to_owned()),
        Just(">> ".to_owned()),
        Just("&& ".to_owned()),
        Just("|| ".to_owned()),
        Just("! ".to_owned()),
        Just("~ ".to_owned()),
        (0i64..1000).prop_map(|n| format!("{n} ")),
        Just("0x1f ".to_owned()),
        Just("'a' ".to_owned()),
        Just("// comment\n".to_owned()),
        Just("/* block */ ".to_owned()),
        Just("\n".to_owned()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn token_soup_never_panics(frags in prop::collection::vec(arb_fragment(), 0..60)) {
        let src: String = frags.concat();
        // Must not panic; errors are fine.
        let _ = compile(&src, OptLevel::O0);
        let _ = compile(&src, OptLevel::O1);
    }

    #[test]
    fn valid_skeleton_with_random_body_never_panics(
        frags in prop::collection::vec(arb_fragment(), 0..30)
    ) {
        let src = format!("int main() {{ {} return 0; }}", frags.concat());
        let _ = compile(&src, OptLevel::O0);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_lexer(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = dl_minic::lexer::lex(s);
        }
    }
}
