//! Robustness property tests: arbitrary token soup must never panic
//! the lexer, parser, or semantic analysis — they either succeed or
//! return a structured error with a line number.

use dl_minic::{compile, OptLevel};
use dl_testkit::{cases, Rng};

/// Fragments likely to stress the grammar when concatenated.
const FRAGMENTS: &[&str] = &[
    "int ",
    "char ",
    "void ",
    "struct ",
    "if ",
    "else ",
    "while ",
    "for ",
    "return ",
    "break; ",
    "continue; ",
    "sizeof",
    "main",
    "x",
    "yy",
    "( ",
    ") ",
    "{ ",
    "} ",
    "[ ",
    "] ",
    "; ",
    ", ",
    "= ",
    "== ",
    "-> ",
    ". ",
    "* ",
    "& ",
    "+ ",
    "- ",
    "/ ",
    "% ",
    "<< ",
    ">> ",
    "&& ",
    "|| ",
    "! ",
    "~ ",
    "0x1f ",
    "'a' ",
    "// comment\n",
    "/* block */ ",
    "\n",
];

fn arb_fragment(rng: &mut Rng) -> String {
    // One extra slot for a random integer literal.
    if rng.index(FRAGMENTS.len() + 1) == FRAGMENTS.len() {
        format!("{} ", rng.range_i64(0, 1000))
    } else {
        (*rng.pick(FRAGMENTS)).to_owned()
    }
}

#[test]
fn token_soup_never_panics() {
    cases(512, 0xf7a91, |rng| {
        let src: String = rng.vec_of(0, 60, arb_fragment).concat();
        // Must not panic; errors are fine.
        let _ = compile(&src, OptLevel::O0);
        let _ = compile(&src, OptLevel::O1);
    });
}

#[test]
fn valid_skeleton_with_random_body_never_panics() {
    cases(512, 0xf7a92, |rng| {
        let body: String = rng.vec_of(0, 30, arb_fragment).concat();
        let src = format!("int main() {{ {body} return 0; }}");
        let _ = compile(&src, OptLevel::O0);
    });
}

#[test]
fn arbitrary_bytes_never_panic_the_lexer() {
    cases(512, 0xf7a93, |rng| {
        let bytes = rng.vec_of(0, 200, |r| r.range_u32(0, 256) as u8);
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = dl_minic::lexer::lex(s);
        }
    });
}
