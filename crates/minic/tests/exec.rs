//! End-to-end tests: compile MiniC, simulate, check observable output
//! at both optimization levels.

use dl_minic::{compile, OptLevel};
use dl_sim::{run, RunConfig};

/// Compiles and runs at the given level, returning printed output.
fn run_with(src: &str, opt: OptLevel, input: Vec<i32>) -> Vec<i32> {
    let program = compile(src, opt).unwrap_or_else(|e| panic!("compile error: {e}"));
    let cfg = RunConfig {
        input,
        ..RunConfig::default()
    };
    let result = run(&program, &cfg).unwrap_or_else(|e| panic!("runtime trap ({opt}): {e}"));
    result.output
}

/// Runs at both levels and checks they agree with the expectation.
fn expect_output(src: &str, expected: &[i32]) {
    for opt in [OptLevel::O0, OptLevel::O1] {
        let got = run_with(src, opt, vec![]);
        assert_eq!(got, expected, "wrong output at {opt}");
    }
}

#[test]
fn arithmetic_and_precedence() {
    expect_output(
        "int main() { print(1 + 2 * 3); print((1 + 2) * 3); print(10 / 3); print(10 % 3); return 0; }",
        &[7, 9, 3, 1],
    );
}

#[test]
fn comparisons_and_logic() {
    expect_output(
        "int main() {
            print(3 < 4); print(4 < 3); print(3 <= 3); print(4 >= 5);
            print(3 == 3); print(3 != 3);
            print(1 && 0); print(1 && 2); print(0 || 0); print(0 || 5);
            print(!0); print(!7);
            return 0;
         }",
        &[1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0],
    );
}

#[test]
fn short_circuit_side_effects() {
    expect_output(
        "int g;
         int bump() { g = g + 1; return 1; }
         int main() {
            g = 0;
            0 && bump();
            print(g);
            1 || bump();
            print(g);
            1 && bump();
            print(g);
            return 0;
         }",
        &[0, 0, 1],
    );
}

#[test]
fn bitwise_and_shifts() {
    expect_output(
        "int main() {
            print(12 & 10); print(12 | 10); print(12 ^ 10);
            print(1 << 5); print(-16 >> 2); print(~0);
            return 0;
         }",
        &[8, 14, 6, 32, -4, -1],
    );
}

#[test]
fn while_and_for_loops() {
    expect_output(
        "int main() {
            int i; int s;
            s = 0;
            for (i = 1; i <= 100; i = i + 1) { s = s + i; }
            print(s);
            while (s > 1000) { s = s - 1000; }
            print(s);
            return 0;
         }",
        &[5050, 50],
    );
}

#[test]
fn break_and_continue() {
    expect_output(
        "int main() {
            int i; int s;
            s = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i == 3) { continue; }
                if (i == 7) { break; }
                s = s + i;
            }
            print(s);
            return 0;
         }",
        &[1 + 2 + 4 + 5 + 6],
    );
}

#[test]
fn functions_and_recursion() {
    expect_output(
        "int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
         }
         int main() { print(fib(15)); return 0; }",
        &[610],
    );
}

#[test]
fn four_args_and_nested_calls() {
    expect_output(
        "int f(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
         int g(int x) { return x + 1; }
         int main() { print(f(g(0), g(1), g(2), g(3))); return 0; }",
        &[1234],
    );
}

#[test]
fn global_arrays_and_locals() {
    expect_output(
        "int table[10];
         int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) { table[i] = i * i; }
            print(table[7]);
            int local[8];
            for (i = 0; i < 8; i = i + 1) { local[i] = table[i] + 1; }
            print(local[5]);
            return 0;
         }",
        &[49, 26],
    );
}

#[test]
fn multi_dimensional_arrays() {
    expect_output(
        "int grid[8][8];
         int main() {
            int i; int j;
            for (i = 0; i < 8; i = i + 1) {
                for (j = 0; j < 8; j = j + 1) { grid[i][j] = i * 8 + j; }
            }
            print(grid[3][4]);
            print(grid[7][7]);
            return 0;
         }",
        &[28, 63],
    );
}

#[test]
fn pointers_and_address_of() {
    expect_output(
        "int main() {
            int x; int* p;
            x = 41;
            p = &x;
            *p = *p + 1;
            print(x);
            print(*p);
            return 0;
         }",
        &[42, 42],
    );
}

#[test]
fn pointer_arithmetic_scales() {
    expect_output(
        "int a[5];
         int main() {
            int* p; int i;
            for (i = 0; i < 5; i = i + 1) { a[i] = i * 10; }
            p = a;
            print(*(p + 3));
            p = p + 1;
            print(*p);
            print(p - a);
            return 0;
         }",
        &[30, 10, 1],
    );
}

#[test]
fn structs_fields_and_arrow() {
    expect_output(
        "struct point { int x; int y; };
         struct point origin;
         int main() {
            struct point* p;
            origin.x = 3;
            origin.y = 4;
            p = &origin;
            print(p->x * p->x + p->y * p->y);
            p->y = 12;
            print(origin.y);
            return 0;
         }",
        &[25, 12],
    );
}

#[test]
fn linked_list_on_heap() {
    expect_output(
        "struct node { int value; struct node* next; };
         int main() {
            struct node* head; struct node* n; int i; int sum;
            head = 0;
            for (i = 1; i <= 5; i = i + 1) {
                n = malloc(sizeof(struct node));
                n->value = i;
                n->next = head;
                head = n;
            }
            sum = 0;
            for (n = head; n != 0; n = n->next) { sum = sum + n->value; }
            print(sum);
            return 0;
         }",
        &[15],
    );
}

#[test]
fn char_buffers_use_byte_accesses() {
    expect_output(
        "char buf[16];
         int main() {
            int i;
            for (i = 0; i < 16; i = i + 1) { buf[i] = i * 3; }
            print(buf[5]);
            print(buf[15]);
            return 0;
         }",
        &[15, 45],
    );
}

#[test]
fn char_sign_extension() {
    expect_output(
        "char c;
         int main() { c = 200; print(c); return 0; }",
        &[-56], // 200 as signed byte
    );
}

#[test]
fn read_input_and_rand_determinism() {
    let src = "int main() { print(read() + read()); print(rand(100)); return 0; }";
    for opt in [OptLevel::O0, OptLevel::O1] {
        let out = run_with(src, opt, vec![20, 22]);
        assert_eq!(out[0], 42);
        assert!((0..100).contains(&out[1]));
    }
}

#[test]
fn exit_intrinsic_stops_execution() {
    let src = "int main() { print(1); exit(7); print(2); return 0; }";
    let program = compile(src, OptLevel::O0).unwrap();
    let result = run(&program, &RunConfig::default()).unwrap();
    assert_eq!(result.output, vec![1]);
    assert_eq!(result.exit_code, 7);
}

#[test]
fn global_scalar_initializers() {
    expect_output(
        "int a = 7; int b = -3; char c = 65;
         int main() { print(a); print(b); print(c); return 0; }",
        &[7, -3, 65],
    );
}

#[test]
fn sizeof_values() {
    expect_output(
        "struct pair { int a; int b; };
         struct padded { char c; int x; };
         int main() {
            print(sizeof(int)); print(sizeof(char)); print(sizeof(int*));
            print(sizeof(struct pair)); print(sizeof(struct padded));
            print(sizeof(int[10]));
            return 0;
         }",
        &[4, 1, 4, 8, 8, 40],
    );
}

#[test]
fn o1_is_smaller_than_o0() {
    let src = "int main() {
        int i; int s;
        s = 0;
        for (i = 0; i < 10; i = i + 1) { s = s + i * 4; }
        print(s);
        return 0;
    }";
    let p0 = compile(src, OptLevel::O0).unwrap();
    let p1 = compile(src, OptLevel::O1).unwrap();
    assert!(
        p1.insts.len() < p0.insts.len(),
        "O1 ({}) not smaller than O0 ({})",
        p1.insts.len(),
        p0.insts.len()
    );
}

#[test]
fn o0_keeps_locals_on_stack_o1_in_registers() {
    use dl_mips::inst::Inst;
    use dl_mips::reg::Reg;
    let src = "int main() {
        int i; int s;
        s = 0;
        for (i = 0; i < 100; i = i + 1) { s = s + i; }
        print(s);
        return 0;
    }";
    let p0 = compile(src, OptLevel::O0).unwrap();
    // O0: loop body reloads i and s from sp slots.
    let sp_loads = p0
        .insts
        .iter()
        .filter(|i| matches!(i, Inst::Lw { base: Reg::Sp, .. }))
        .count();
    assert!(sp_loads >= 4, "expected sp reloads at O0, found {sp_loads}");
    let p1 = compile(src, OptLevel::O1).unwrap();
    // O1: i and s live in s-registers; the only sp traffic is
    // prologue/epilogue saves.
    let sp_loads1 = p1
        .insts
        .iter()
        .filter(|i| matches!(i, Inst::Lw { base: Reg::Sp, .. }))
        .count();
    assert!(sp_loads1 <= 3, "unexpected sp reloads at O1: {sp_loads1}");
    let output0 = run(&p0, &RunConfig::default()).unwrap().output;
    let output1 = run(&p1, &RunConfig::default()).unwrap().output;
    assert_eq!(output0, output1);
}

#[test]
fn o1_strength_reduces_mul_by_pow2() {
    use dl_mips::inst::Inst;
    let src = "int main() { int x; x = read(); print(x * 8); return 0; }";
    let p1 = compile(src, OptLevel::O1).unwrap();
    assert!(p1.insts.iter().any(|i| matches!(i, Inst::Sll { .. })));
    assert!(!p1.insts.iter().any(|i| matches!(i, Inst::Mul { .. })));
    let out = run(
        &p1,
        &RunConfig {
            input: vec![5],
            ..RunConfig::default()
        },
    )
    .unwrap()
    .output;
    assert_eq!(out, vec![40]);
}

#[test]
fn o1_constant_folding() {
    use dl_mips::inst::Inst;
    let src = "int main() { print(2 * 3 + 4 * 5); return 0; }";
    let p1 = compile(src, OptLevel::O1).unwrap();
    // No multiplies survive: the whole expression folds to 26.
    assert!(!p1.insts.iter().any(|i| matches!(i, Inst::Mul { .. })));
    expect_output(src, &[26]);
}

#[test]
fn shadowing_scopes() {
    expect_output(
        "int main() {
            int x; x = 1;
            { int x; x = 2; print(x); }
            print(x);
            return 0;
         }",
        &[2, 1],
    );
}

#[test]
fn matrix_multiply_integration() {
    // A denser numeric kernel exercising nested loops + 2-D indexing.
    expect_output(
        "int a[4][4]; int b[4][4]; int c[4][4];
         int main() {
            int i; int j; int k; int s;
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    a[i][j] = i + j;
                    b[i][j] = i - j;
                }
            }
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    s = 0;
                    for (k = 0; k < 4; k = k + 1) { s = s + a[i][k] * b[k][j]; }
                    c[i][j] = s;
                }
            }
            print(c[0][0]); print(c[1][2]); print(c[3][3]);
            return 0;
         }",
        // c[0][0] = Σ k·k = 14; c[1][2] = Σ (1+k)(k−2) = 0;
        // c[3][3] = Σ (3+k)(k−3) = −22.
        &[14, 0, -22],
    );
}

#[test]
fn compile_errors_do_not_panic() {
    assert!(compile("int main() { return undeclared; }", OptLevel::O0).is_err());
    assert!(compile("int main() { return 1 +; }", OptLevel::O0).is_err());
    assert!(compile("int f() { return 0; }", OptLevel::O0).is_err()); // no main
}

#[test]
fn large_local_array_rejected_with_hint() {
    let e = compile(
        "int main() { int big[20000]; big[0] = 1; return big[0]; }",
        OptLevel::O0,
    )
    .unwrap_err();
    assert!(e.message.contains("frame"), "message: {}", e.message);
}

#[test]
fn syscall_numbers_match_sim() {
    // The generator duplicates the syscall numbers to avoid a
    // dependency cycle; they must stay in sync with dl-sim.
    use dl_sim::cpu::syscalls;
    assert_eq!(syscalls::PRINT_INT, 1);
    assert_eq!(syscalls::READ_INT, 5);
    assert_eq!(syscalls::MALLOC, 9);
    assert_eq!(syscalls::EXIT, 10);
    assert_eq!(syscalls::RAND, 42);
}

#[test]
fn deep_expression_spills_across_calls() {
    // Nested calls force temp spilling around jal.
    expect_output(
        "int id(int x) { return x; }
         int main() {
            print(id(1) + id(2) + id(3) + id(4) + id(5));
            print(id(id(id(10))) * id(2));
            return 0;
         }",
        &[15, 20],
    );
}

#[test]
fn unoptimized_array_access_has_paper_shape() {
    // The -O0 address pattern for a stack-array access must be the
    // "(sp+A) + ((sp+i) << 2)" shape the heuristic keys on.
    use dl_analysis::extract::{analyze_program, AnalysisConfig};
    let src = "int main() {
        int a[16]; int i; int s;
        s = 0;
        for (i = 0; i < 16; i = i + 1) { a[i] = i; }
        for (i = 0; i < 16; i = i + 1) { s = s + a[i]; }
        print(s);
        return 0;
    }";
    let p = compile(src, OptLevel::O0).unwrap();
    let analysis = analyze_program(&p, &AnalysisConfig::default());
    let has_indexed_shape = analysis.loads.iter().any(|l| {
        l.patterns
            .iter()
            .any(|ap| ap.deref_nesting() >= 1 && ap.has_mul_or_shift())
    });
    assert!(has_indexed_shape, "no indexed sp-relative pattern found");
    assert_eq!(run(&p, &RunConfig::default()).unwrap().output, vec![120]);
}

#[test]
fn o1_spills_beyond_eight_scalars() {
    // Twelve live scalars: only eight fit in s-registers; the rest
    // must fall back to stack slots without miscompiling.
    expect_output(
        "int main() {
            int a; int b; int c; int d; int e; int f;
            int g; int h; int i; int j; int k; int l;
            a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;
            g = 7; h = 8; i = 9; j = 10; k = 11; l = 12;
            print(a + b + c + d + e + f + g + h + i + j + k + l);
            print(l * a - k * b);
            return 0;
         }",
        &[78, -10],
    );
}

#[test]
fn o1_address_taken_scalar_stays_in_memory() {
    // &x forces x out of registers even at O1; writes through the
    // pointer must be visible to direct reads.
    expect_output(
        "int set(int* p) { *p = 42; return 0; }
         int main() {
            int x;
            x = 1;
            set(&x);
            print(x);
            return 0;
         }",
        &[42],
    );
}

#[test]
fn recursion_with_register_locals() {
    // Callee-saved registers must be preserved across recursion at O1.
    expect_output(
        "int sum(int n) {
            int half;
            if (n <= 0) { return 0; }
            half = n / 2;
            return n + sum(n - 1) - half + half;
         }
         int main() { print(sum(20)); return 0; }",
        &[210],
    );
}

#[test]
fn nested_struct_access() {
    expect_output(
        "struct inner { int a; int b; };
         struct outer { int tag; struct inner in; };
         struct outer g;
         int main() {
            g.tag = 1;
            g.in.a = 20;
            g.in.b = 22;
            print(g.in.a + g.in.b);
            return 0;
         }",
        &[42],
    );
}

#[test]
fn array_of_structs_on_heap() {
    expect_output(
        "struct pt { int x; int y; };
         int main() {
            struct pt* pts; int i; int s;
            pts = malloc(10 * sizeof(struct pt));
            for (i = 0; i < 10; i = i + 1) {
                pts[i].x = i;
                pts[i].y = i * i;
            }
            s = 0;
            for (i = 0; i < 10; i = i + 1) { s = s + pts[i].y - pts[i].x; }
            print(s);
            return 0;
         }",
        &[285 - 45],
    );
}

#[test]
fn while_with_complex_condition() {
    expect_output(
        "int main() {
            int i; int j;
            i = 0; j = 100;
            while (i < 10 && j > 50) { i = i + 1; j = j - 7; }
            print(i); print(j);
            return 0;
         }",
        &[8, 44],
    );
}
