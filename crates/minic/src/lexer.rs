//! The MiniC lexer.

use std::fmt;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// Token payload.
    pub kind: Tok,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Num(i64),
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// `int`, `char`, `void`, `struct`, `if`, `else`, `while`, `for`,
    /// `return`, `break`, `continue`, `sizeof` — kept as identifiers
    /// would be ambiguous, so they are distinct variants.
    KwInt,
    /// `char`.
    KwChar,
    /// `void`.
    KwVoid,
    /// `struct`.
    KwStruct,
    /// `if`.
    KwIf,
    /// `else`.
    KwElse,
    /// `while`.
    KwWhile,
    /// `for`.
    KwFor,
    /// `return`.
    KwReturn,
    /// `break`.
    KwBreak,
    /// `continue`.
    KwContinue,
    /// `sizeof`.
    KwSizeof,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `->`.
    Arrow,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `=`.
    Eq,
    /// `&`.
    Amp,
    /// `&&`.
    AmpAmp,
    /// `|`.
    Pipe,
    /// `||`.
    PipePipe,
    /// `^`.
    Caret,
    /// `!`.
    Bang,
    /// `~`.
    Tilde,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => {
                let s = match other {
                    Tok::KwInt => "int",
                    Tok::KwChar => "char",
                    Tok::KwVoid => "void",
                    Tok::KwStruct => "struct",
                    Tok::KwIf => "if",
                    Tok::KwElse => "else",
                    Tok::KwWhile => "while",
                    Tok::KwFor => "for",
                    Tok::KwReturn => "return",
                    Tok::KwBreak => "break",
                    Tok::KwContinue => "continue",
                    Tok::KwSizeof => "sizeof",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Dot => ".",
                    Tok::Arrow => "->",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::EqEq => "==",
                    Tok::Ne => "!=",
                    Tok::Eq => "=",
                    Tok::Amp => "&",
                    Tok::AmpAmp => "&&",
                    Tok::Pipe => "|",
                    Tok::PipePipe => "||",
                    Tok::Caret => "^",
                    Tok::Bang => "!",
                    Tok::Tilde => "~",
                    Tok::Num(_) | Tok::Ident(_) => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes MiniC source. Supports `//` and `/* */` comments, decimal
/// and hexadecimal integer literals, and character literals (which lex
/// as their numeric value).
///
/// # Errors
///
/// Returns a [`LexError`] on an unrecognized character or unterminated
/// comment/literal.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let err = |line: u32, m: &str| LexError {
        line,
        message: m.to_owned(),
    };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &src[start + 2..i];
                    let v =
                        i64::from_str_radix(text, 16).map_err(|_| err(line, "bad hex literal"))?;
                    out.push(Token {
                        line,
                        kind: Tok::Num(v),
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v = src[start..i]
                        .parse::<i64>()
                        .map_err(|_| err(line, "bad integer literal"))?;
                    out.push(Token {
                        line,
                        kind: Tok::Num(v),
                    });
                }
            }
            b'\'' => {
                // Character literal: 'a' or '\n'.
                let (v, len) = match (bytes.get(i + 1), bytes.get(i + 2), bytes.get(i + 3)) {
                    (Some(b'\\'), Some(e), Some(b'\'')) => {
                        let v = match e {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            _ => return Err(err(line, "bad escape in char literal")),
                        };
                        (v, 4)
                    }
                    (Some(ch), Some(b'\''), _) if *ch != b'\\' => (*ch, 3),
                    _ => return Err(err(line, "bad char literal")),
                };
                out.push(Token {
                    line,
                    kind: Tok::Num(i64::from(v)),
                });
                i += len;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "int" => Tok::KwInt,
                    "char" => Tok::KwChar,
                    "void" => Tok::KwVoid,
                    "struct" => Tok::KwStruct,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "sizeof" => Tok::KwSizeof,
                    _ => Tok::Ident(word.to_owned()),
                };
                out.push(Token { line, kind });
            }
            _ => {
                let two = |a: u8| bytes.get(i + 1) == Some(&a);
                let (kind, len) = match c {
                    b'(' => (Tok::LParen, 1),
                    b')' => (Tok::RParen, 1),
                    b'{' => (Tok::LBrace, 1),
                    b'}' => (Tok::RBrace, 1),
                    b'[' => (Tok::LBracket, 1),
                    b']' => (Tok::RBracket, 1),
                    b';' => (Tok::Semi, 1),
                    b',' => (Tok::Comma, 1),
                    b'.' => (Tok::Dot, 1),
                    b'+' => (Tok::Plus, 1),
                    b'-' if two(b'>') => (Tok::Arrow, 2),
                    b'-' => (Tok::Minus, 1),
                    b'*' => (Tok::Star, 1),
                    b'/' => (Tok::Slash, 1),
                    b'%' => (Tok::Percent, 1),
                    b'<' if two(b'<') => (Tok::Shl, 2),
                    b'<' if two(b'=') => (Tok::Le, 2),
                    b'<' => (Tok::Lt, 1),
                    b'>' if two(b'>') => (Tok::Shr, 2),
                    b'>' if two(b'=') => (Tok::Ge, 2),
                    b'>' => (Tok::Gt, 1),
                    b'=' if two(b'=') => (Tok::EqEq, 2),
                    b'=' => (Tok::Eq, 1),
                    b'!' if two(b'=') => (Tok::Ne, 2),
                    b'!' => (Tok::Bang, 1),
                    b'&' if two(b'&') => (Tok::AmpAmp, 2),
                    b'&' => (Tok::Amp, 1),
                    b'|' if two(b'|') => (Tok::PipePipe, 2),
                    b'|' => (Tok::Pipe, 1),
                    b'^' => (Tok::Caret, 1),
                    b'~' => (Tok::Tilde, 1),
                    other => {
                        return Err(err(
                            line,
                            &format!("unexpected character `{}`", other as char),
                        ))
                    }
                };
                out.push(Token { line, kind });
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int foo while whiles"),
            vec![
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::KwWhile,
                Tok::Ident("whiles".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 0x1F"),
            vec![Tok::Num(0), Tok::Num(42), Tok::Num(31)]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            kinds("'a' '\\n' '\\0'"),
            vec![Tok::Num(97), Tok::Num(10), Tok::Num(0)]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("<< >> <= >= == != && || ->"),
            vec![
                Tok::Shl,
                Tok::Shr,
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Arrow
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'ab'").is_err());
    }

    #[test]
    fn token_display() {
        assert_eq!(Tok::Arrow.to_string(), "->");
        assert_eq!(Tok::Num(7).to_string(), "7");
        assert_eq!(Tok::Ident("x".into()).to_string(), "x");
    }
}
