//! The MiniC recursive-descent parser.

use crate::ast::{BinOp, Expr, ExprKind, Func, Global, Stmt, StructDef, Type, UnOp, Unit};
use crate::lexer::{Tok, Token};
use crate::sema::CompileError;

/// Parses a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns a [`CompileError`] on syntax errors.
pub fn parse(tokens: &[Token]) -> Result<Unit, CompileError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        next_id: 0,
    };
    p.unit()
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    next_id: u32,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), message)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), CompileError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{tok}`, found {}",
                self.peek()
                    .map_or("end of input".to_owned(), |t| format!("`{t}`"))
            )))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
            ))),
        }
    }

    fn fresh(&mut self, line: u32, kind: ExprKind) -> Expr {
        let id = self.next_id;
        self.next_id += 1;
        Expr { id, line, kind }
    }

    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct)
        )
    }

    /// Parses a base type followed by any number of `*`s.
    fn ty(&mut self) -> Result<Type, CompileError> {
        let base = match self.bump() {
            Some(Tok::KwInt) => Type::Int,
            Some(Tok::KwChar) => Type::Char,
            Some(Tok::KwVoid) => Type::Void,
            Some(Tok::KwStruct) => {
                let name = self.ident()?;
                Type::Struct(name)
            }
            other => {
                return Err(self.err(format!(
                    "expected type, found {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                )))
            }
        };
        let mut t = base;
        while self.eat(&Tok::Star) {
            t = t.ptr_to();
        }
        Ok(t)
    }

    /// Wraps `base` in array dimensions `[N]...` read left to right.
    fn dims(&mut self, base: Type) -> Result<Type, CompileError> {
        let mut sizes = Vec::new();
        while self.eat(&Tok::LBracket) {
            match self.bump() {
                Some(Tok::Num(n)) if n > 0 => sizes.push(n as usize),
                _ => return Err(self.err("array dimension must be a positive integer")),
            }
            self.expect(&Tok::RBracket)?;
        }
        // int a[2][3] is an array of 2 arrays of 3.
        let mut t = base;
        for &n in sizes.iter().rev() {
            t = Type::Array(Box::new(t), n);
        }
        Ok(t)
    }

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::KwStruct) && self.is_struct_def() {
                unit.structs.push(self.struct_def()?);
                continue;
            }
            let line = self.line();
            let ty = self.ty()?;
            let name = self.ident()?;
            if self.peek() == Some(&Tok::LParen) {
                unit.funcs.push(self.func_rest(ty, name, line)?);
            } else {
                let full_ty = self.dims(ty)?;
                let init = if self.eat(&Tok::Eq) {
                    Some(self.const_int()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                unit.globals.push(Global {
                    name,
                    ty: full_ty,
                    init,
                    line,
                });
            }
        }
        unit.expr_count = self.next_id;
        Ok(unit)
    }

    /// Distinguishes `struct S { ... };` from `struct S x;` /
    /// `struct S* f(...)`.
    fn is_struct_def(&self) -> bool {
        matches!(self.peek2(), Some(Tok::Ident(_)))
            && matches!(
                self.toks.get(self.pos + 2).map(|t| &t.kind),
                Some(Tok::LBrace)
            )
    }

    fn struct_def(&mut self) -> Result<StructDef, CompileError> {
        let line = self.line();
        self.expect(&Tok::KwStruct)?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let fty = self.ty()?;
            let fname = self.ident()?;
            let fty = self.dims(fty)?;
            self.expect(&Tok::Semi)?;
            fields.push((fname, fty));
        }
        self.expect(&Tok::Semi)?;
        Ok(StructDef { name, fields, line })
    }

    fn const_int(&mut self) -> Result<i64, CompileError> {
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Some(Tok::Num(n)) => Ok(if neg { -n } else { n }),
            _ => Err(self.err("expected constant integer initializer")),
        }
    }

    fn func_rest(&mut self, ret: Type, name: String, line: u32) -> Result<Func, CompileError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            if self.peek() == Some(&Tok::KwVoid) && self.peek2() == Some(&Tok::RParen) {
                self.pos += 2;
            } else {
                loop {
                    let pty = self.ty()?;
                    let pname = self.ident()?;
                    // Array parameters decay to pointers.
                    let pty = self.dims(pty)?.decayed();
                    params.push((pname, pty));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
        }
        if params.len() > 4 {
            return Err(CompileError::new(
                line,
                format!("function `{name}` has more than 4 parameters"),
            ));
        }
        self.expect(&Tok::LBrace)?;
        let body = self.block_body()?;
        Ok(Func {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    /// Statements up to and including the closing `}`.
    fn block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input inside block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::LBrace) => {
                self.pos += 1;
                Ok(Stmt::Block(self.block_body()?))
            }
            Some(Tok::KwIf) => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.stmt_as_block()?;
                let els = if self.eat(&Tok::KwElse) {
                    self.stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            Some(Tok::KwWhile) => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Tok::KwFor) => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let init = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let cond = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Some(Tok::KwReturn) => {
                self.pos += 1;
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(value, line))
            }
            Some(Tok::KwBreak) => {
                self.pos += 1;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Some(Tok::KwContinue) => {
                self.pos += 1;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            _ if self.at_type() => {
                let ty = self.ty()?;
                let name = self.ident()?;
                let ty = self.dims(ty)?;
                let init = if self.eat(&Tok::Eq) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Decl {
                    name,
                    ty,
                    init,
                    line,
                })
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.eat(&Tok::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // ---- expressions, by descending precedence ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let lhs = self.logic_or()?;
        if self.eat(&Tok::Eq) {
            let rhs = self.assignment()?;
            return Ok(self.fresh(line, ExprKind::Assign(Box::new(lhs), Box::new(rhs))));
        }
        Ok(lhs)
    }

    fn binary_level(
        &mut self,
        ops: &[(Tok, BinOp)],
        next: fn(&mut Self) -> Result<Expr, CompileError>,
    ) -> Result<Expr, CompileError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.eat(tok) {
                    let line = self.line();
                    let rhs = next(self)?;
                    lhs = self.fresh(line, ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logic_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::PipePipe, BinOp::Or)], Self::logic_and)
    }

    fn logic_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::AmpAmp, BinOp::And)], Self::bit_or)
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::Pipe, BinOp::BitOr)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::Caret, BinOp::BitXor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::Amp, BinOp::BitAnd)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(Tok::EqEq, BinOp::Eq), (Tok::Ne, BinOp::Ne)],
            Self::relational,
        )
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (Tok::Le, BinOp::Le),
                (Tok::Ge, BinOp::Ge),
                (Tok::Lt, BinOp::Lt),
                (Tok::Gt, BinOp::Gt),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Rem),
            ],
            Self::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let op = match self.peek() {
            Some(Tok::Minus) => Some(UnOp::Neg),
            Some(Tok::Bang) => Some(UnOp::Not),
            Some(Tok::Tilde) => Some(UnOp::BitNot),
            Some(Tok::Star) => Some(UnOp::Deref),
            Some(Tok::Amp) => Some(UnOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(self.fresh(line, ExprKind::Unary(op, Box::new(inner))));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(&Tok::RBracket)?;
                e = self.fresh(line, ExprKind::Index(Box::new(e), Box::new(idx)));
            } else if self.eat(&Tok::Dot) {
                let f = self.ident()?;
                e = self.fresh(line, ExprKind::Field(Box::new(e), f));
            } else if self.eat(&Tok::Arrow) {
                let f = self.ident()?;
                e = self.fresh(line, ExprKind::Arrow(Box::new(e), f));
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(self.fresh(line, ExprKind::Num(n)))
            }
            Some(Tok::KwSizeof) => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let t = self.ty()?;
                let t = self.dims(t)?;
                self.expect(&Tok::RParen)?;
                Ok(self.fresh(line, ExprKind::SizeOf(t)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(self.fresh(line, ExprKind::Call(name, args)))
                } else {
                    Ok(self.fresh(line, ExprKind::Var(name)))
                }
            }
            other => Err(self.err(format!(
                "expected expression, found {}",
                other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let u = parse_src("int add(int a, int b) { return a + b; }");
        assert_eq!(u.funcs.len(), 1);
        let f = &u.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert!(matches!(f.body[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn parses_globals_and_arrays() {
        let u = parse_src("int x = 5; int grid[4][8]; char buf[256];");
        assert_eq!(u.globals.len(), 3);
        assert_eq!(u.globals[0].init, Some(5));
        assert_eq!(
            u.globals[1].ty,
            Type::Array(Box::new(Type::Array(Box::new(Type::Int), 8)), 4)
        );
    }

    #[test]
    fn parses_struct_def_and_use() {
        let u = parse_src(
            "struct node { int value; struct node* next; };\n\
             struct node* head;\n\
             int main() { return 0; }",
        );
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].fields.len(), 2);
        assert_eq!(u.globals[0].ty, Type::Struct("node".into()).ptr_to());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let u = parse_src("int f() { return 1 + 2 * 3; }");
        let Stmt::Return(Some(e), _) = &u.funcs[0].body[0] else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected Add at root, got {:?}", e.kind)
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let u = parse_src("int f() { int a; int b; a = b = 1; return a; }");
        let Stmt::Expr(e) = &u.funcs[0].body[2] else {
            panic!()
        };
        let ExprKind::Assign(_, rhs) = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Assign(_, _)));
    }

    #[test]
    fn postfix_chains() {
        let u = parse_src("struct s { int f; }; int g(struct s** a) { return a[1][2].f; }");
        let Stmt::Return(Some(e), _) = &u.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Field(_, _)));
    }

    #[test]
    fn control_flow_statements() {
        let u = parse_src(
            "int f(int n) {\n\
               int i; int s;\n\
               s = 0;\n\
               for (i = 0; i < n; i = i + 1) {\n\
                 if (i % 2 == 0) { s = s + i; } else { continue; }\n\
                 while (s > 100) { s = s - 100; break; }\n\
               }\n\
               return s;\n\
             }",
        );
        assert!(matches!(u.funcs[0].body[3], Stmt::For { .. }));
    }

    #[test]
    fn sizeof_and_pointers() {
        let u = parse_src(
            "struct pair { int a; int b; };\n\
             int f() { int* p; p = malloc(4 * sizeof(struct pair)); return p[0]; }",
        );
        let Stmt::Expr(e) = &u.funcs[0].body[1] else {
            panic!()
        };
        let ExprKind::Assign(_, rhs) = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Call(_, _)));
    }

    #[test]
    fn too_many_params_rejected() {
        let r = parse(&lex("int f(int a, int b, int c, int d, int e) { return 0; }").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn syntax_errors_have_lines() {
        let e = parse(&lex("int f() {\n  return 1 +;\n}").unwrap()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn dangling_else_binds_inner() {
        let u = parse_src("int f(int a) { if (a) if (a > 1) return 2; else return 3; return 0; }");
        let Stmt::If { then, els, .. } = &u.funcs[0].body[0] else {
            panic!()
        };
        assert!(els.is_empty());
        let Stmt::If { els: inner_els, .. } = &then[0] else {
            panic!()
        };
        assert!(!inner_els.is_empty());
    }
}
