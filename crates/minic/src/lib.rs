//! # dl-minic
//!
//! A small C-like language ("MiniC") with a compiler targeting the
//! `dl-mips` instruction set. This crate plays the role of the paper's
//! GNU C compiler: the 18 synthetic SPEC-like workloads are written in
//! MiniC and compiled at two optimization levels whose output matches
//! the address-computation *shapes* the paper's heuristic keys on:
//!
//! * [`OptLevel::O0`] — every local variable and parameter lives in a
//!   stack slot and is reloaded around each use (gcc-`-O0` style), so
//!   address patterns bottom out in `sp`-relative dereferences.
//! * [`OptLevel::O1`] — scalar locals are register-allocated into
//!   `$s0`–`$s7`, constants fold, and multiplications by powers of two
//!   strength-reduce to shifts (gcc-`-O` style).
//!
//! The language: `int`/`char` scalars, pointers, multi-dimensional
//! arrays, `struct`s, the usual statements and operators, and the
//! runtime intrinsics `malloc`, `print`, `read`, `rand`, and `exit`
//! (which lower to `dl-sim` syscalls).
//!
//! # Example
//!
//! ```
//! use dl_minic::{compile, OptLevel};
//! use dl_sim::{run, RunConfig};
//!
//! let src = r#"
//!     int sum(int n) {
//!         int total; int i;
//!         total = 0;
//!         for (i = 1; i <= n; i = i + 1) { total = total + i; }
//!         return total;
//!     }
//!     int main() { print(sum(10)); return 0; }
//! "#;
//! let program = compile(src, OptLevel::O0)?;
//! let result = run(&program, &RunConfig::default()).unwrap();
//! assert_eq!(result.output, vec![55]);
//! # Ok::<(), dl_minic::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod gen;
pub mod lexer;
pub mod parser;
pub mod sema;

use dl_mips::program::Program;

pub use ast::{BinOp, Expr, ExprKind, Func, Global, Stmt, StructDef, Type, UnOp, Unit};
pub use lexer::LexError;
pub use sema::CompileError;

/// Optimization level of the code generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Unoptimized: all locals in stack slots (the paper's training
    /// configuration).
    O0,
    /// Optimized: register-allocated scalars, constant folding,
    /// strength reduction (the paper's `-O` configuration).
    O1,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
        })
    }
}

/// Compiles MiniC source to a `dl-mips` program.
///
/// # Errors
///
/// Returns a [`CompileError`] on lexical, syntactic, or semantic
/// errors (with 1-based line numbers).
pub fn compile(source: &str, opt: OptLevel) -> Result<Program, CompileError> {
    let tokens = lexer::lex(source).map_err(CompileError::from_lex)?;
    let unit = parser::parse(&tokens)?;
    let info = sema::check(&unit)?;
    gen::generate(&unit, &info, opt)
}
