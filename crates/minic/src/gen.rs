//! The MiniC code generator.
//!
//! At [`OptLevel::O0`] the output mirrors gcc `-O0`: every local and
//! parameter lives in a stack slot and is reloaded around each use, so
//! the address patterns the paper's heuristic consumes have their
//! characteristic `sp`-relative dereference shapes. At
//! [`OptLevel::O1`] scalar locals whose address is never taken are
//! register-allocated into `$s0`–`$s7`, constants fold, and
//! multiplications by powers of two become shifts.

use std::collections::{BTreeMap, BTreeSet};

use dl_mips::asm::AsmBuilder;
use dl_mips::inst::{Inst, Label};
use dl_mips::program::Program;
use dl_mips::reg::Reg;

use crate::ast::{BinOp, Expr, ExprKind, Func, Stmt, Type, UnOp, Unit};
use crate::sema::{intrinsic_signature, CompileError, SemaInfo};
use crate::OptLevel;

/// Temp-register spill area at the bottom of every frame: one word per
/// temp register, used to keep expression temporaries alive across
/// calls.
const SPILL_WORDS: u32 = 10;

/// Largest frame we allow (offsets must fit comfortably in i16).
const MAX_FRAME: u32 = 30_000;

/// Where a variable lives.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VarLoc {
    /// `offset($sp)`.
    Slot(i16),
    /// A callee-saved register (O1 scalars).
    SReg(Reg),
    /// Absolute data-segment address.
    Global(u32),
}

/// Generates a program from a checked unit.
///
/// # Errors
///
/// Returns a [`CompileError`] if a function frame exceeds the i16
/// offset range or an expression needs more temporaries than the
/// register pool provides.
pub fn generate(unit: &Unit, info: &SemaInfo, opt: OptLevel) -> Result<Program, CompileError> {
    let mut b = AsmBuilder::new();
    let mut globals: BTreeMap<String, (u32, Type)> = BTreeMap::new();
    for g in &unit.globals {
        let size = info.size_of(&g.ty);
        let align = info.align_of(&g.ty).max(if size >= 4 { 4 } else { 1 });
        let addr = b.alloc_global(g.name.clone(), size, align);
        if let Some(v) = g.init {
            match info.size_of(&g.ty) {
                1 => b.poke_byte(addr, v as u8),
                _ => b.poke_word(addr, v as i32),
            }
        }
        globals.insert(g.name.clone(), (addr, g.ty.clone()));
    }
    for f in &unit.funcs {
        let plan = plan_frame(f, info, opt)?;
        let mut fg = FuncGen {
            b: &mut b,
            info,
            unit,
            globals: &globals,
            opt,
            plan: &plan,
            scopes: Vec::new(),
            decl_cursor: 0,
            free: Reg::TEMPS[..8].to_vec(),
            live: Vec::new(),
            loop_stack: Vec::new(),
            epilogue: Label(0),
            line: f.line,
        };
        fg.function(f)?;
    }
    b.finish("main")
        .map_err(|e| CompileError::new(0, format!("assembly error: {e}")))
}

/// The frame plan of one function, computed before emission.
#[derive(Debug)]
struct FramePlan {
    frame: u32,
    param_locs: Vec<VarLoc>,
    decl_locs: Vec<VarLoc>,
    used_sregs: Vec<Reg>,
    ra_off: i16,
    sreg_base: i16,
}

/// Collects declarations in the deterministic traversal order the
/// generator will also use, plus the set of address-taken names.
fn collect_decls<'a>(body: &'a [Stmt], out: &mut Vec<(&'a str, &'a Type)>) {
    for s in body {
        match s {
            Stmt::Decl { name, ty, .. } => out.push((name, ty)),
            Stmt::If { then, els, .. } => {
                collect_decls(then, out);
                collect_decls(els, out);
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => collect_decls(body, out),
            Stmt::Block(inner) => collect_decls(inner, out),
            _ => {}
        }
    }
}

fn collect_addr_taken(e: &Expr, out: &mut BTreeSet<String>) {
    match &e.kind {
        ExprKind::Unary(UnOp::Addr, inner) => {
            if let ExprKind::Var(name) = &inner.kind {
                out.insert(name.clone());
            }
            collect_addr_taken(inner, out);
        }
        ExprKind::Unary(_, a) => collect_addr_taken(a, out),
        ExprKind::Binary(_, a, b) | ExprKind::Assign(a, b) | ExprKind::Index(a, b) => {
            collect_addr_taken(a, out);
            collect_addr_taken(b, out);
        }
        ExprKind::Field(a, _) | ExprKind::Arrow(a, _) => collect_addr_taken(a, out),
        ExprKind::Call(_, args) => {
            for a in args {
                collect_addr_taken(a, out);
            }
        }
        ExprKind::Num(_) | ExprKind::Var(_) | ExprKind::SizeOf(_) => {}
    }
}

fn collect_addr_taken_stmts(body: &[Stmt], out: &mut BTreeSet<String>) {
    for s in body {
        match s {
            Stmt::Expr(e) => collect_addr_taken(e, out),
            Stmt::Decl { init: Some(e), .. } => collect_addr_taken(e, out),
            Stmt::Decl { .. } => {}
            Stmt::If { cond, then, els } => {
                collect_addr_taken(cond, out);
                collect_addr_taken_stmts(then, out);
                collect_addr_taken_stmts(els, out);
            }
            Stmt::While { cond, body } => {
                collect_addr_taken(cond, out);
                collect_addr_taken_stmts(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in [init, cond, step].into_iter().flatten() {
                    collect_addr_taken(e, out);
                }
                collect_addr_taken_stmts(body, out);
            }
            Stmt::Return(Some(e), _) => collect_addr_taken(e, out),
            Stmt::Block(inner) => collect_addr_taken_stmts(inner, out),
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
        }
    }
}

fn plan_frame(f: &Func, info: &SemaInfo, opt: OptLevel) -> Result<FramePlan, CompileError> {
    let mut decls = Vec::new();
    collect_decls(&f.body, &mut decls);
    let mut addr_taken = BTreeSet::new();
    collect_addr_taken_stmts(&f.body, &mut addr_taken);

    let mut sregs = Reg::SAVED.iter().copied();
    let mut used_sregs = Vec::new();
    let mut offset = SPILL_WORDS * 4;
    let mut place = |ty: &Type, name: &str| -> VarLoc {
        if opt == OptLevel::O1 && ty.is_scalar() && !addr_taken.contains(name) {
            if let Some(r) = sregs.next() {
                used_sregs.push(r);
                return VarLoc::SReg(r);
            }
        }
        let align = info.align_of(ty).max(4); // slots are word-aligned
        let size = info.size_of(ty).max(4);
        offset = offset.div_ceil(align) * align;
        let loc = VarLoc::Slot(offset as i16);
        offset += size;
        loc
    };
    let param_locs: Vec<VarLoc> = f.params.iter().map(|(name, ty)| place(ty, name)).collect();
    let decl_locs: Vec<VarLoc> = decls.iter().map(|(name, ty)| place(ty, name)).collect();
    let sreg_base = offset.div_ceil(4) * 4;
    offset = sreg_base + used_sregs.len() as u32 * 4;
    let ra_off = offset;
    offset += 4;
    let frame = offset.div_ceil(8) * 8;
    if frame > MAX_FRAME {
        return Err(CompileError::new(
            f.line,
            format!(
                "frame of `{}` is {frame} bytes; move large arrays to globals or the heap",
                f.name
            ),
        ));
    }
    Ok(FramePlan {
        frame,
        param_locs,
        decl_locs,
        used_sregs,
        ra_off: ra_off as i16,
        sreg_base: sreg_base as i16,
    })
}

struct FuncGen<'a> {
    b: &'a mut AsmBuilder,
    info: &'a SemaInfo,
    unit: &'a Unit,
    globals: &'a BTreeMap<String, (u32, Type)>,
    opt: OptLevel,
    plan: &'a FramePlan,
    scopes: Vec<BTreeMap<String, (VarLoc, Type)>>,
    decl_cursor: usize,
    free: Vec<Reg>,
    live: Vec<Reg>,
    loop_stack: Vec<(Label, Label)>, // (continue target, break target)
    epilogue: Label,
    line: u32,
}

impl FuncGen<'_> {
    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError::new(self.line, message)
    }

    fn alloc(&mut self) -> Result<Reg, CompileError> {
        let r = self
            .free
            .pop()
            .ok_or_else(|| self.err("expression too deep: temporary registers exhausted"))?;
        self.live.push(r);
        Ok(r)
    }

    fn release(&mut self, r: Reg) {
        if let Some(pos) = self.live.iter().position(|&x| x == r) {
            self.live.remove(pos);
            self.free.push(r);
        }
    }

    fn spill_slot(r: Reg) -> i16 {
        let idx = Reg::TEMPS
            .iter()
            .position(|&t| t == r)
            .expect("spilled register is a temp");
        (idx as i16) * 4
    }

    fn ty_of(&self, e: &Expr) -> &Type {
        self.info.type_of(e)
    }

    fn is_aggregate(ty: &Type) -> bool {
        matches!(ty, Type::Array(..) | Type::Struct(_))
    }

    fn lookup(&self, name: &str) -> Option<(VarLoc, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        self.globals
            .get(name)
            .map(|(addr, ty)| (VarLoc::Global(*addr), ty.clone()))
    }

    fn function(&mut self, f: &Func) -> Result<(), CompileError> {
        self.b.begin_func(f.name.clone());
        self.epilogue = self.b.new_label();
        let frame = self.plan.frame as i16;
        self.b.push(Inst::Addiu {
            rt: Reg::Sp,
            rs: Reg::Sp,
            imm: -frame,
        });
        self.b.push(Inst::Sw {
            rt: Reg::Ra,
            base: Reg::Sp,
            off: self.plan.ra_off,
        });
        for (i, &r) in self.plan.used_sregs.iter().enumerate() {
            self.b.push(Inst::Sw {
                rt: r,
                base: Reg::Sp,
                off: self.plan.sreg_base + 4 * i as i16,
            });
        }
        // Park parameters in their homes.
        self.scopes.push(BTreeMap::new());
        for (i, (name, ty)) in f.params.iter().enumerate() {
            let loc = self.plan.param_locs[i].clone();
            let arg = Reg::ARGS[i];
            match &loc {
                VarLoc::Slot(off) => {
                    self.b.push(Inst::Sw {
                        rt: arg,
                        base: Reg::Sp,
                        off: *off,
                    });
                }
                VarLoc::SReg(r) => self.b.mv(*r, arg),
                VarLoc::Global(_) => unreachable!("params are never global"),
            }
            self.scopes
                .last_mut()
                .expect("scope pushed")
                .insert(name.clone(), (loc, ty.clone()));
        }
        self.stmts(&f.body)?;
        // Implicit return (value 0 for non-void mains falling off).
        self.b.li(Reg::V0, 0);
        self.b.bind(self.epilogue);
        for (i, &r) in self.plan.used_sregs.iter().enumerate() {
            self.b.push(Inst::Lw {
                rt: r,
                base: Reg::Sp,
                off: self.plan.sreg_base + 4 * i as i16,
            });
        }
        self.b.push(Inst::Lw {
            rt: Reg::Ra,
            base: Reg::Sp,
            off: self.plan.ra_off,
        });
        self.b.push(Inst::Addiu {
            rt: Reg::Sp,
            rs: Reg::Sp,
            imm: frame,
        });
        self.b.push(Inst::Jr { rs: Reg::Ra });
        self.scopes.pop();
        self.b.end_func();
        Ok(())
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(BTreeMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Expr(e) => {
                self.line = e.line;
                let r = self.rvalue(e)?;
                self.release(r);
                Ok(())
            }
            Stmt::Decl { name, ty, init, .. } => {
                let loc = self.plan.decl_locs[self.decl_cursor].clone();
                self.decl_cursor += 1;
                self.scopes
                    .last_mut()
                    .expect("scope pushed")
                    .insert(name.clone(), (loc.clone(), ty.clone()));
                if let Some(e) = init {
                    self.line = e.line;
                    let r = self.rvalue(e)?;
                    self.store_to(&loc, ty, r);
                    self.release(r);
                }
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let else_l = self.b.new_label();
                let end_l = self.b.new_label();
                let c = self.rvalue(cond)?;
                self.b.push(Inst::Beq {
                    rs: c,
                    rt: Reg::Zero,
                    target: else_l,
                });
                self.release(c);
                self.stmts(then)?;
                if els.is_empty() {
                    self.b.bind(else_l);
                    // end_l unused but must be bound for the builder.
                    self.b.bind(end_l);
                } else {
                    self.b.push(Inst::J { target: end_l });
                    self.b.bind(else_l);
                    self.stmts(els)?;
                    self.b.bind(end_l);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let top = self.b.new_label();
                let end = self.b.new_label();
                self.b.bind(top);
                let c = self.rvalue(cond)?;
                self.b.push(Inst::Beq {
                    rs: c,
                    rt: Reg::Zero,
                    target: end,
                });
                self.release(c);
                self.loop_stack.push((top, end));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.b.push(Inst::J { target: top });
                self.b.bind(end);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(e) = init {
                    let r = self.rvalue(e)?;
                    self.release(r);
                }
                let top = self.b.new_label();
                let cont = self.b.new_label();
                let end = self.b.new_label();
                self.b.bind(top);
                if let Some(c) = cond {
                    let r = self.rvalue(c)?;
                    self.b.push(Inst::Beq {
                        rs: r,
                        rt: Reg::Zero,
                        target: end,
                    });
                    self.release(r);
                }
                self.loop_stack.push((cont, end));
                self.stmts(body)?;
                self.loop_stack.pop();
                self.b.bind(cont);
                if let Some(st) = step {
                    let r = self.rvalue(st)?;
                    self.release(r);
                }
                self.b.push(Inst::J { target: top });
                self.b.bind(end);
                Ok(())
            }
            Stmt::Return(value, line) => {
                self.line = *line;
                if let Some(e) = value {
                    let r = self.rvalue(e)?;
                    self.b.mv(Reg::V0, r);
                    self.release(r);
                }
                self.b.push(Inst::J {
                    target: self.epilogue,
                });
                Ok(())
            }
            Stmt::Break(line) => {
                self.line = *line;
                let (_, end) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err("break outside loop"))?;
                self.b.push(Inst::J { target: end });
                Ok(())
            }
            Stmt::Continue(line) => {
                self.line = *line;
                let (cont, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err("continue outside loop"))?;
                self.b.push(Inst::J { target: cont });
                Ok(())
            }
            Stmt::Block(inner) => self.stmts(inner),
        }
    }

    /// Stores register `r` into a variable home.
    fn store_to(&mut self, loc: &VarLoc, ty: &Type, r: Reg) {
        match loc {
            VarLoc::Slot(off) => {
                let inst = if self.info.size_of(ty) == 1 {
                    Inst::Sb {
                        rt: r,
                        base: Reg::Sp,
                        off: *off,
                    }
                } else {
                    Inst::Sw {
                        rt: r,
                        base: Reg::Sp,
                        off: *off,
                    }
                };
                self.b.push(inst);
            }
            VarLoc::SReg(s) => self.b.mv(*s, r),
            VarLoc::Global(addr) => {
                let gp_off = *addr as i64 - i64::from(dl_mips::layout::GP_VALUE);
                if let Ok(off) = i16::try_from(gp_off) {
                    let inst = if self.info.size_of(ty) == 1 {
                        Inst::Sb {
                            rt: r,
                            base: Reg::Gp,
                            off,
                        }
                    } else {
                        Inst::Sw {
                            rt: r,
                            base: Reg::Gp,
                            off,
                        }
                    };
                    self.b.push(inst);
                } else {
                    let a = self.alloc().expect("scratch for far global");
                    self.b.la(a, *addr);
                    let inst = if self.info.size_of(ty) == 1 {
                        Inst::Sb {
                            rt: r,
                            base: a,
                            off: 0,
                        }
                    } else {
                        Inst::Sw {
                            rt: r,
                            base: a,
                            off: 0,
                        }
                    };
                    self.b.push(inst);
                    self.release(a);
                }
            }
        }
    }

    /// Emits a load of `ty` from `off(base)` into a fresh temp.
    fn emit_load(&mut self, base: Reg, off: i16, ty: &Type) -> Result<Reg, CompileError> {
        let r = self.alloc()?;
        let inst = if self.info.size_of(ty) == 1 {
            Inst::Lb { rt: r, base, off }
        } else {
            Inst::Lw { rt: r, base, off }
        };
        self.b.push(inst);
        Ok(r)
    }

    /// Compile-time constant evaluation (O1 only).
    fn const_eval(&self, e: &Expr) -> Option<i64> {
        if self.opt != OptLevel::O1 {
            return None;
        }
        self.const_eval_always(e)
    }

    /// Compile-time evaluation at the machine's 32-bit width: every
    /// intermediate result truncates to `i32`, exactly as the emitted
    /// code would compute it.
    fn const_eval_always(&self, e: &Expr) -> Option<i64> {
        self.const_eval_i32(e).map(i64::from)
    }

    fn const_eval_i32(&self, e: &Expr) -> Option<i32> {
        match &e.kind {
            ExprKind::Num(n) => Some(*n as i32),
            ExprKind::SizeOf(t) => Some(self.info.size_of(t) as i32),
            ExprKind::Unary(UnOp::Neg, a) => self.const_eval_i32(a).map(i32::wrapping_neg),
            ExprKind::Unary(UnOp::Not, a) => self.const_eval_i32(a).map(|v| i32::from(v == 0)),
            ExprKind::Unary(UnOp::BitNot, a) => self.const_eval_i32(a).map(|v| !v),
            ExprKind::Binary(op, a, b) => {
                let (x, y) = (self.const_eval_i32(a)?, self.const_eval_i32(b)?);
                // Pointer-typed operands never fold (scaling applies).
                if self.ty_of(a).decayed().is_pointer() || self.ty_of(b).decayed().is_pointer() {
                    return None;
                }
                Some(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return None;
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return None;
                        }
                        x.wrapping_rem(y)
                    }
                    // The hardware masks shift amounts to five bits.
                    BinOp::Shl => x.wrapping_shl(y as u32 & 31),
                    BinOp::Shr => x.wrapping_shr(y as u32 & 31),
                    BinOp::Lt => i32::from(x < y),
                    BinOp::Le => i32::from(x <= y),
                    BinOp::Gt => i32::from(x > y),
                    BinOp::Ge => i32::from(x >= y),
                    BinOp::Eq => i32::from(x == y),
                    BinOp::Ne => i32::from(x != y),
                    BinOp::BitAnd => x & y,
                    BinOp::BitOr => x | y,
                    BinOp::BitXor => x ^ y,
                    BinOp::And => i32::from(x != 0 && y != 0),
                    BinOp::Or => i32::from(x != 0 || y != 0),
                })
            }
            _ => None,
        }
    }

    /// Evaluates an expression into a fresh temp register.
    fn rvalue(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        self.line = e.line;
        if let Some(v) = self.const_eval(e) {
            let r = self.alloc()?;
            self.b.li(r, v as i32);
            return Ok(r);
        }
        match &e.kind {
            ExprKind::Num(n) => {
                let r = self.alloc()?;
                self.b.li(r, *n as i32);
                Ok(r)
            }
            ExprKind::SizeOf(t) => {
                let r = self.alloc()?;
                self.b.li(r, self.info.size_of(t) as i32);
                Ok(r)
            }
            ExprKind::Var(name) => {
                let (loc, ty) = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
                if Self::is_aggregate(&ty) {
                    // Arrays/structs decay to their address.
                    return self.address_of_loc(&loc);
                }
                match loc {
                    VarLoc::Slot(off) => self.emit_load(Reg::Sp, off, &ty),
                    // Register variables are read in place: every
                    // operation writes only to freshly allocated
                    // temporaries, so the s-register is never
                    // clobbered by its consumers.
                    VarLoc::SReg(s) => Ok(s),
                    VarLoc::Global(addr) => {
                        let gp_off = addr as i64 - i64::from(dl_mips::layout::GP_VALUE);
                        if let Ok(off) = i16::try_from(gp_off) {
                            self.emit_load(Reg::Gp, off, &ty)
                        } else {
                            let a = self.alloc()?;
                            self.b.la(a, addr);
                            let r = self.emit_load(a, 0, &ty)?;
                            self.release(a);
                            Ok(r)
                        }
                    }
                }
            }
            ExprKind::Unary(op, inner) => self.unary(*op, inner),
            ExprKind::Binary(op, l, r) => self.binary(*op, l, r),
            ExprKind::Assign(lhs, rhs) => self.assign(lhs, rhs),
            ExprKind::Index(..) | ExprKind::Field(..) | ExprKind::Arrow(..) => {
                let ty = self.ty_of(e).clone();
                let addr = self.lvalue_addr(e)?;
                if Self::is_aggregate(&ty) {
                    return Ok(addr);
                }
                let r = self.emit_load(addr, 0, &ty)?;
                self.release(addr);
                Ok(r)
            }
            ExprKind::Call(name, args) => self.call(name, args),
        }
    }

    fn address_of_loc(&mut self, loc: &VarLoc) -> Result<Reg, CompileError> {
        let r = self.alloc()?;
        match loc {
            VarLoc::Slot(off) => {
                self.b.push(Inst::Addiu {
                    rt: r,
                    rs: Reg::Sp,
                    imm: *off,
                });
            }
            VarLoc::Global(addr) => self.b.la(r, *addr),
            VarLoc::SReg(_) => {
                return Err(self.err("cannot take the address of a register variable"))
            }
        }
        Ok(r)
    }

    /// Computes the address of an lvalue into a fresh temp register.
    fn lvalue_addr(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        self.line = e.line;
        match &e.kind {
            ExprKind::Var(name) => {
                let (loc, _) = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
                self.address_of_loc(&loc)
            }
            ExprKind::Unary(UnOp::Deref, inner) => self.rvalue(inner),
            ExprKind::Index(base, idx) => {
                let elem = self.ty_of(e).clone();
                let elem_size = self.info.size_of(&elem);
                let b_reg = self.rvalue(base)?;
                // Constant index folds into scaled displacement add.
                if let Some(c) = self.const_eval(idx) {
                    let disp = c * i64::from(elem_size);
                    if let Ok(imm) = i16::try_from(disp) {
                        let r = self.alloc()?;
                        self.b.push(Inst::Addiu {
                            rt: r,
                            rs: b_reg,
                            imm,
                        });
                        self.release(b_reg);
                        return Ok(r);
                    }
                }
                let i_reg = self.rvalue(idx)?;
                let scaled = self.scale(i_reg, elem_size)?;
                let r = self.alloc()?;
                self.b.push(Inst::Addu {
                    rd: r,
                    rs: b_reg,
                    rt: scaled,
                });
                self.release(scaled);
                self.release(b_reg);
                Ok(r)
            }
            ExprKind::Field(base, fname) => {
                let Type::Struct(sname) = self.ty_of(base).clone() else {
                    return Err(self.err("`.` on non-struct"));
                };
                let (off, _) = self.info.structs[&sname]
                    .field(fname)
                    .ok_or_else(|| self.err(format!("no field `{fname}`")))?;
                let b_reg = self.lvalue_addr(base)?;
                let r = self.alloc()?;
                self.b.push(Inst::Addiu {
                    rt: r,
                    rs: b_reg,
                    imm: off as i16,
                });
                self.release(b_reg);
                Ok(r)
            }
            ExprKind::Arrow(base, fname) => {
                let Type::Ptr(inner) = self.ty_of(base).decayed() else {
                    return Err(self.err("`->` on non-pointer"));
                };
                let Type::Struct(sname) = *inner else {
                    return Err(self.err("`->` on pointer to non-struct"));
                };
                let (off, _) = self.info.structs[&sname]
                    .field(fname)
                    .ok_or_else(|| self.err(format!("no field `{fname}`")))?;
                let b_reg = self.rvalue(base)?;
                let r = self.alloc()?;
                self.b.push(Inst::Addiu {
                    rt: r,
                    rs: b_reg,
                    imm: off as i16,
                });
                self.release(b_reg);
                Ok(r)
            }
            _ => Err(self.err("expression is not an lvalue")),
        }
    }

    /// Multiplies `r` by a constant size, strength-reducing powers of
    /// two to shifts. Consumes `r`, returns a fresh register.
    fn scale(&mut self, r: Reg, size: u32) -> Result<Reg, CompileError> {
        if size == 1 {
            return Ok(r);
        }
        let out = self.alloc()?;
        if size.is_power_of_two() {
            self.b.push(Inst::Sll {
                rd: out,
                rt: r,
                shamt: size.trailing_zeros() as u8,
            });
        } else {
            let c = self.alloc()?;
            self.b.li(c, size as i32);
            self.b.push(Inst::Mul {
                rd: out,
                rs: r,
                rt: c,
            });
            self.release(c);
        }
        self.release(r);
        Ok(out)
    }

    fn unary(&mut self, op: UnOp, inner: &Expr) -> Result<Reg, CompileError> {
        match op {
            UnOp::Neg => {
                let r = self.rvalue(inner)?;
                let out = self.alloc()?;
                self.b.push(Inst::Subu {
                    rd: out,
                    rs: Reg::Zero,
                    rt: r,
                });
                self.release(r);
                Ok(out)
            }
            UnOp::Not => {
                let r = self.rvalue(inner)?;
                let out = self.alloc()?;
                self.b.push(Inst::Sltiu {
                    rt: out,
                    rs: r,
                    imm: 1,
                });
                self.release(r);
                Ok(out)
            }
            UnOp::BitNot => {
                let r = self.rvalue(inner)?;
                let out = self.alloc()?;
                self.b.push(Inst::Nor {
                    rd: out,
                    rs: r,
                    rt: Reg::Zero,
                });
                self.release(r);
                Ok(out)
            }
            UnOp::Deref => {
                let ty = match self.ty_of(inner).decayed() {
                    Type::Ptr(t) => *t,
                    _ => return Err(self.err("dereference of non-pointer")),
                };
                let addr = self.rvalue(inner)?;
                if Self::is_aggregate(&ty) {
                    return Ok(addr);
                }
                let r = self.emit_load(addr, 0, &ty)?;
                self.release(addr);
                Ok(r)
            }
            UnOp::Addr => self.lvalue_addr(inner),
        }
    }

    fn binary(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Result<Reg, CompileError> {
        // Short-circuit logic first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let out = self.alloc()?;
            let end = self.b.new_label();
            let a = self.rvalue(l)?;
            self.b.push(Inst::Sltu {
                rd: out,
                rs: Reg::Zero,
                rt: a,
            });
            self.release(a);
            match op {
                BinOp::And => self.b.push(Inst::Beq {
                    rs: out,
                    rt: Reg::Zero,
                    target: end,
                }),
                _ => self.b.push(Inst::Bne {
                    rs: out,
                    rt: Reg::Zero,
                    target: end,
                }),
            };
            let b2 = self.rvalue(r)?;
            self.b.push(Inst::Sltu {
                rd: out,
                rs: Reg::Zero,
                rt: b2,
            });
            self.release(b2);
            self.b.bind(end);
            return Ok(out);
        }

        let lt = self.ty_of(l).decayed();
        let rt_ty = self.ty_of(r).decayed();

        // Pointer arithmetic scaling.
        if matches!(op, BinOp::Add | BinOp::Sub) {
            match (&lt, &rt_ty) {
                (Type::Ptr(elem), t) if t.is_integral() => {
                    let size = self.info.size_of(elem);
                    let a = self.rvalue(l)?;
                    let b2 = self.rvalue(r)?;
                    let scaled = self.scale(b2, size)?;
                    let out = self.alloc()?;
                    let inst = if op == BinOp::Add {
                        Inst::Addu {
                            rd: out,
                            rs: a,
                            rt: scaled,
                        }
                    } else {
                        Inst::Subu {
                            rd: out,
                            rs: a,
                            rt: scaled,
                        }
                    };
                    self.b.push(inst);
                    self.release(scaled);
                    self.release(a);
                    return Ok(out);
                }
                (t, Type::Ptr(elem)) if t.is_integral() && op == BinOp::Add => {
                    let size = self.info.size_of(elem);
                    let a = self.rvalue(l)?;
                    let scaled = self.scale(a, size)?;
                    let b2 = self.rvalue(r)?;
                    let out = self.alloc()?;
                    self.b.push(Inst::Addu {
                        rd: out,
                        rs: b2,
                        rt: scaled,
                    });
                    self.release(scaled);
                    self.release(b2);
                    return Ok(out);
                }
                (Type::Ptr(elem), Type::Ptr(_)) if op == BinOp::Sub => {
                    let size = self.info.size_of(elem);
                    let a = self.rvalue(l)?;
                    let b2 = self.rvalue(r)?;
                    let diff = self.alloc()?;
                    self.b.push(Inst::Subu {
                        rd: diff,
                        rs: a,
                        rt: b2,
                    });
                    self.release(b2);
                    self.release(a);
                    if size <= 1 {
                        return Ok(diff);
                    }
                    let out = self.alloc()?;
                    if size.is_power_of_two() {
                        self.b.push(Inst::Sra {
                            rd: out,
                            rt: diff,
                            shamt: size.trailing_zeros() as u8,
                        });
                    } else {
                        let c = self.alloc()?;
                        self.b.li(c, size as i32);
                        self.b.push(Inst::Div {
                            rd: out,
                            rs: diff,
                            rt: c,
                        });
                        self.release(c);
                    }
                    self.release(diff);
                    return Ok(out);
                }
                _ => {}
            }
        }

        // O1: multiply by a power-of-two constant becomes a shift.
        if self.opt == OptLevel::O1 && op == BinOp::Mul {
            for (konst, var) in [(r, l), (l, r)] {
                if let Some(c) = self.const_eval(konst) {
                    if c > 0 && (c as u64).is_power_of_two() {
                        let v = self.rvalue(var)?;
                        let out = self.alloc()?;
                        self.b.push(Inst::Sll {
                            rd: out,
                            rt: v,
                            shamt: (c as u64).trailing_zeros() as u8,
                        });
                        self.release(v);
                        return Ok(out);
                    }
                }
            }
        }

        let a = self.rvalue(l)?;
        let b2 = self.rvalue(r)?;
        let out = self.alloc()?;
        match op {
            BinOp::Add => {
                self.b.push(Inst::Addu {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::Sub => {
                self.b.push(Inst::Subu {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::Mul => {
                self.b.push(Inst::Mul {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::Div => {
                self.b.push(Inst::Div {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::Rem => {
                self.b.push(Inst::Rem {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::Shl => {
                self.b.push(Inst::Sllv {
                    rd: out,
                    rt: a,
                    rs: b2,
                });
            }
            BinOp::Shr => {
                self.b.push(Inst::Srav {
                    rd: out,
                    rt: a,
                    rs: b2,
                });
            }
            BinOp::BitAnd => {
                self.b.push(Inst::And {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::BitOr => {
                self.b.push(Inst::Or {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::BitXor => {
                self.b.push(Inst::Xor {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::Lt => {
                self.b.push(Inst::Slt {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
            }
            BinOp::Gt => {
                self.b.push(Inst::Slt {
                    rd: out,
                    rs: b2,
                    rt: a,
                });
            }
            BinOp::Le => {
                // a <= b  ==  !(b < a)
                self.b.push(Inst::Slt {
                    rd: out,
                    rs: b2,
                    rt: a,
                });
                self.b.push(Inst::Xori {
                    rt: out,
                    rs: out,
                    imm: 1,
                });
            }
            BinOp::Ge => {
                self.b.push(Inst::Slt {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
                self.b.push(Inst::Xori {
                    rt: out,
                    rs: out,
                    imm: 1,
                });
            }
            BinOp::Eq => {
                self.b.push(Inst::Subu {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
                self.b.push(Inst::Sltiu {
                    rt: out,
                    rs: out,
                    imm: 1,
                });
            }
            BinOp::Ne => {
                self.b.push(Inst::Subu {
                    rd: out,
                    rs: a,
                    rt: b2,
                });
                self.b.push(Inst::Sltu {
                    rd: out,
                    rs: Reg::Zero,
                    rt: out,
                });
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
        self.release(b2);
        self.release(a);
        Ok(out)
    }

    fn assign(&mut self, lhs: &Expr, rhs: &Expr) -> Result<Reg, CompileError> {
        let val = self.rvalue(rhs)?;
        // Direct variable homes avoid materializing an address.
        if let ExprKind::Var(name) = &lhs.kind {
            let (loc, ty) = self
                .lookup(name)
                .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
            self.store_to(&loc, &ty, val);
            return Ok(val);
        }
        let ty = self.ty_of(lhs).clone();
        let addr = self.lvalue_addr(lhs)?;
        let inst = if self.info.size_of(&ty) == 1 {
            Inst::Sb {
                rt: val,
                base: addr,
                off: 0,
            }
        } else {
            Inst::Sw {
                rt: val,
                base: addr,
                off: 0,
            }
        };
        self.b.push(inst);
        self.release(addr);
        Ok(val)
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<Reg, CompileError> {
        // Evaluate arguments left to right into temps.
        let mut arg_regs = Vec::new();
        for a in args {
            arg_regs.push(self.rvalue(a)?);
        }
        if let Some((_, _ret)) = intrinsic_signature(name) {
            // Intrinsics lower to syscalls; in this machine a syscall
            // clobbers only $v0, so live temps survive.
            if let Some(&a0) = arg_regs.first() {
                self.b.mv(Reg::A0, a0);
            }
            let code = match name {
                "print" => dl_sim_syscall::PRINT_INT,
                "read" => dl_sim_syscall::READ_INT,
                "malloc" => dl_sim_syscall::MALLOC,
                "exit" => dl_sim_syscall::EXIT,
                "rand" => dl_sim_syscall::RAND,
                _ => unreachable!("intrinsic list matches sema"),
            };
            self.b.li(Reg::V0, code as i32);
            self.b.push(Inst::Syscall);
            for r in arg_regs {
                self.release(r);
            }
            let out = self.alloc()?;
            self.b.mv(out, Reg::V0);
            return Ok(out);
        }
        // User call: spill every live temp, load args into $a0-$a3,
        // call, restore survivors. Arguments living in callee-saved
        // registers move directly (they survive the call anyway).
        let live_before: Vec<Reg> = self.live.clone();
        for &r in &live_before {
            self.b.push(Inst::Sw {
                rt: r,
                base: Reg::Sp,
                off: Self::spill_slot(r),
            });
        }
        for (i, &r) in arg_regs.iter().enumerate() {
            if Reg::TEMPS.contains(&r) {
                self.b.push(Inst::Lw {
                    rt: Reg::ARGS[i],
                    base: Reg::Sp,
                    off: Self::spill_slot(r),
                });
            } else {
                self.b.mv(Reg::ARGS[i], r);
            }
        }
        for r in arg_regs {
            self.release(r);
        }
        self.b.call(name.to_owned());
        let out = self.alloc()?;
        self.b.mv(out, Reg::V0);
        // Restore temps that are still live (excluding `out`).
        for &r in &live_before {
            if self.live.contains(&r) && r != out {
                self.b.push(Inst::Lw {
                    rt: r,
                    base: Reg::Sp,
                    off: Self::spill_slot(r),
                });
            }
        }
        let _ = self.unit;
        Ok(out)
    }
}

/// Syscall numbers shared with `dl-sim` (duplicated to avoid a
/// dependency cycle; checked against `dl_sim::cpu::syscalls` in the
/// integration tests).
mod dl_sim_syscall {
    pub const PRINT_INT: u32 = 1;
    pub const READ_INT: u32 = 5;
    pub const MALLOC: u32 = 9;
    pub const EXIT: u32 = 10;
    pub const RAND: u32 = 42;
}
