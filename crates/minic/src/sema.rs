//! Semantic analysis: struct layout, name resolution, and type
//! checking. Produces the side tables the code generator consumes.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{BinOp, Expr, ExprKind, Stmt, Type, UnOp, Unit};
use crate::lexer::LexError;

/// A compilation error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// Description.
    pub message: String,
}

impl CompileError {
    /// Creates an error.
    #[must_use]
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }

    /// Wraps a lexer error.
    #[must_use]
    pub fn from_lex(e: LexError) -> Self {
        CompileError {
            line: e.line,
            message: e.message,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Memory layout of one struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Total size in bytes (padded to alignment).
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
    /// `(name, byte offset, type)` per field, in declaration order.
    pub fields: Vec<(String, u32, Type)>,
}

impl StructLayout {
    /// Looks up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<(u32, &Type)> {
        self.fields
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, off, ty)| (*off, ty))
    }
}

/// The semantic side tables for a checked [`Unit`].
#[derive(Debug, Clone, Default)]
pub struct SemaInfo {
    /// Struct layouts by name.
    pub structs: BTreeMap<String, StructLayout>,
    /// Expression types, indexed by `Expr::id`.
    pub expr_types: Vec<Type>,
    /// Function signatures: name → (parameter types, return type).
    pub funcs: BTreeMap<String, (Vec<Type>, Type)>,
}

impl SemaInfo {
    /// The checked type of an expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression was not part of the checked unit.
    #[must_use]
    pub fn type_of(&self, e: &Expr) -> &Type {
        &self.expr_types[e.id as usize]
    }

    /// Size in bytes of a type under these struct layouts.
    ///
    /// # Panics
    ///
    /// Panics on `void` or an unknown struct (checked earlier).
    #[must_use]
    pub fn size_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Void => panic!("void has no size"),
            Type::Char => 1,
            Type::Int | Type::Ptr(_) => 4,
            Type::Array(elem, n) => self.size_of(elem) * *n as u32,
            Type::Struct(name) => self.structs[name].size,
        }
    }

    /// Alignment in bytes of a type.
    ///
    /// # Panics
    ///
    /// Panics on `void` or an unknown struct.
    #[must_use]
    pub fn align_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Void => panic!("void has no alignment"),
            Type::Char => 1,
            Type::Int | Type::Ptr(_) => 4,
            Type::Array(elem, _) => self.align_of(elem),
            Type::Struct(name) => self.structs[name].align,
        }
    }
}

/// The built-in intrinsic functions.
#[must_use]
pub fn intrinsic_signature(name: &str) -> Option<(Vec<Type>, Type)> {
    match name {
        "malloc" => Some((vec![Type::Int], Type::Char.ptr_to())),
        "print" => Some((vec![Type::Int], Type::Void)),
        "read" => Some((vec![], Type::Int)),
        "rand" => Some((vec![Type::Int], Type::Int)),
        "exit" => Some((vec![Type::Int], Type::Void)),
        _ => None,
    }
}

/// Checks a unit, producing its semantic side tables.
///
/// # Errors
///
/// Returns the first semantic error found (unknown names, type
/// mismatches, recursive struct values, duplicate definitions, …).
pub fn check(unit: &Unit) -> Result<SemaInfo, CompileError> {
    let mut info = SemaInfo {
        expr_types: vec![Type::Void; unit.expr_count as usize],
        ..SemaInfo::default()
    };
    layout_structs(unit, &mut info)?;
    // Function signatures (intrinsics are reserved).
    for f in &unit.funcs {
        if intrinsic_signature(&f.name).is_some() {
            return Err(CompileError::new(
                f.line,
                format!("`{}` is a reserved intrinsic name", f.name),
            ));
        }
        if info
            .funcs
            .insert(
                f.name.clone(),
                (
                    f.params.iter().map(|(_, t)| t.clone()).collect(),
                    f.ret.clone(),
                ),
            )
            .is_some()
        {
            return Err(CompileError::new(
                f.line,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    if !info.funcs.contains_key("main") {
        return Err(CompileError::new(0, "no `main` function defined"));
    }
    let mut globals: BTreeMap<String, Type> = BTreeMap::new();
    for g in &unit.globals {
        validate_type(&g.ty, &info, g.line)?;
        if g.ty == Type::Void {
            return Err(CompileError::new(g.line, "global cannot be void"));
        }
        if g.init.is_some() && !g.ty.is_scalar() {
            return Err(CompileError::new(
                g.line,
                "only scalar globals may have initializers",
            ));
        }
        if globals.insert(g.name.clone(), g.ty.clone()).is_some() {
            return Err(CompileError::new(
                g.line,
                format!("duplicate global `{}`", g.name),
            ));
        }
    }
    for f in &unit.funcs {
        let mut ck = Checker {
            info: &mut info,
            globals: &globals,
            scopes: vec![BTreeMap::new()],
            ret: f.ret.clone(),
            loop_depth: 0,
        };
        for (name, ty) in &f.params {
            validate_type(ty, ck.info, f.line)?;
            if !ty.is_scalar() {
                return Err(CompileError::new(
                    f.line,
                    format!("parameter `{name}` must be scalar"),
                ));
            }
            ck.declare(name, ty.clone(), f.line)?;
        }
        ck.stmts(&f.body)?;
    }
    Ok(info)
}

fn validate_type(ty: &Type, info: &SemaInfo, line: u32) -> Result<(), CompileError> {
    match ty {
        Type::Struct(name) if !info.structs.contains_key(name) => {
            Err(CompileError::new(line, format!("unknown struct `{name}`")))
        }
        Type::Ptr(inner) => match inner.as_ref() {
            // Pointers to not-yet-known structs are fine (checked on use).
            Type::Struct(_) => Ok(()),
            other => validate_type(other, info, line),
        },
        Type::Array(elem, _) => validate_type(elem, info, line),
        _ => Ok(()),
    }
}

fn layout_structs(unit: &Unit, info: &mut SemaInfo) -> Result<(), CompileError> {
    // Iterate until all structs are laid out; a full pass with no
    // progress means a value-recursive (or unknown-field) struct.
    let mut pending: Vec<&crate::ast::StructDef> = unit.structs.iter().collect();
    // Duplicate detection first.
    {
        let mut seen = BTreeMap::new();
        for s in &pending {
            if seen.insert(&s.name, s.line).is_some() {
                return Err(CompileError::new(
                    s.line,
                    format!("duplicate struct `{}`", s.name),
                ));
            }
        }
    }
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|s| {
            let ready = s.fields.iter().all(|(_, t)| struct_deps_ready(t, info));
            if !ready {
                return true;
            }
            let mut offset = 0u32;
            let mut align = 1u32;
            let mut fields = Vec::new();
            for (name, ty) in &s.fields {
                let a = info.align_of(ty);
                let sz = info.size_of(ty);
                offset = offset.div_ceil(a) * a;
                fields.push((name.clone(), offset, ty.clone()));
                offset += sz;
                align = align.max(a);
            }
            let size = offset.div_ceil(align) * align;
            info.structs.insert(
                s.name.clone(),
                StructLayout {
                    size: size.max(1),
                    align,
                    fields,
                },
            );
            false
        });
        if pending.len() == before {
            let s = pending[0];
            return Err(CompileError::new(
                s.line,
                format!(
                    "struct `{}` is recursive by value or uses an unknown struct",
                    s.name
                ),
            ));
        }
    }
    Ok(())
}

fn struct_deps_ready(ty: &Type, info: &SemaInfo) -> bool {
    match ty {
        Type::Struct(name) => info.structs.contains_key(name),
        Type::Array(elem, _) => struct_deps_ready(elem, info),
        // Pointers never require the pointee's layout.
        _ => true,
    }
}

struct Checker<'a> {
    info: &'a mut SemaInfo,
    globals: &'a BTreeMap<String, Type>,
    scopes: Vec<BTreeMap<String, Type>>,
    ret: Type,
    loop_depth: u32,
}

impl Checker<'_> {
    fn declare(&mut self, name: &str, ty: Type, line: u32) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack nonempty");
        if scope.insert(name.to_owned(), ty).is_some() {
            return Err(CompileError::new(
                line,
                format!("duplicate declaration of `{name}` in this scope"),
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .or_else(|| self.globals.get(name))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(BTreeMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                validate_type(ty, self.info, *line)?;
                if *ty == Type::Void {
                    return Err(CompileError::new(*line, "variable cannot be void"));
                }
                if let Some(init) = init {
                    if !ty.is_scalar() {
                        return Err(CompileError::new(
                            *line,
                            "only scalar locals may have initializers",
                        ));
                    }
                    let it = self.expr(init)?;
                    self.check_assignable(ty, &it, *line)?;
                }
                self.declare(name, ty.clone(), *line)
            }
            Stmt::If { cond, then, els } => {
                self.condition(cond)?;
                self.stmts(then)?;
                self.stmts(els)
            }
            Stmt::While { cond, body } => {
                self.condition(cond)?;
                self.loop_depth += 1;
                let r = self.stmts(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.expr(i)?;
                }
                if let Some(c) = cond {
                    self.condition(c)?;
                }
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.loop_depth += 1;
                let r = self.stmts(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::Return(value, line) => match (value, &self.ret) {
                (None, Type::Void) => Ok(()),
                (None, other) => Err(CompileError::new(
                    *line,
                    format!("missing return value of type {other}"),
                )),
                (Some(_), Type::Void) => {
                    Err(CompileError::new(*line, "void function returns a value"))
                }
                (Some(e), ret) => {
                    let ret = ret.clone();
                    let t = self.expr(e)?;
                    self.check_assignable(&ret, &t, *line)
                }
            },
            Stmt::Break(line) | Stmt::Continue(line) if self.loop_depth == 0 => {
                Err(CompileError::new(*line, "break/continue outside of a loop"))
            }
            Stmt::Break(_) | Stmt::Continue(_) => Ok(()),
            Stmt::Block(body) => self.stmts(body),
        }
    }

    fn condition(&mut self, e: &Expr) -> Result<(), CompileError> {
        let t = self.expr(e)?;
        if t.decayed().is_scalar() {
            Ok(())
        } else {
            Err(CompileError::new(
                e.line,
                format!("condition has non-scalar type {t}"),
            ))
        }
    }

    /// Assignment compatibility: integral↔integral, pointer↔pointer
    /// (C-style laxness, no casts in the language), and integral→
    /// pointer for null-style constants.
    fn check_assignable(&self, dst: &Type, src: &Type, line: u32) -> Result<(), CompileError> {
        let s = src.decayed();
        let ok = match (dst, &s) {
            (d, s) if d.is_integral() && s.is_integral() => true,
            (Type::Ptr(_), Type::Ptr(_)) => true,
            (Type::Ptr(_), s) if s.is_integral() => true, // null constants
            (d, Type::Ptr(_)) if d.is_integral() => true, // ptr comparisons/diffs
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CompileError::new(
                line,
                format!("cannot assign {src} to {dst}"),
            ))
        }
    }

    fn is_lvalue(e: &Expr) -> bool {
        matches!(
            e.kind,
            ExprKind::Var(_)
                | ExprKind::Index(_, _)
                | ExprKind::Field(_, _)
                | ExprKind::Arrow(_, _)
                | ExprKind::Unary(UnOp::Deref, _)
        )
    }

    fn expr(&mut self, e: &Expr) -> Result<Type, CompileError> {
        let t = self.expr_inner(e)?;
        self.info.expr_types[e.id as usize] = t.clone();
        Ok(t)
    }

    fn expr_inner(&mut self, e: &Expr) -> Result<Type, CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Num(_) => Ok(Type::Int),
            ExprKind::SizeOf(t) => {
                validate_type(t, self.info, line)?;
                Ok(Type::Int)
            }
            ExprKind::Var(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| CompileError::new(line, format!("unknown variable `{name}`"))),
            ExprKind::Unary(op, inner) => {
                let it = self.expr(inner)?;
                match op {
                    UnOp::Neg | UnOp::Not | UnOp::BitNot => {
                        if it.decayed().is_scalar() {
                            Ok(Type::Int)
                        } else {
                            Err(CompileError::new(line, format!("bad operand type {it}")))
                        }
                    }
                    UnOp::Deref => match it.decayed() {
                        Type::Ptr(t) if *t != Type::Void => Ok(*t),
                        other => Err(CompileError::new(
                            line,
                            format!("cannot dereference {other}"),
                        )),
                    },
                    UnOp::Addr => {
                        if Self::is_lvalue(inner) {
                            Ok(it.ptr_to())
                        } else {
                            Err(CompileError::new(line, "cannot take address of rvalue"))
                        }
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.expr(l)?.decayed();
                let rt = self.expr(r)?.decayed();
                if !lt.is_scalar() || !rt.is_scalar() {
                    return Err(CompileError::new(
                        line,
                        format!("bad operand types {lt} and {rt}"),
                    ));
                }
                match op {
                    BinOp::Add | BinOp::Sub => match (&lt, &rt) {
                        (Type::Ptr(_), Type::Ptr(_)) => {
                            if *op == BinOp::Sub {
                                Ok(Type::Int)
                            } else {
                                Err(CompileError::new(line, "cannot add two pointers"))
                            }
                        }
                        (Type::Ptr(_), _) => Ok(lt.clone()),
                        (_, Type::Ptr(_)) => {
                            if *op == BinOp::Add {
                                Ok(rt.clone())
                            } else {
                                Err(CompileError::new(line, "cannot subtract pointer from int"))
                            }
                        }
                        _ => Ok(Type::Int),
                    },
                    _ => Ok(Type::Int),
                }
            }
            ExprKind::Assign(lhs, rhs) => {
                if !Self::is_lvalue(lhs) {
                    return Err(CompileError::new(line, "assignment to rvalue"));
                }
                let lt = self.expr(lhs)?;
                if !lt.is_scalar() {
                    return Err(CompileError::new(
                        line,
                        format!("cannot assign to value of type {lt}"),
                    ));
                }
                let rt = self.expr(rhs)?;
                self.check_assignable(&lt, &rt, line)?;
                Ok(lt)
            }
            ExprKind::Index(base, idx) => {
                let bt = self.expr(base)?.decayed();
                let it = self.expr(idx)?;
                if !it.decayed().is_integral() {
                    return Err(CompileError::new(line, "array index must be integral"));
                }
                match bt {
                    Type::Ptr(elem) if *elem != Type::Void => Ok(*elem),
                    other => Err(CompileError::new(line, format!("cannot index {other}"))),
                }
            }
            ExprKind::Field(base, fname) => {
                let bt = self.expr(base)?;
                let Type::Struct(sname) = &bt else {
                    return Err(CompileError::new(
                        line,
                        format!("`.` on non-struct type {bt}"),
                    ));
                };
                self.field_type(sname, fname, line)
            }
            ExprKind::Arrow(base, fname) => {
                let bt = self.expr(base)?.decayed();
                let Type::Ptr(inner) = &bt else {
                    return Err(CompileError::new(
                        line,
                        format!("`->` on non-pointer type {bt}"),
                    ));
                };
                let Type::Struct(sname) = inner.as_ref() else {
                    return Err(CompileError::new(
                        line,
                        format!("`->` on pointer to non-struct {inner}"),
                    ));
                };
                let sname = sname.clone();
                self.field_type(&sname, fname, line)
            }
            ExprKind::Call(name, args) => {
                let (params, ret) = intrinsic_signature(name)
                    .or_else(|| self.info.funcs.get(name).cloned())
                    .ok_or_else(|| CompileError::new(line, format!("unknown function `{name}`")))?;
                if args.len() != params.len() {
                    return Err(CompileError::new(
                        line,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            params.len(),
                            args.len()
                        ),
                    ));
                }
                for (a, p) in args.iter().zip(&params) {
                    let at = self.expr(a)?;
                    self.check_assignable(p, &at, line)?;
                }
                Ok(ret)
            }
        }
    }

    fn field_type(&self, sname: &str, fname: &str, line: u32) -> Result<Type, CompileError> {
        let layout = self
            .info
            .structs
            .get(sname)
            .ok_or_else(|| CompileError::new(line, format!("unknown struct `{sname}`")))?;
        layout.field(fname).map(|(_, t)| t.clone()).ok_or_else(|| {
            CompileError::new(line, format!("struct `{sname}` has no field `{fname}`"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<SemaInfo, CompileError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn simple_program_checks() {
        let info = check_src(
            "int g;\n\
             int add(int a, int b) { return a + b; }\n\
             int main() { g = add(1, 2); return g; }",
        )
        .unwrap();
        assert!(info.funcs.contains_key("add"));
    }

    #[test]
    fn missing_main_rejected() {
        let e = check_src("int f() { return 0; }").unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn struct_layout_with_padding() {
        let info = check_src(
            "struct mix { char c; int x; char d; };\n\
             int main() { return sizeof(struct mix); }",
        )
        .unwrap();
        let l = &info.structs["mix"];
        assert_eq!(l.field("c").unwrap().0, 0);
        assert_eq!(l.field("x").unwrap().0, 4);
        assert_eq!(l.field("d").unwrap().0, 8);
        assert_eq!(l.size, 12);
        assert_eq!(l.align, 4);
    }

    #[test]
    fn nested_struct_layout() {
        let info = check_src(
            "struct inner { int a; int b; };\n\
             struct outer { struct inner i; char c; };\n\
             int main() { return 0; }",
        )
        .unwrap();
        assert_eq!(info.structs["outer"].size, 12);
    }

    #[test]
    fn recursive_struct_by_value_rejected() {
        let e = check_src("struct n { struct n inner; }; int main() { return 0; }").unwrap_err();
        assert!(e.message.contains("recursive"));
    }

    #[test]
    fn recursive_struct_by_pointer_ok() {
        let info = check_src(
            "struct node { int v; struct node* next; };\n\
             int main() { return sizeof(struct node); }",
        )
        .unwrap();
        assert_eq!(info.structs["node"].size, 8);
    }

    #[test]
    fn unknown_variable_rejected() {
        let e = check_src("int main() { return nope; }").unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn pointer_arithmetic_types() {
        let info = check_src(
            "int main() {\n\
               int* p; int a[10];\n\
               p = a;\n\
               p = p + 3;\n\
               return *(p + 1) + a[2];\n\
             }",
        )
        .unwrap();
        // Every expression got a type.
        assert!(info.expr_types.iter().any(|t| t.is_pointer()));
    }

    #[test]
    fn deref_non_pointer_rejected() {
        let e = check_src("int main() { int x; return *x; }").unwrap_err();
        assert!(e.message.contains("dereference"));
    }

    #[test]
    fn arrow_on_non_pointer_rejected() {
        let e =
            check_src("struct s { int f; }; int main() { struct s v; return v->f; }").unwrap_err();
        assert!(e.message.contains("->"));
    }

    #[test]
    fn field_on_pointer_rejected() {
        let e = check_src("struct s { int f; }; int main() { struct s* v; v = 0; return v.f; }")
            .unwrap_err();
        assert!(e.message.contains('.'));
    }

    #[test]
    fn unknown_field_rejected() {
        let e =
            check_src("struct s { int f; }; int main() { struct s v; return v.g; }").unwrap_err();
        assert!(e.message.contains("no field"));
    }

    #[test]
    fn call_arity_checked() {
        let e = check_src("int f(int a) { return a; } int main() { return f(1, 2); }").unwrap_err();
        assert!(e.message.contains("expects 1"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = check_src("int main() { break; return 0; }").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn intrinsics_are_reserved() {
        let e = check_src("int malloc(int n) { return n; } int main() { return 0; }").unwrap_err();
        assert!(e.message.contains("reserved"));
    }

    #[test]
    fn assign_struct_rejected() {
        let e = check_src(
            "struct s { int f; }; int main() { struct s a; struct s b; a = b; return 0; }",
        )
        .unwrap_err();
        assert!(e.message.contains("assign"));
    }

    #[test]
    fn malloc_assigns_to_any_pointer() {
        check_src(
            "struct s { int f; };\n\
             int main() { struct s* p; p = malloc(sizeof(struct s)); return p->f; }",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = check_src("int main() { int x; int x; return 0; }").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn shadowing_in_inner_scope_ok() {
        check_src("int main() { int x; x = 1; { int x; x = 2; } return x; }").unwrap();
    }
}
