//! The MiniC abstract syntax tree and type language.

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (function returns only).
    Void,
    /// 32-bit signed integer.
    Int,
    /// 8-bit integer (byte).
    Char,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// A named structure.
    Struct(String),
}

impl Type {
    /// Builds a pointer to `self`.
    #[must_use]
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// `true` for `int`/`char`.
    #[must_use]
    pub fn is_integral(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }

    /// `true` for pointer types.
    #[must_use]
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// `true` for types a register can hold (int, char, pointer).
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        self.is_integral() || self.is_pointer()
    }

    /// The type this decays to in expression position (arrays decay to
    /// pointers to their element type).
    #[must_use]
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Int => f.write_str("int"),
            Type::Char => f.write_str("char"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise not `~x`.
    BitNot,
    /// Pointer dereference `*p`.
    Deref,
    /// Address-of `&x`.
    Addr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (pointer arithmetic scales by pointee size).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (signed).
    Div,
    /// `%` (signed).
    Rem,
    /// `<<`.
    Shl,
    /// `>>` (arithmetic).
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&`.
    BitAnd,
    /// `|`.
    BitOr,
    /// `^`.
    BitXor,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

impl BinOp {
    /// `true` for comparison operators (result is 0/1 `int`).
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// An expression node. `id` indexes the side tables produced by
/// semantic analysis; `line` is for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique id within the translation unit.
    pub id: u32,
    /// 1-based source line.
    pub line: u32,
    /// The expression proper.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Num(i64),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs = rhs` (value is the assigned value).
    Assign(Box<Expr>, Box<Expr>),
    /// Array indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Struct field access `value.field`.
    Field(Box<Expr>, String),
    /// Struct field through pointer `ptr->field`.
    Arrow(Box<Expr>, String),
    /// Function or intrinsic call.
    Call(String, Vec<Expr>),
    /// `sizeof(type)` — a compile-time constant.
    SizeOf(Type),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local variable declaration (optionally initialized).
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (empty when absent).
        els: Vec<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Initialization expression (evaluated once).
        init: Option<Expr>,
        /// Condition (absent = infinite).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;`.
    Return(Option<Expr>, u32),
    /// `break;`.
    Break(u32),
    /// `continue;`.
    Continue(u32),
    /// `{ ... }`.
    Block(Vec<Stmt>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameters in order (at most four).
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret: Type,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A structure definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Structure name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Source line.
    pub line: u32,
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional constant initializer (scalars only).
    pub init: Option<i64>,
    /// Source line.
    pub line: u32,
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Structure definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub funcs: Vec<Func>,
    /// Total number of expression ids handed out.
    pub expr_count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(Type::Int.is_integral());
        assert!(Type::Char.is_scalar());
        assert!(Type::Int.ptr_to().is_pointer());
        assert!(!Type::Struct("s".into()).is_scalar());
    }

    #[test]
    fn array_decay() {
        let arr = Type::Array(Box::new(Type::Int), 10);
        assert_eq!(arr.decayed(), Type::Int.ptr_to());
        assert_eq!(Type::Int.decayed(), Type::Int);
    }

    #[test]
    fn type_display() {
        let t = Type::Array(Box::new(Type::Ptr(Box::new(Type::Char))), 8);
        assert_eq!(t.to_string(), "char*[8]");
        assert_eq!(Type::Struct("node".into()).to_string(), "struct node");
    }

    #[test]
    fn comparison_ops() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
