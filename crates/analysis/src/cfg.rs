//! Intra-procedural control-flow graph reconstruction from the
//! instruction stream, the way the paper rebuilds control flow from
//! `objdump` output.
//!
//! Calls (`jal`/`jalr`) are treated as falling through — the CFG is
//! per-function. `jr` ends a block with no intra-procedural successor
//! (it is a return or an escape the analysis treats conservatively).

use dl_mips::inst::Inst;
use dl_mips::program::{FuncSym, Program};

/// A basic block: a maximal single-entry, single-exit straight-line
/// instruction range `[start, end)` within one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids (within the same function).
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// The control-flow graph of one function.
///
/// # Example
///
/// ```
/// use dl_mips::parse::parse_asm;
/// use dl_analysis::Cfg;
///
/// let p = parse_asm(
///     "main:\n\
///      \tli $t0, 4\n\
///      .Lloop:\n\
///      \taddiu $t0, $t0, -1\n\
///      \tbgtz $t0, .Lloop\n\
///      \tjr $ra\n",
/// ).unwrap();
/// let cfg = Cfg::build(&p, p.symbols.func("main").unwrap());
/// assert_eq!(cfg.blocks().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    func_start: usize,
    func_end: usize,
    blocks: Vec<BasicBlock>,
    /// Block id of each instruction, indexed by `inst_index - func_start`.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `func` within `program`.
    ///
    /// # Panics
    ///
    /// Panics if the function range is out of bounds or empty.
    #[must_use]
    pub fn build(program: &Program, func: &FuncSym) -> Cfg {
        let (lo, hi) = (func.start, func.end);
        assert!(lo < hi && hi <= program.insts.len(), "bad function range");
        // Pass 1: identify leaders.
        let mut leader = vec![false; hi - lo];
        leader[0] = true;
        for idx in lo..hi {
            let inst = &program.insts[idx];
            // A branch target that lies in this function is a leader;
            // so is the instruction after any branch, terminator, or
            // call (calls end blocks so profiling granularity matches
            // `program_blocks`).
            if inst.is_branch() || inst.is_terminator() || inst.is_call() {
                if let Some(t) = inst.target() {
                    let ti = t.index();
                    if (lo..hi).contains(&ti) && !inst.is_call() {
                        leader[ti - lo] = true;
                    }
                }
                if idx + 1 < hi {
                    leader[idx + 1 - lo] = true;
                }
            }
        }
        // Pass 2: carve blocks.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; hi - lo];
        for idx in lo..hi {
            if leader[idx - lo] {
                blocks.push(BasicBlock {
                    start: idx,
                    end: idx, // patched below
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            }
            let bid = blocks.len() - 1;
            block_of[idx - lo] = bid;
        }
        for b in 0..blocks.len() {
            blocks[b].end = if b + 1 < blocks.len() {
                blocks[b + 1].start
            } else {
                hi
            };
        }
        // Pass 3: wire edges.
        for b in 0..blocks.len() {
            let last_idx = blocks[b].end - 1;
            let last = &program.insts[last_idx];
            let mut succs: Vec<usize> = Vec::new();
            let fallthrough = blocks[b].end < hi;
            match last {
                Inst::J { target } => {
                    let ti = target.index();
                    if (lo..hi).contains(&ti) {
                        succs.push(block_of[ti - lo]);
                    }
                }
                Inst::Jr { .. } => { /* return: no intra-proc successor */ }
                i if i.is_branch() => {
                    let ti = i.target().expect("branch has target").index();
                    if (lo..hi).contains(&ti) {
                        succs.push(block_of[ti - lo]);
                    }
                    if fallthrough {
                        succs.push(block_of[blocks[b].end - lo]);
                    }
                }
                _ => {
                    // Plain instruction or call: falls through.
                    if fallthrough {
                        succs.push(block_of[blocks[b].end - lo]);
                    }
                }
            }
            succs.dedup();
            blocks[b].succs = succs;
        }
        for b in 0..blocks.len() {
            for s in blocks[b].succs.clone() {
                blocks[s].preds.push(b);
            }
        }
        Cfg {
            func_start: lo,
            func_end: hi,
            blocks,
            block_of,
        }
    }

    /// All basic blocks, in program order (block 0 is the entry).
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Block id containing instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the function.
    #[must_use]
    pub fn block_of(&self, index: usize) -> usize {
        assert!(
            (self.func_start..self.func_end).contains(&index),
            "instruction {index} outside function"
        );
        self.block_of[index - self.func_start]
    }

    /// The instruction range of the underlying function.
    #[must_use]
    pub fn func_range(&self) -> (usize, usize) {
        (self.func_start, self.func_end)
    }
}

/// Partitions the whole program into basic blocks (across all
/// functions), for block-granularity profiling (the paper's §4 uses
/// block execution profiles to find the hot 90% of compute cycles).
///
/// Returns `(start, end)` instruction ranges.
#[must_use]
pub fn program_blocks(program: &Program) -> Vec<(usize, usize)> {
    let n = program.insts.len();
    if n == 0 {
        return Vec::new();
    }
    let mut leader = vec![false; n];
    leader[0] = true;
    for f in program.symbols.funcs() {
        if f.start < n {
            leader[f.start] = true;
        }
    }
    for (idx, inst) in program.insts.iter().enumerate() {
        if inst.is_branch() || inst.is_terminator() || inst.is_call() {
            if let Some(t) = inst.target() {
                if t.index() < n {
                    leader[t.index()] = true;
                }
            }
            if idx + 1 < n {
                leader[idx + 1] = true;
            }
        }
    }
    let mut out = Vec::new();
    let mut start = 0;
    #[allow(clippy::needless_range_loop)] // index used for block bounds
    for idx in 1..n {
        if leader[idx] {
            out.push((start, idx));
            start = idx;
        }
    }
    out.push((start, n));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn cfg_of(src: &str, func: &str) -> (Program, Cfg) {
        let p = parse_asm(src).unwrap();
        let f = p.symbols.func(func).unwrap().clone();
        let c = Cfg::build(&p, &f);
        (p, c)
    }

    use dl_mips::program::Program;

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of("main:\n\tnop\n\tnop\n\tjr $ra\n", "main");
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].succs, Vec::<usize>::new());
    }

    #[test]
    fn loop_shape() {
        let (_, c) = cfg_of(
            "main:\n\
             \tli $t0, 4\n\
             .Lloop:\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lloop\n\
             \tjr $ra\n",
            "main",
        );
        // Blocks: [li], [addiu; bgtz], [jr]
        assert_eq!(c.blocks().len(), 3);
        assert_eq!(c.blocks()[0].succs, vec![1]);
        let mut s = c.blocks()[1].succs.clone();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2]);
        assert_eq!(c.blocks()[1].preds.len(), 2);
    }

    #[test]
    fn diamond_shape() {
        let (_, c) = cfg_of(
            "main:\n\
             \tbeq $a0, $zero, .Lelse\n\
             \tli $t0, 1\n\
             \tj .Ljoin\n\
             .Lelse:\n\
             \tli $t0, 2\n\
             .Ljoin:\n\
             \tjr $ra\n",
            "main",
        );
        assert_eq!(c.blocks().len(), 4);
        let entry = &c.blocks()[0];
        let mut s = entry.succs.clone();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2]);
        // Both arms join.
        assert_eq!(c.blocks()[1].succs, vec![3]);
        assert_eq!(c.blocks()[2].succs, vec![3]);
    }

    #[test]
    fn call_falls_through() {
        let (_, c) = cfg_of(
            "main:\n\
             \tjal helper\n\
             \tjr $ra\n\
             helper:\n\
             \tjr $ra\n",
            "main",
        );
        // jal ends a block (leader after it) but falls through.
        assert_eq!(c.blocks().len(), 2);
        assert_eq!(c.blocks()[0].succs, vec![1]);
    }

    #[test]
    fn block_of_lookup() {
        let (_, c) = cfg_of(
            "main:\n\
             \tli $t0, 4\n\
             .Lloop:\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lloop\n\
             \tjr $ra\n",
            "main",
        );
        assert_eq!(c.block_of(0), 0);
        assert_eq!(c.block_of(1), 1);
        assert_eq!(c.block_of(2), 1);
        assert_eq!(c.block_of(3), 2);
    }

    #[test]
    #[should_panic(expected = "outside function")]
    fn block_of_out_of_range_panics() {
        let (_, c) = cfg_of("main:\n\tjr $ra\nf:\n\tjr $ra\n", "main");
        let _ = c.block_of(1);
    }

    #[test]
    fn program_blocks_partition() {
        let p = parse_asm(
            "main:\n\
             \tjal helper\n\
             \tbeq $v0, $zero, .Lout\n\
             \tnop\n\
             .Lout:\n\
             \tjr $ra\n\
             helper:\n\
             \tli $v0, 1\n\
             \tjr $ra\n",
        )
        .unwrap();
        let blocks = program_blocks(&p);
        // Partition covers every instruction exactly once.
        let mut covered = 0;
        for (i, &(s, e)) in blocks.iter().enumerate() {
            assert!(s < e);
            covered += e - s;
            if i > 0 {
                assert_eq!(blocks[i - 1].1, s);
            }
        }
        assert_eq!(covered, p.insts.len());
        // helper's entry starts a block.
        assert!(blocks.iter().any(|&(s, _)| s == 4));
    }

    #[test]
    fn branch_to_other_function_has_no_local_edge() {
        // A jump that leaves the function (tail call) produces no
        // intra-procedural successor.
        let (_, c) = cfg_of(
            "main:\n\
             \tj helper\n\
             helper:\n\
             \tjr $ra\n",
            "main",
        );
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].succs, Vec::<usize>::new());
    }
}
