//! Reaching-definitions dataflow at instruction granularity, per
//! function.
//!
//! The paper (§6): *"If a load's address computation is dependent on
//! values computed outside the basic block it is in, we perform a data
//! flow analysis to obtain all reaching definitions for the temporaries
//! involved."* This module is that analysis. Function entry provides
//! virtual definitions of every register (the basic registers `sp`,
//! `gp`, `$a0-$a3` carry their conventional meanings there); calls
//! define the return-value registers and clobber the caller-saved set.

use dl_mips::inst::Inst;
use dl_mips::program::{FuncSym, Program};
use dl_mips::reg::Reg;

use crate::cfg::Cfg;

/// Where a reaching definition comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefSite {
    /// The register's value at function entry.
    Entry(Reg),
    /// An ordinary instruction at this index.
    Inst(usize),
    /// A return value produced by the call/syscall at this index
    /// (`$v0`/`$v1` — the paper's `reg_ret` basic register).
    CallRet(usize),
    /// A caller-saved register clobbered by the call at this index.
    CallClobber(usize),
}

/// A compact bit set over definition ids.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    fn insert(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }
    fn remove(&mut self, i: u32) {
        self.words[i as usize / 64] &= !(1 << (i % 64));
    }
    fn contains(&self, i: u32) -> bool {
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }
    /// `self |= other`; returns `true` if `self` changed.
    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }
}

/// Registers clobbered by a call (beyond the return registers).
const CALL_CLOBBERS: [Reg; 16] = [
    Reg::At,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T7,
    Reg::T8,
    Reg::T9,
    Reg::Ra,
];

/// The reaching-definitions solution for one function.
///
/// # Example
///
/// ```
/// use dl_mips::parse::parse_asm;
/// use dl_mips::reg::Reg;
/// use dl_analysis::{Cfg, reaching::{ReachingDefs, DefSite}};
///
/// let p = parse_asm(
///     "main:\n\
///      \tli $t0, 1\n\
///      \tlw $t1, 0($t0)\n\
///      \tjr $ra\n",
/// ).unwrap();
/// let f = p.symbols.func("main").unwrap().clone();
/// let cfg = Cfg::build(&p, &f);
/// let rd = ReachingDefs::build(&p, &f, &cfg);
/// assert_eq!(rd.reaching(1, Reg::T0), vec![DefSite::Inst(0)]);
/// ```
#[derive(Debug)]
pub struct ReachingDefs {
    func_start: usize,
    /// Definition id → (site, defined register).
    defs: Vec<(DefSite, Reg)>,
    /// Per-register list of definition ids.
    defs_of_reg: Vec<Vec<u32>>,
    /// Per-instruction reach-in sets.
    reach_in: Vec<BitSet>,
}

impl ReachingDefs {
    /// The definitions an instruction generates, in (reg, site) pairs.
    fn gens(inst: &Inst, idx: usize) -> Vec<(Reg, DefSite)> {
        match inst {
            Inst::Jal { .. } | Inst::Jalr { .. } => {
                let mut v = vec![
                    (Reg::V0, DefSite::CallRet(idx)),
                    (Reg::V1, DefSite::CallRet(idx)),
                ];
                v.extend(CALL_CLOBBERS.map(|r| (r, DefSite::CallClobber(idx))));
                v
            }
            Inst::Syscall => vec![(Reg::V0, DefSite::CallRet(idx))],
            _ => inst
                .def()
                .map(|r| (r, DefSite::Inst(idx)))
                .into_iter()
                .collect(),
        }
    }

    /// Solves reaching definitions for `func`.
    #[must_use]
    pub fn build(program: &Program, func: &FuncSym, cfg: &Cfg) -> ReachingDefs {
        let (lo, hi) = (func.start, func.end);
        // Enumerate definitions: 32 entry defs, then instruction defs.
        let mut defs: Vec<(DefSite, Reg)> =
            Reg::ALL.iter().map(|&r| (DefSite::Entry(r), r)).collect();
        let mut defs_of_reg: Vec<Vec<u32>> = (0..32).map(|r| vec![r as u32]).collect();
        // Per-instruction gen lists as def ids.
        let mut inst_gens: Vec<Vec<(Reg, u32)>> = Vec::with_capacity(hi - lo);
        for idx in lo..hi {
            let mut list = Vec::new();
            for (reg, site) in Self::gens(&program.insts[idx], idx) {
                let id = defs.len() as u32;
                defs.push((site, reg));
                defs_of_reg[reg as usize].push(id);
                list.push((reg, id));
            }
            inst_gens.push(list);
        }
        let ndefs = defs.len();

        // Block-level GEN/KILL.
        let blocks = cfg.blocks();
        let nb = blocks.len();
        let mut gen = vec![BitSet::new(ndefs); nb];
        let mut kill = vec![BitSet::new(ndefs); nb];
        for (b, block) in blocks.iter().enumerate() {
            for idx in block.start..block.end {
                for &(reg, id) in &inst_gens[idx - lo] {
                    for &other in &defs_of_reg[reg as usize] {
                        gen[b].remove(other);
                        kill[b].insert(other);
                    }
                    gen[b].insert(id);
                    kill[b].remove(id);
                }
            }
        }
        // Iterate to fixpoint.
        let mut block_in = vec![BitSet::new(ndefs); nb];
        let mut block_out = vec![BitSet::new(ndefs); nb];
        for r in 0..32u32 {
            block_in[0].insert(r);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut input = block_in[b].clone();
                for &p in &blocks[b].preds {
                    input.union_with(&block_out[p]);
                }
                // OUT = GEN ∪ (IN - KILL)
                let mut out = input.clone();
                for (w, k) in out.words.iter_mut().zip(&kill[b].words) {
                    *w &= !k;
                }
                out.union_with(&gen[b]);
                if out != block_out[b] || input != block_in[b] {
                    changed = true;
                }
                block_in[b] = input;
                block_out[b] = out;
            }
        }
        // Per-instruction reach-in by forward walk within each block.
        let mut reach_in = vec![BitSet::new(0); hi - lo];
        for (b, block) in blocks.iter().enumerate() {
            let mut cur = block_in[b].clone();
            for idx in block.start..block.end {
                reach_in[idx - lo] = cur.clone();
                for &(reg, id) in &inst_gens[idx - lo] {
                    for &other in &defs_of_reg[reg as usize] {
                        cur.remove(other);
                    }
                    cur.insert(id);
                }
            }
        }
        ReachingDefs {
            func_start: lo,
            defs,
            defs_of_reg,
            reach_in,
        }
    }

    /// The definitions of `reg` that reach instruction `at`
    /// (instruction index within the analyzed function).
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the analyzed function.
    #[must_use]
    pub fn reaching(&self, at: usize, reg: Reg) -> Vec<DefSite> {
        let set = &self.reach_in[at - self.func_start];
        self.defs_of_reg[reg as usize]
            .iter()
            .filter(|&&id| set.contains(id))
            .map(|&id| self.defs[id as usize].0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn build(src: &str) -> (Program, ReachingDefs) {
        let p = parse_asm(src).unwrap();
        let f = p.symbols.func("main").unwrap().clone();
        let cfg = Cfg::build(&p, &f);
        let rd = ReachingDefs::build(&p, &f, &cfg);
        (p, rd)
    }

    #[test]
    fn straight_line_def_reaches() {
        let (_, rd) = build(
            "main:\n\
             \tli $t0, 1\n\
             \tli $t0, 2\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        // Only the second def reaches the load.
        assert_eq!(rd.reaching(2, Reg::T0), vec![DefSite::Inst(1)]);
    }

    #[test]
    fn entry_defs_reach_when_undefined() {
        let (_, rd) = build("main:\n\tlw $t1, 4($sp)\n\tjr $ra\n");
        assert_eq!(rd.reaching(0, Reg::Sp), vec![DefSite::Entry(Reg::Sp)]);
    }

    #[test]
    fn merge_brings_both_defs() {
        let (_, rd) = build(
            "main:\n\
             \tbeq $a0, $zero, .Lelse\n\
             \tli $t0, 1\n\
             \tj .Ljoin\n\
             .Lelse:\n\
             \tli $t0, 2\n\
             .Ljoin:\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        let mut sites = rd.reaching(4, Reg::T0);
        sites.sort_by_key(|s| match s {
            DefSite::Inst(i) => *i,
            _ => usize::MAX,
        });
        assert_eq!(sites, vec![DefSite::Inst(1), DefSite::Inst(3)]);
    }

    #[test]
    fn loop_carried_def_reaches_itself() {
        let (_, rd) = build(
            "main:\n\
             \tli $t0, 0\n\
             .Lloop:\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $a0, .Lloop\n\
             \tjr $ra\n",
        );
        // At the addiu (inst 1), both the init (0) and itself (1) reach.
        let mut sites = rd.reaching(1, Reg::T0);
        sites.sort_by_key(|s| match s {
            DefSite::Inst(i) => *i,
            _ => usize::MAX,
        });
        assert_eq!(sites, vec![DefSite::Inst(0), DefSite::Inst(1)]);
    }

    #[test]
    fn call_clobbers_temporaries_and_defines_v0() {
        let (_, rd) = build(
            "main:\n\
             \tli $t0, 7\n\
             \tli $v0, 8\n\
             \tjal main\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        assert_eq!(rd.reaching(3, Reg::T0), vec![DefSite::CallClobber(2)]);
        assert_eq!(rd.reaching(3, Reg::V0), vec![DefSite::CallRet(2)]);
    }

    #[test]
    fn call_preserves_saved_registers() {
        let (_, rd) = build(
            "main:\n\
             \tli $s0, 7\n\
             \tjal main\n\
             \tlw $t1, 0($s0)\n\
             \tjr $ra\n",
        );
        assert_eq!(rd.reaching(2, Reg::S0), vec![DefSite::Inst(0)]);
    }

    #[test]
    fn syscall_defines_v0_only() {
        let (_, rd) = build(
            "main:\n\
             \tli $t0, 5\n\
             \tli $v0, 9\n\
             \tsyscall\n\
             \tlw $t1, 0($v0)\n\
             \tjr $ra\n",
        );
        assert_eq!(rd.reaching(3, Reg::V0), vec![DefSite::CallRet(2)]);
        assert_eq!(rd.reaching(3, Reg::T0), vec![DefSite::Inst(0)]);
    }
}
