//! # dl-analysis
//!
//! Post-compilation static analysis over `dl-mips` programs: control
//! flow graph reconstruction, reaching-definitions dataflow, and
//! **address pattern** extraction — the expressions the paper's
//! delinquency heuristic classifies.
//!
//! The paper (§5.1): *"For each load instruction, control flow and data
//! flow analysis is used to compute an expression called the address
//! pattern. … The address pattern essentially summarizes the data-flow
//! subgraph corresponding to the computation of the address source
//! operand of the load instruction"*, written in the grammar
//!
//! ```text
//! AP → AP(AP) | AP*AP | AP+AP | AP-AP | AP<<AP | AP>>AP | const | BR
//! BR → gp | sp | reg_param | reg_ret
//! ```
//!
//! where parentheses denote *dereferencing*. [`pattern::Ap`] is that
//! grammar; [`extract::analyze_program`] computes the pattern set of
//! every static load (multiple patterns when multiple control paths
//! reach the load with different address computations).
//!
//! # Example
//!
//! ```
//! use dl_mips::parse::parse_asm;
//! use dl_analysis::extract::{analyze_program, AnalysisConfig};
//!
//! // A load whose base register was itself loaded from a stack slot:
//! // the classic pointer-dereference shape `(sp+16)+8`.
//! let p = parse_asm(
//!     "main:\n\
//!      \tlw $t0, 16($sp)\n\
//!      \tlw $t1, 8($t0)\n\
//!      \tjr $ra\n",
//! ).unwrap();
//! let analysis = analyze_program(&p, &AnalysisConfig::default());
//! let second = &analysis.loads[1];
//! assert_eq!(second.patterns[0].to_string(), "(sp+16)+8");
//! assert_eq!(second.max_deref_nesting(), 1);
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod ctx;
pub mod dom;
pub mod extract;
pub mod freq;
pub mod indvar;
pub mod loops;
pub mod pattern;
pub mod profile;
pub mod reaching;
pub mod reuse;

pub use callgraph::{CallGraph, CallNode, CallSite};
pub use cfg::Cfg;
pub use ctx::{AnalysisCtx, CtxStats, PassObserver, PassStats};
pub use extract::{analyze_program, AnalysisConfig, LoadInfo, ProgramAnalysis};
pub use indvar::{classify_loads, AddressClass, LoadLoopClass};
pub use loops::{Loop, LoopNest, ProgramLoops, TripCount};
pub use pattern::Ap;
pub use profile::{LoadProfile, ProfilePrediction, ReuseHistogram, ReuseProfiles};
pub use reuse::{delinquent_set as reuse_delinquent_set, CacheGeometry, ReusePrediction};
