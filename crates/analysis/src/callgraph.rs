//! Interprocedural call-graph construction.
//!
//! The per-function passes (CFG, loops, induction variables) stop at
//! `jal`/`jr` boundaries; this pass recovers the program-level shape
//! those passes are blind to. Direct `jal` edges whose target is a
//! function entry become call edges; `jalr` (and `jr` through any
//! register other than `$ra`) is statically unresolvable, so the
//! calling function is conservatively marked — downstream consumers
//! (the reuse-profile pass) must treat its footprint as unknown
//! rather than pretend precision. Recursion is detected by Tarjan SCC
//! over the direct edges, and reachability from the program entry
//! distinguishes live functions from dead ones.
//!
//! Function order matches [`crate::ctx::AnalysisCtx`] and
//! [`crate::loops::ProgramLoops`]: non-empty functions sorted by start
//! index, so the three structures can be zipped positionally.

use dl_mips::inst::Inst;
use dl_mips::program::Program;
use dl_mips::reg::Reg;

/// One direct call instruction with its resolved callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Instruction index of the `jal`.
    pub at: usize,
    /// Index of the callee in [`CallGraph::nodes`].
    pub callee: usize,
}

/// One function of the call graph.
#[derive(Debug, Clone)]
pub struct CallNode {
    /// Function name.
    pub name: String,
    /// Instruction range `[start, end)`.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Every resolved direct call in this function, in instruction
    /// order.
    pub call_sites: Vec<CallSite>,
    /// Distinct direct callees (node indices), sorted ascending.
    pub callees: Vec<usize>,
    /// Distinct direct callers (node indices), sorted ascending.
    pub callers: Vec<usize>,
    /// Number of direct call sites targeting this function (counts
    /// every site, not just distinct callers).
    pub incoming_sites: usize,
    /// `true` if the function contains a `jalr` or a non-`$ra` `jr` —
    /// control flow this pass cannot resolve. Conservative consumers
    /// treat such a function's behaviour (and therefore its callers')
    /// as unknown.
    pub has_indirect: bool,
    /// Strongly connected component id (Tarjan order, arbitrary but
    /// deterministic).
    pub scc: usize,
    /// `true` if the function can call itself again before returning:
    /// it sits in a multi-node SCC or has a direct self edge.
    pub recursive: bool,
    /// `true` if reachable from the entry function along direct edges.
    /// Conservatively `true` for every node when any reachable
    /// function has unresolved indirect control flow.
    pub reachable: bool,
}

/// The program call graph. Nodes are the non-empty functions sorted by
/// start index.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// One node per non-empty function, sorted by start index.
    pub nodes: Vec<CallNode>,
    /// Index of the function containing the program entry point, if
    /// the entry lies inside one.
    pub entry: Option<usize>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    #[must_use]
    pub fn build(program: &Program) -> CallGraph {
        let mut funcs: Vec<(String, usize, usize)> = program
            .symbols
            .funcs()
            .iter()
            .filter(|f| f.start < f.end)
            .map(|f| (f.name.clone(), f.start, f.end))
            .collect();
        funcs.sort_by_key(|&(_, start, _)| start);
        let node_of_start = |target: usize| -> Option<usize> {
            funcs
                .binary_search_by_key(&target, |&(_, start, _)| start)
                .ok()
        };

        let mut nodes: Vec<CallNode> = funcs
            .iter()
            .map(|(name, start, end)| CallNode {
                name: name.clone(),
                start: *start,
                end: *end,
                call_sites: Vec::new(),
                callees: Vec::new(),
                callers: Vec::new(),
                incoming_sites: 0,
                has_indirect: false,
                scc: 0,
                recursive: false,
                reachable: false,
            })
            .collect();

        for node in &mut nodes {
            for at in node.start..node.end {
                match &program.insts[at] {
                    Inst::Jal { target } => {
                        // A `jal` into the middle of a function is not
                        // a call this pass understands; treat it like
                        // an indirect transfer.
                        match node_of_start(target.index()) {
                            Some(callee) => {
                                node.call_sites.push(CallSite { at, callee });
                            }
                            None => node.has_indirect = true,
                        }
                    }
                    Inst::Jalr { .. } => node.has_indirect = true,
                    Inst::Jr { rs } if *rs != Reg::Ra => node.has_indirect = true,
                    _ => {}
                }
            }
            let mut callees: Vec<usize> = node.call_sites.iter().map(|s| s.callee).collect();
            callees.sort_unstable();
            callees.dedup();
            node.callees = callees;
        }

        for i in 0..nodes.len() {
            let sites = nodes[i].call_sites.clone();
            for s in &sites {
                nodes[s.callee].incoming_sites += 1;
            }
            for &callee in &nodes[i].callees.clone() {
                nodes[callee].callers.push(i);
            }
        }
        for node in &mut nodes {
            node.callers.sort_unstable();
            node.callers.dedup();
        }

        tarjan_sccs(&mut nodes);

        let entry = nodes
            .iter()
            .position(|n| n.start <= program.entry && program.entry < n.end);
        mark_reachable(&mut nodes, entry);

        CallGraph { nodes, entry }
    }

    /// The node whose range contains instruction `index`.
    #[must_use]
    pub fn node_at(&self, index: usize) -> Option<&CallNode> {
        let at = self.nodes.partition_point(|n| n.start <= index);
        at.checked_sub(1)
            .map(|i| &self.nodes[i])
            .filter(|n| index < n.end)
    }

    /// Node indices in bottom-up (callees before callers) order:
    /// reverse topological order of the SCC condensation, members of
    /// one SCC adjacent.
    #[must_use]
    pub fn bottom_up(&self) -> Vec<usize> {
        // Tarjan numbers SCCs in reverse topological order of the
        // condensation already (an SCC is finished only after every
        // SCC it reaches), so sorting by (scc, index) is bottom-up.
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&i| (self.nodes[i].scc, i));
        order
    }
}

/// Iterative Tarjan over the direct edges; fills `scc` and
/// `recursive`.
fn tarjan_sccs(nodes: &mut [CallNode]) {
    const UNVISITED: usize = usize::MAX;
    let n = nodes.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        // (node, next child position) work list.
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = work.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = nodes[v].callees.get(*child) {
                *child += 1;
                if index[w] == UNVISITED {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = members.len() > 1;
                    for &m in &members {
                        nodes[m].scc = next_scc;
                        nodes[m].recursive = cyclic || nodes[m].callees.contains(&m);
                    }
                    next_scc += 1;
                }
            }
        }
    }
}

/// Marks every node reachable from `entry` along direct edges. If any
/// reachable node has unresolved indirect control flow, every node is
/// conservatively reachable (the indirect transfer could target any
/// of them).
fn mark_reachable(nodes: &mut [CallNode], entry: Option<usize>) {
    let Some(entry) = entry else {
        return;
    };
    let mut work = vec![entry];
    while let Some(v) = work.pop() {
        if nodes[v].reachable {
            continue;
        }
        nodes[v].reachable = true;
        work.extend(nodes[v].callees.iter().copied());
    }
    if nodes.iter().any(|n| n.reachable && n.has_indirect) {
        for n in nodes {
            n.reachable = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(&parse_asm(src).unwrap())
    }

    #[test]
    fn direct_edges_and_sites_resolve() {
        let g = graph(
            "main:\n\
             \tjal helper\n\
             \tjal helper\n\
             \tjr $ra\n\
             helper:\n\
             \tlw $t0, 0($gp)\n\
             \tjr $ra\n",
        );
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.entry, Some(0));
        let main = &g.nodes[0];
        assert_eq!(main.name, "main");
        assert_eq!(main.callees, vec![1]);
        assert_eq!(main.call_sites.len(), 2);
        assert!(!main.has_indirect);
        let helper = &g.nodes[1];
        assert_eq!(helper.callers, vec![0]);
        assert_eq!(helper.incoming_sites, 2);
        assert!(helper.reachable && main.reachable);
        assert!(!helper.recursive && !main.recursive);
    }

    #[test]
    fn jr_only_returns_are_not_indirect() {
        // A leaf function returning through `jr $ra` must not be
        // flagged: `$ra` returns are the one resolvable `jr` form.
        let g = graph(
            "main:\n\
             \tjal leaf\n\
             \tjr $ra\n\
             leaf:\n\
             \tjr $ra\n",
        );
        assert!(g.nodes.iter().all(|n| !n.has_indirect));
    }

    #[test]
    fn jalr_and_computed_jr_are_conservative() {
        let g = graph(
            "main:\n\
             \tjalr $ra, $t0\n\
             \tjr $ra\n\
             dead:\n\
             \tjr $t1\n",
        );
        assert!(g.nodes[0].has_indirect, "jalr must mark the caller");
        assert!(g.nodes[1].has_indirect, "computed jr must mark");
        // The indirect transfer in a reachable function could target
        // anything: everything becomes reachable.
        assert!(g.nodes.iter().all(|n| n.reachable));
    }

    #[test]
    fn self_recursion_is_an_scc_of_one() {
        let g = graph(
            "main:\n\
             \tjal main\n\
             \tjr $ra\n",
        );
        assert!(g.nodes[0].recursive);
    }

    #[test]
    fn mutual_recursion_shares_an_scc() {
        let g = graph(
            "main:\n\
             \tjal even\n\
             \tjr $ra\n\
             even:\n\
             \tjal odd\n\
             \tjr $ra\n\
             odd:\n\
             \tjal even\n\
             \tjr $ra\n",
        );
        let (main, even, odd) = (&g.nodes[0], &g.nodes[1], &g.nodes[2]);
        assert!(!main.recursive);
        assert!(even.recursive && odd.recursive);
        assert_eq!(even.scc, odd.scc);
        assert_ne!(main.scc, even.scc);
        // Bottom-up order puts the recursive pair before main.
        let order = g.bottom_up();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(0) && pos(2) < pos(0));
    }

    #[test]
    fn unreachable_callee_is_marked_dead() {
        let g = graph(
            "main:\n\
             \tjal used\n\
             \tjr $ra\n\
             used:\n\
             \tjr $ra\n\
             orphan:\n\
             \tjal used\n\
             \tjr $ra\n",
        );
        assert!(g.nodes[0].reachable && g.nodes[1].reachable);
        let orphan = g.nodes.iter().find(|n| n.name == "orphan").unwrap();
        assert!(!orphan.reachable, "orphan is never called from entry");
        // The dead caller still contributes an incoming site count.
        assert_eq!(g.nodes[1].incoming_sites, 2);
    }

    #[test]
    fn node_at_maps_instructions_to_functions() {
        let g = graph(
            "main:\n\
             \tjal f\n\
             \tjr $ra\n\
             f:\n\
             \tjr $ra\n",
        );
        assert_eq!(g.node_at(0).unwrap().name, "main");
        assert_eq!(g.node_at(2).unwrap().name, "f");
        assert!(g.node_at(99).is_none());
    }
}
