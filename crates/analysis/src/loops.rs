//! Natural-loop detection, loop-nest construction, and static
//! trip-count estimation.
//!
//! The heuristic's frequency classes (AG8/AG9) only ask "is this load
//! in a deep loop?"; the reuse-distance estimator ([`crate::reuse`])
//! additionally needs *which* loop, how the loops nest, and how many
//! iterations each one runs. This module recovers all three from the
//! instruction stream: back edges over the dominator tree give the
//! natural loops (the same discovery [`crate::freq`] uses for its
//! depth-based frequency model), loops sharing a header are merged,
//! containment gives the nest, and a compare-against-constant analysis
//! of each loop's exit branches upgrades the default assumed iteration
//! count to an exact one where the induction triple (init, step,
//! bound) is statically visible.
//!
//! The module is named `loops` rather than the issue's `loop` because
//! `loop` is a Rust keyword.

use std::collections::HashMap;
use std::sync::Arc;

use dl_mips::inst::Inst;
use dl_mips::program::{FuncSym, Program};
use dl_mips::reg::{BaseReg, Reg};

use crate::cfg::{BasicBlock, Cfg};
use crate::dom::Dominators;
use crate::freq::LOOP_MULTIPLIER;

/// Longest chain of single-predecessor blocks walked backwards when
/// hunting for a constant definition (init or bound of an induction
/// register).
const BACKWARD_SCAN_LIMIT: usize = 32;

/// Upper bound on statically solved trip counts: beyond this the exit
/// condition is treated as never firing (the loop is bounded by data,
/// not by the visible induction triple).
const TRIP_SOLVE_LIMIT: i64 = 1 << 40;

/// A statically estimated iteration count for one loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripCount {
    /// Solved from a recognized (init, step, bound) induction triple on
    /// an exit branch. Exact up to the ±1 of where the update sits
    /// relative to the test.
    Exact(u64),
    /// No exit branch was statically solvable; the frequency model's
    /// [`LOOP_MULTIPLIER`] is assumed instead.
    Assumed(u64),
}

impl TripCount {
    /// The estimated iteration count as a float, never below 1.
    #[must_use]
    pub fn iterations(self) -> f64 {
        match self {
            TripCount::Exact(n) | TripCount::Assumed(n) => (n as f64).max(1.0),
        }
    }

    /// `true` if the count was solved rather than assumed.
    #[must_use]
    pub fn is_exact(self) -> bool {
        matches!(self, TripCount::Exact(_))
    }
}

/// One natural loop of a function, identified by its header block.
/// Back edges sharing a header are merged into a single loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Index of this loop in [`LoopNest::loops`].
    pub id: usize,
    /// Header block id (dominates every block of the loop).
    pub header: usize,
    /// Source blocks of the back edges (`latch → header`).
    pub latches: Vec<usize>,
    /// All member block ids, sorted ascending; includes the header.
    pub blocks: Vec<usize>,
    /// Id of the innermost enclosing loop, if any.
    pub parent: Option<usize>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: u32,
    /// Statically estimated iterations per entry.
    pub trip: TripCount,
}

impl Loop {
    /// `true` if `block` belongs to this loop.
    #[must_use]
    pub fn contains(&self, block: usize) -> bool {
        self.blocks.binary_search(&block).is_ok()
    }
}

/// The loop-nest tree of one function.
#[derive(Debug, Clone)]
pub struct LoopNest {
    loops: Vec<Loop>,
    /// Innermost loop id per block.
    innermost: Vec<Option<usize>>,
}

impl LoopNest {
    /// Discovers the nest structure only (every trip count assumed).
    /// Used where no instruction-level information is available or
    /// needed, e.g. the frequency model's depth computation.
    #[must_use]
    pub fn discover(cfg: &Cfg, dom: &Dominators) -> LoopNest {
        let n = cfg.blocks().len();
        // Back edges grouped by header, in deterministic block order.
        let mut latches_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in 0..n {
            for &h in &cfg.blocks()[t].succs {
                if dom.is_reachable(t) && dom.dominates(h, t) {
                    latches_of[h].push(t);
                }
            }
        }
        let mut loops = Vec::new();
        for (h, latches) in latches_of.into_iter().enumerate() {
            if latches.is_empty() {
                continue;
            }
            // Natural loop body: header plus every block reaching a
            // latch without passing through the header.
            let mut in_loop = vec![false; n];
            in_loop[h] = true;
            let mut stack = latches.clone();
            while let Some(b) = stack.pop() {
                if in_loop[b] {
                    continue;
                }
                in_loop[b] = true;
                for &p in &cfg.blocks()[b].preds {
                    // An unreachable pred is not part of any natural
                    // loop; following it would pull in blocks the
                    // header does not dominate.
                    if dom.is_reachable(p) {
                        stack.push(p);
                    }
                }
            }
            let blocks: Vec<usize> = (0..n).filter(|&b| in_loop[b]).collect();
            loops.push(Loop {
                id: loops.len(),
                header: h,
                latches,
                blocks,
                parent: None,
                depth: 1,
                trip: TripCount::Assumed(LOOP_MULTIPLIER as u64),
            });
        }
        // Parent: the smallest other loop containing this header. In a
        // reducible CFG that loop's body is a strict superset of ours.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j || !loops[j].contains(loops[i].header) {
                    continue;
                }
                if best.is_none_or(|b| loops[j].blocks.len() < loops[b].blocks.len()) {
                    best = Some(j);
                }
            }
            loops[i].parent = best;
        }
        // Depth by walking parent chains (cycle-guarded: an
        // irreducible CFG could produce mutually-containing bodies).
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            let mut steps = 0;
            while let Some(p) = cur {
                depth += 1;
                steps += 1;
                if steps > loops.len() {
                    break;
                }
                cur = loops[p].parent;
            }
            loops[i].depth = depth;
        }
        // Innermost loop per block: the containing loop with the
        // fewest blocks (ties broken by id for determinism).
        let mut innermost = vec![None; n];
        for (b, slot) in innermost.iter_mut().enumerate() {
            let mut best: Option<usize> = None;
            for l in &loops {
                if l.contains(b)
                    && best.is_none_or(|x: usize| l.blocks.len() < loops[x].blocks.len())
                {
                    best = Some(l.id);
                }
            }
            *slot = best;
        }
        LoopNest { loops, innermost }
    }

    /// Builds the full nest, including trip-count estimation from the
    /// exit branches of each loop.
    #[must_use]
    pub fn build(program: &Program, func: &FuncSym, cfg: &Cfg, dom: &Dominators) -> LoopNest {
        debug_assert_eq!(cfg.func_range(), (func.start, func.end));
        let mut nest = LoopNest::discover(cfg, dom);
        for i in 0..nest.loops.len() {
            nest.loops[i].trip = estimate_trip(program, cfg, &nest.loops[i]);
        }
        nest
    }

    /// All loops of the function, id order.
    #[must_use]
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing `block`, if any.
    #[must_use]
    pub fn innermost(&self, block: usize) -> Option<&Loop> {
        self.innermost
            .get(block)
            .copied()
            .flatten()
            .map(|id| &self.loops[id])
    }

    /// Nesting depth of `block` (0 outside any loop).
    #[must_use]
    pub fn depth_of(&self, block: usize) -> u32 {
        self.innermost(block).map_or(0, |l| l.depth)
    }

    /// Estimated executions of one entry of loop `id`'s body: the
    /// product of the trip counts of the loop and all its ancestors.
    #[must_use]
    pub fn total_trip(&self, id: usize) -> f64 {
        let mut product = 1.0f64;
        let mut cur = Some(id);
        let mut steps = 0;
        while let Some(l) = cur {
            product *= self.loops[l].trip.iterations();
            steps += 1;
            if steps > self.loops.len() {
                break;
            }
            cur = self.loops[l].parent;
        }
        product
    }

    /// Product of the trip counts of the *ancestors* of loop `id`
    /// (1.0 for an outermost loop): how often the loop is re-entered.
    #[must_use]
    pub fn outer_trip(&self, id: usize) -> f64 {
        self.loops[id].parent.map_or(1.0, |p| self.total_trip(p))
    }
}

/// The loop nests of every function in a program, indexable by
/// instruction.
#[derive(Debug)]
pub struct ProgramLoops {
    /// Per-function nests, in function order.
    pub funcs: Vec<FuncLoops>,
}

/// One function's CFG and loop nest, kept together so callers can map
/// instruction indices to loops.
#[derive(Debug)]
pub struct FuncLoops {
    /// Function name.
    pub name: String,
    /// Instruction range `[start, end)`.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// The function's CFG, shareable with a pass manager's cache.
    pub cfg: Arc<Cfg>,
    /// The function's loop nest.
    pub nest: LoopNest,
}

impl ProgramLoops {
    /// Builds the nest of every non-empty function.
    #[must_use]
    pub fn build(program: &Program) -> ProgramLoops {
        ProgramLoops::build_with(program, |f| {
            let cfg = Arc::new(Cfg::build(program, f));
            let dom = Arc::new(Dominators::build(&cfg));
            (cfg, dom)
        })
    }

    /// Builds the nest of every non-empty function, obtaining each
    /// function's CFG and dominator tree from `passes` — the hook a
    /// pass manager ([`crate::ctx::AnalysisCtx`]) uses to supply its
    /// cached copies instead of rebuilding them.
    #[must_use]
    pub fn build_with(
        program: &Program,
        mut passes: impl FnMut(&FuncSym) -> (Arc<Cfg>, Arc<Dominators>),
    ) -> ProgramLoops {
        let mut funcs = Vec::new();
        for f in program.symbols.funcs() {
            if f.start >= f.end {
                continue;
            }
            let (cfg, dom) = passes(f);
            let nest = LoopNest::build(program, f, &cfg, &dom);
            funcs.push(FuncLoops {
                name: f.name.clone(),
                start: f.start,
                end: f.end,
                cfg,
                nest,
            });
        }
        funcs.sort_by_key(|f| f.start);
        ProgramLoops { funcs }
    }

    /// The function whose range contains instruction `index`.
    #[must_use]
    pub fn func_at(&self, index: usize) -> Option<&FuncLoops> {
        let at = self.funcs.partition_point(|f| f.start <= index);
        at.checked_sub(1)
            .map(|i| &self.funcs[i])
            .filter(|f| index < f.end)
    }

    /// The innermost loop containing instruction `index`, with its
    /// owning function.
    #[must_use]
    pub fn loop_at(&self, index: usize) -> Option<(&FuncLoops, &Loop)> {
        let f = self.func_at(index)?;
        let l = f.nest.innermost(f.cfg.block_of(index))?;
        Some((f, l))
    }
}

/// The "loop continues" predicate read off an exit branch, applied to
/// the induction register's value at the test.
#[derive(Debug, Clone, Copy)]
enum Cond {
    Gt0,
    Ge0,
    Lt0,
    Le0,
    Eq(i64),
    Ne(i64),
}

impl Cond {
    fn negate(self) -> Cond {
        match self {
            Cond::Gt0 => Cond::Le0,
            Cond::Le0 => Cond::Gt0,
            Cond::Lt0 => Cond::Ge0,
            Cond::Ge0 => Cond::Lt0,
            Cond::Eq(b) => Cond::Ne(b),
            Cond::Ne(b) => Cond::Eq(b),
        }
    }

    fn holds(self, v: i64) -> bool {
        match self {
            Cond::Gt0 => v > 0,
            Cond::Ge0 => v >= 0,
            Cond::Lt0 => v < 0,
            Cond::Le0 => v <= 0,
            Cond::Eq(b) => v == b,
            Cond::Ne(b) => v != b,
        }
    }
}

/// Smallest `i >= 1` for which the continue-predicate fails on
/// `init + i*step` — the solved iteration count. `None` if the
/// condition never fails within [`TRIP_SOLVE_LIMIT`] (the loop is
/// data-bounded as far as static analysis can see).
fn solve_trip(init: i64, step: i64, cond: Cond) -> Option<u64> {
    let value = |i: i64| init.checked_add(step.checked_mul(i)?);
    if !cond.holds(value(1)?) {
        return Some(1);
    }
    match cond {
        // Equality predicates are not monotone in i; handle directly.
        Cond::Ne(bound) => {
            if step == 0 {
                return None; // init != bound forever
            }
            let d = bound.checked_sub(init)?;
            if d % step == 0 && d / step >= 1 {
                Some((d / step) as u64)
            } else {
                None // steps over the bound: never equal
            }
        }
        Cond::Eq(_) => {
            // continue-while-equal: with a non-zero step the value
            // leaves the bound on the next test.
            if step == 0 {
                None
            } else {
                Some(2)
            }
        }
        // Threshold predicates: the value is linear in i, so once the
        // predicate fails it stays failed — binary search the first
        // failure.
        _ => {
            let hi = TRIP_SOLVE_LIMIT;
            if cond.holds(value(hi)?) {
                return None;
            }
            let (mut lo, mut hi) = (1i64, hi);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if cond.holds(value(mid)?) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            Some(hi as u64)
        }
    }
}

/// Walks backwards from the end of block `from`, following
/// single-predecessor chains, looking for the nearest definition of
/// `reg`; returns its value if it is a load-immediate form.
fn backward_const(program: &Program, cfg: &Cfg, from: usize, reg: Reg) -> Option<i64> {
    if reg == Reg::Zero {
        return Some(0);
    }
    let mut b = from;
    for _ in 0..BACKWARD_SCAN_LIMIT {
        let block = &cfg.blocks()[b];
        for idx in (block.start..block.end).rev() {
            let inst = &program.insts[idx];
            // Calls clobber the caller-saved set; give up on any def
            // or clobber of the register.
            if inst.is_call() {
                return None;
            }
            if inst.def() == Some(reg) {
                return match *inst {
                    Inst::Addiu {
                        rs: Reg::Zero, imm, ..
                    } => Some(i64::from(imm)),
                    Inst::Ori {
                        rs: Reg::Zero, imm, ..
                    } => Some(i64::from(imm)),
                    Inst::Lui { imm, .. } => Some(i64::from(imm) << 16),
                    _ => None,
                };
            }
        }
        let mut preds = block.preds.clone();
        preds.sort_unstable();
        preds.dedup();
        if preds.len() != 1 || preds[0] == b {
            return None;
        }
        b = preds[0];
    }
    None
}

/// The constant value `reg` holds when the loop is entered: the
/// nearest load-immediate definition found walking backwards from the
/// loop's unique outside predecessor (its preheader).
fn const_before_loop(program: &Program, cfg: &Cfg, l: &Loop, reg: Reg) -> Option<i64> {
    if reg == Reg::Zero {
        return Some(0);
    }
    let mut outside: Vec<usize> = cfg.blocks()[l.header]
        .preds
        .iter()
        .copied()
        .filter(|&p| !l.contains(p))
        .collect();
    outside.sort_unstable();
    outside.dedup();
    if outside.len() != 1 {
        return None;
    }
    backward_const(program, cfg, outside[0], reg)
}

/// `true` if any instruction of the loop writes `reg` (calls count as
/// writing every register but `$zero` — the conservative reading of
/// the clobber set).
fn defined_in_loop(program: &Program, cfg: &Cfg, l: &Loop, reg: Reg) -> bool {
    l.blocks.iter().any(|&b| {
        let block = &cfg.blocks()[b];
        (block.start..block.end).any(|idx| {
            let inst = &program.insts[idx];
            inst.def() == Some(reg)
                || (inst.is_call() && reg != Reg::Zero)
                || (matches!(inst, Inst::Syscall) && reg == Reg::V0)
        })
    })
}

/// The single in-loop constant-step update of `reg`, if `reg` is a
/// basic induction register of the loop (`addiu reg, reg, step` and no
/// other in-loop definition).
fn induction_step(program: &Program, cfg: &Cfg, l: &Loop, reg: Reg) -> Option<i64> {
    let mut step = None;
    for &b in &l.blocks {
        let block = &cfg.blocks()[b];
        for idx in block.start..block.end {
            let inst = &program.insts[idx];
            let defines = inst.def() == Some(reg)
                || (inst.is_call() && reg != Reg::Zero)
                || (matches!(inst, Inst::Syscall) && reg == Reg::V0);
            if !defines {
                continue;
            }
            match *inst {
                Inst::Addiu { rt, rs, imm } if rt == reg && rs == reg => {
                    if step.is_some() {
                        return None; // more than one update
                    }
                    step = Some(i64::from(imm));
                }
                _ => return None, // non-induction definition
            }
        }
    }
    step
}

/// A statically addressable memory cell: a constant offset from the
/// stack pointer (a local) or the global pointer (a scalar global).
pub(crate) type Slot = (BaseReg, i64);

/// How the value held in a slot changes per iteration of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotChange {
    /// Advances by a constant each iteration (`i = i + c`).
    Step(i64),
    /// Replaced by a value loaded through its own contents
    /// (`p = p->next`).
    Chase,
    /// Stored with something the analysis cannot track.
    Opaque,
}

/// How every slot *stored inside* loop `l` changes per iteration.
/// Slots absent from the map are not stored in the loop and hold
/// their value across iterations.
pub(crate) fn loop_slot_changes(
    program: &Program,
    cfg: &Cfg,
    l: &Loop,
) -> HashMap<Slot, SlotChange> {
    // Collect the in-loop stores per slot first: a slot stored more
    // than once per iteration is not a simple induction variable.
    let mut stores: HashMap<Slot, Vec<usize>> = HashMap::new();
    for &b in &l.blocks {
        let blk = &cfg.blocks()[b];
        for idx in blk.start..blk.end {
            if let Inst::Sw { base, off, .. }
            | Inst::Sb { base, off, .. }
            | Inst::Sh { base, off, .. } = program.insts[idx]
            {
                if let Some(br @ (BaseReg::Sp | BaseReg::Gp)) = base.base_reg() {
                    stores.entry((br, i64::from(off))).or_default().push(idx);
                }
            }
        }
    }
    let mut map: HashMap<Slot, SlotChange> = stores
        .iter()
        .map(|(&slot, sites)| {
            let change = match sites.as_slice() {
                [site] => stored_value_change(program, cfg, slot, *site),
                _ => SlotChange::Opaque,
            };
            (slot, change)
        })
        .collect();
    // Fixpoint: a slot stored with a value affine in *other* slots
    // with known steps (`a = base + (i << 5)`) advances by the induced
    // step. Each round resolves slots one dependency deeper; the
    // transitions are monotone (Opaque → Step, with a value fixed by
    // the resolved dependencies), so the result is order-independent
    // and the slot count bounds the rounds.
    for _ in 0..stores.len() {
        let mut changed = false;
        for (&slot, sites) in &stores {
            let &[site] = sites.as_slice() else { continue };
            if map.get(&slot) != Some(&SlotChange::Opaque) {
                continue;
            }
            let Inst::Sw { rt, .. } = program.insts[site] else {
                continue;
            };
            let block = &cfg.blocks()[cfg.block_of(site)];
            if let Some(d) = expr_delta(program, &map, slot, block, site, rt, 16) {
                map.insert(slot, SlotChange::Step(d));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    map
}

/// Per-iteration change of the value `reg` holds just before
/// instruction `before`, for values computed in-block as an affine
/// combination of constants and loads of tracked slots. `target` is
/// the slot being stored: self-references are left to the direct
/// trace in [`stored_value_change`].
fn expr_delta(
    program: &Program,
    map: &HashMap<Slot, SlotChange>,
    target: Slot,
    block: &BasicBlock,
    before: usize,
    reg: Reg,
    fuel: u32,
) -> Option<i64> {
    if reg == Reg::Zero {
        return Some(0);
    }
    let fuel = fuel.checked_sub(1)?;
    for idx in (block.start..before).rev() {
        let inst = &program.insts[idx];
        if inst.is_call() {
            return None;
        }
        if inst.def() != Some(reg) {
            continue;
        }
        let sub = |r: Reg| expr_delta(program, map, target, block, idx, r, fuel);
        return match *inst {
            Inst::Lui { .. } => Some(0),
            Inst::Ori { rs: Reg::Zero, .. } => Some(0),
            Inst::Addiu { rs, .. } => sub(rs),
            Inst::Addu { rs, rt, .. } => sub(rs)?.checked_add(sub(rt)?),
            Inst::Subu { rs, rt, .. } => sub(rs)?.checked_sub(sub(rt)?),
            Inst::Sll { rt, shamt, .. } if shamt < 32 => sub(rt)?.checked_mul(1i64 << shamt),
            Inst::Lw { base, off, .. } => {
                let s = base
                    .base_reg()
                    .filter(|b| matches!(b, BaseReg::Sp | BaseReg::Gp))
                    .map(|b| (b, i64::from(off)))?;
                if s == target {
                    return None;
                }
                match map.get(&s) {
                    None => Some(0), // not stored in the loop
                    Some(SlotChange::Step(d)) => Some(*d),
                    Some(_) => None,
                }
            }
            _ => None,
        };
    }
    None // value produced outside the block
}

/// Classifies the value a single `sw rt, off(base)` writes to `slot`
/// by walking backward through its basic block:
///
/// * `rt` traces through `addiu` chains to a load of `slot` itself
///   with no intervening dereference → [`SlotChange::Step`] of the
///   accumulated immediates (`i = i + c`);
/// * the trace passes through one or more loads before reaching the
///   slot → [`SlotChange::Chase`] (`p = p->next`: the new value came
///   from memory addressed by the old one);
/// * anything else (multiplies, calls, values from other blocks) →
///   [`SlotChange::Opaque`].
fn stored_value_change(program: &Program, cfg: &Cfg, slot: Slot, site: usize) -> SlotChange {
    let Inst::Sw { rt, .. } = program.insts[site] else {
        return SlotChange::Opaque; // sub-word store of the slot
    };
    let block = &cfg.blocks()[cfg.block_of(site)];
    let mut cur = rt;
    let mut step = 0i64;
    let mut derefs = 0u32;
    for idx in (block.start..site).rev() {
        let inst = &program.insts[idx];
        if inst.is_call() {
            // The call may have produced or clobbered `cur`.
            return SlotChange::Opaque;
        }
        if inst.def() != Some(cur) {
            continue;
        }
        match *inst {
            Inst::Addiu { rs, imm, .. } => {
                step += i64::from(imm);
                cur = rs;
            }
            // Unoptimized codegen materialises constants into
            // registers first: `li $c, 1; addu $x, $i, $c`.
            Inst::Addu { rs, rt: other, .. } => {
                if let Some(c) = const_def(program, block.start, idx, other) {
                    step += c;
                    cur = rs;
                } else if let Some(c) = const_def(program, block.start, idx, rs) {
                    step += c;
                    cur = other;
                } else {
                    return SlotChange::Opaque;
                }
            }
            Inst::Subu { rs, rt: other, .. } => {
                if let Some(c) = const_def(program, block.start, idx, other) {
                    step -= c;
                    cur = rs;
                } else {
                    return SlotChange::Opaque;
                }
            }
            Inst::Lw { base, off, .. } => {
                if base.base_reg().zip(Some(i64::from(off))) == Some(slot) {
                    return if derefs == 0 {
                        SlotChange::Step(step)
                    } else {
                        SlotChange::Chase
                    };
                }
                derefs += 1;
                cur = base;
            }
            _ => return SlotChange::Opaque,
        }
    }
    SlotChange::Opaque // value produced outside the block
}

/// The compile-time constant `reg` holds just before instruction
/// `before`, recognising only `li`-style definitions within the block.
pub(crate) fn const_def(
    program: &Program,
    block_start: usize,
    before: usize,
    reg: Reg,
) -> Option<i64> {
    if reg == Reg::Zero {
        return Some(0);
    }
    for idx in (block_start..before).rev() {
        let inst = &program.insts[idx];
        if inst.is_call() {
            return None;
        }
        if inst.def() == Some(reg) {
            return match *inst {
                Inst::Addiu {
                    rs: Reg::Zero, imm, ..
                } => Some(i64::from(imm)),
                Inst::Ori {
                    rs: Reg::Zero, imm, ..
                } => Some(i64::from(imm)),
                _ => None,
            };
        }
    }
    None
}

/// A compare operand viewed linearly across iterations: its value at
/// the test on iteration `i` is `init + i*step` (`step == 0` for a
/// loop-invariant constant).
#[derive(Debug, Clone, Copy)]
struct Linear {
    init: i64,
    step: i64,
}

impl Linear {
    /// Pointwise difference, `None` on overflow.
    fn sub(self, other: Linear) -> Option<Linear> {
        Some(Linear {
            init: self.init.checked_sub(other.init)?,
            step: self.step.checked_sub(other.step)?,
        })
    }
}

/// If `reg`'s nearest definition in its block before `before` is a
/// load from a trackable slot, returns that slot.
fn block_slot_load(program: &Program, block: &BasicBlock, before: usize, reg: Reg) -> Option<Slot> {
    for idx in (block.start..before).rev() {
        let inst = &program.insts[idx];
        if inst.is_call() {
            return None;
        }
        if inst.def() == Some(reg) {
            return match *inst {
                Inst::Lw { base, off, .. } => base
                    .base_reg()
                    .filter(|br| matches!(br, BaseReg::Sp | BaseReg::Gp))
                    .map(|br| (br, i64::from(off))),
                _ => None,
            };
        }
    }
    None
}

/// The constant stored into `slot` on the way into the loop: the last
/// `sw` to the slot found walking backwards from the loop's unique
/// outside predecessor, with a `li`-defined source register.
fn slot_init_const(program: &Program, cfg: &Cfg, l: &Loop, slot: Slot) -> Option<i64> {
    let mut outside: Vec<usize> = cfg.blocks()[l.header]
        .preds
        .iter()
        .copied()
        .filter(|&p| !l.contains(p))
        .collect();
    outside.sort_unstable();
    outside.dedup();
    if outside.len() != 1 {
        return None;
    }
    let mut b = outside[0];
    for _ in 0..BACKWARD_SCAN_LIMIT {
        let block = &cfg.blocks()[b];
        for idx in (block.start..block.end).rev() {
            let inst = &program.insts[idx];
            // A call could store to a global slot (and for stack slots
            // the constant source is long gone): give up.
            if inst.is_call() {
                return None;
            }
            match *inst {
                Inst::Sw { rt, base, off }
                    if base.base_reg().zip(Some(i64::from(off))) == Some(slot) =>
                {
                    return const_def(program, block.start, idx, rt);
                }
                Inst::Sb { base, off, .. } | Inst::Sh { base, off, .. }
                    if base.base_reg().zip(Some(i64::from(off))) == Some(slot) =>
                {
                    return None; // sub-word init: not tracked
                }
                _ => {}
            }
        }
        let mut preds = block.preds.clone();
        preds.sort_unstable();
        preds.dedup();
        if preds.len() != 1 || preds[0] == b {
            return None;
        }
        b = preds[0];
    }
    None
}

/// Resolves one compare operand to a linear view, trying in order: a
/// basic register induction variable, a constant re-materialised in
/// the test block each iteration, a load of a tracked memory slot
/// (unoptimized codegen keeps induction variables in stack slots), and
/// a loop-invariant register constant from before the loop.
fn resolve_operand(
    program: &Program,
    cfg: &Cfg,
    l: &Loop,
    slots: &HashMap<Slot, SlotChange>,
    block: &BasicBlock,
    before: usize,
    reg: Reg,
) -> Option<Linear> {
    if reg == Reg::Zero {
        return Some(Linear { init: 0, step: 0 });
    }
    if let Some(step) = induction_step(program, cfg, l, reg) {
        let init = const_before_loop(program, cfg, l, reg)?;
        return Some(Linear { init, step });
    }
    if let Some(c) = const_def(program, block.start, before, reg) {
        return Some(Linear { init: c, step: 0 });
    }
    if let Some(slot) = block_slot_load(program, block, before, reg) {
        let step = match slots.get(&slot) {
            None => 0, // never stored in the loop: an invariant bound
            Some(SlotChange::Step(s)) => *s,
            Some(_) => return None,
        };
        let init = slot_init_const(program, cfg, l, slot)?;
        return Some(Linear { init, step });
    }
    if !defined_in_loop(program, cfg, l, reg) {
        let init = const_before_loop(program, cfg, l, reg)?;
        return Some(Linear { init, step: 0 });
    }
    None
}

/// The right-hand side of a recovered `a < b` comparison.
enum CmpRhs {
    Reg(Reg),
    Imm(i64),
}

/// If `reg`'s nearest in-block definition before the branch is a
/// set-less-than, returns the compared operands (`a < rhs`).
fn slt_operands(
    program: &Program,
    block_start: usize,
    branch_idx: usize,
    reg: Reg,
) -> Option<(Reg, CmpRhs)> {
    for idx in (block_start..branch_idx).rev() {
        let inst = &program.insts[idx];
        if inst.is_call() {
            return None;
        }
        if inst.def() == Some(reg) {
            // The unsigned forms are treated as signed: init and bound
            // are small non-negative constants wherever they resolve.
            return match *inst {
                Inst::Slt { rs, rt, .. } | Inst::Sltu { rs, rt, .. } => Some((rs, CmpRhs::Reg(rt))),
                Inst::Slti { rs, imm, .. } | Inst::Sltiu { rs, imm, .. } => {
                    Some((rs, CmpRhs::Imm(i64::from(imm))))
                }
                _ => None,
            };
        }
    }
    None
}

/// Estimates one loop's trip count from its exit branches: for each
/// conditional branch with exactly one successor outside the loop, try
/// to read an (init, step, bound) induction triple and solve it. The
/// smallest solved exit wins; with none, the frequency model's
/// [`LOOP_MULTIPLIER`] is assumed.
fn estimate_trip(program: &Program, cfg: &Cfg, l: &Loop) -> TripCount {
    let slots = loop_slot_changes(program, cfg, l);
    let mut best: Option<u64> = None;
    for &b in &l.blocks {
        let block = &cfg.blocks()[b];
        let last_idx = block.end - 1;
        let inst = &program.insts[last_idx];
        if !inst.is_branch() {
            continue;
        }
        // Taken successor is the branch target; the other successor
        // (if any) is the fallthrough.
        let target_block = inst
            .target()
            .map(|t| t.index())
            .filter(|ti| {
                let (lo, hi) = cfg.func_range();
                (lo..hi).contains(ti)
            })
            .map(|ti| cfg.block_of(ti));
        let taken_in = target_block.is_some_and(|tb| l.contains(tb));
        let fall_block = block
            .succs
            .iter()
            .copied()
            .find(|&s| Some(s) != target_block);
        let fall_in = fall_block.is_some_and(|fb| l.contains(fb));
        // Only branches where exactly one side leaves the loop define
        // an exit condition.
        let continue_on_taken = match (taken_in, fall_in) {
            (true, false) => true,
            (false, true) => false,
            _ => continue,
        };
        let Some(solved) = solve_exit(program, cfg, l, &slots, last_idx, inst, continue_on_taken)
        else {
            continue;
        };
        best = Some(best.map_or(solved, |b: u64| b.min(solved)));
    }
    match best {
        Some(n) => TripCount::Exact(n.max(1)),
        None => TripCount::Assumed(LOOP_MULTIPLIER as u64),
    }
}

/// Solves one exit branch: resolve the tested value to a linear view
/// `init + i*step`, read the continue-predicate off the branch shape,
/// and count iterations. Handles both direct compare branches and the
/// unoptimized-codegen idiom of a `slt`/`slti` feeding a compare with
/// `$zero`.
fn solve_exit(
    program: &Program,
    cfg: &Cfg,
    l: &Loop,
    slots: &HashMap<Slot, SlotChange>,
    branch_idx: usize,
    inst: &Inst,
    continue_on_taken: bool,
) -> Option<u64> {
    let block = &cfg.blocks()[cfg.block_of(branch_idx)];
    let resolve = |reg: Reg| resolve_operand(program, cfg, l, slots, block, branch_idx, reg);
    // Candidate (tested value, continue-cond-when-taken) readings.
    let mut candidates: Vec<(Linear, Cond)> = Vec::new();
    match *inst {
        Inst::Bgtz { rs, .. } => candidates.extend(resolve(rs).map(|o| (o, Cond::Gt0))),
        Inst::Blez { rs, .. } => candidates.extend(resolve(rs).map(|o| (o, Cond::Le0))),
        Inst::Bltz { rs, .. } => candidates.extend(resolve(rs).map(|o| (o, Cond::Lt0))),
        Inst::Bgez { rs, .. } => candidates.extend(resolve(rs).map(|o| (o, Cond::Ge0))),
        Inst::Beq { rs, rt, .. } | Inst::Bne { rs, rt, .. } => {
            let eq = matches!(inst, Inst::Beq { .. });
            // `slt a, b` feeding a compare with $zero: the branch
            // really tests `a < b`.
            if rt == Reg::Zero {
                if let Some((a, rhs)) = slt_operands(program, block.start, branch_idx, rs) {
                    let oa = resolve(a);
                    let ob = match rhs {
                        CmpRhs::Reg(b) => resolve(b),
                        CmpRhs::Imm(c) => Some(Linear { init: c, step: 0 }),
                    };
                    if let (Some(oa), Some(ob)) = (oa, ob) {
                        if let Some(diff) = oa.sub(ob) {
                            // beq taken ⇔ slt wrote 0 ⇔ !(a < b) ⇔ a−b ≥ 0.
                            let cond = if eq { Cond::Ge0 } else { Cond::Lt0 };
                            candidates.push((diff, cond));
                        }
                    }
                }
            }
            // Direct equality test: solve on the operand difference,
            // which covers the induction register on either side.
            if let (Some(oa), Some(ob)) = (resolve(rs), resolve(rt)) {
                if let Some(diff) = oa.sub(ob) {
                    let cond = if eq { Cond::Eq(0) } else { Cond::Ne(0) };
                    candidates.push((diff, cond));
                }
            }
        }
        _ => return None,
    }
    for (lin, cond_taken) in candidates {
        let cond = if continue_on_taken {
            cond_taken
        } else {
            cond_taken.negate()
        };
        if let Some(n) = solve_trip(lin.init, lin.step, cond) {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn nest_of(src: &str) -> (Program, Cfg, LoopNest) {
        let p = parse_asm(src).unwrap();
        let f = p.symbols.func("main").unwrap().clone();
        let cfg = Cfg::build(&p, &f);
        let dom = Dominators::build(&cfg);
        let nest = LoopNest::build(&p, &f, &cfg, &dom);
        (p, cfg, nest)
    }

    #[test]
    fn single_countdown_loop_solved_exactly() {
        let (_, cfg, nest) = nest_of(
            "main:\n\
             \tli $t0, 8\n\
             .Lh:\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(nest.loops().len(), 1);
        let l = &nest.loops()[0];
        assert_eq!(l.depth, 1);
        assert_eq!(l.trip, TripCount::Exact(8));
        assert!(l.contains(cfg.block_of(1)));
        assert!(!l.contains(cfg.block_of(0)));
    }

    #[test]
    fn count_up_bne_loop_solved_exactly() {
        let (_, _, nest) = nest_of(
            "main:\n\
             \tli $t0, 0\n\
             \tli $t1, 40\n\
             .Lh:\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(nest.loops().len(), 1);
        assert_eq!(nest.loops()[0].trip, TripCount::Exact(10));
    }

    #[test]
    fn unsolvable_bound_falls_back_to_assumed() {
        // Bound comes through $a0: not a visible constant.
        let (_, _, nest) = nest_of(
            "main:\n\
             \tli $t0, 0\n\
             .Lh:\n\
             \taddiu $t0, $t0, 1\n\
             \tbne $t0, $a0, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(
            nest.loops()[0].trip,
            TripCount::Assumed(LOOP_MULTIPLIER as u64)
        );
    }

    #[test]
    fn nested_loops_have_parents_and_depths() {
        let (_, cfg, nest) = nest_of(
            "main:\n\
             \tli $t0, 4\n\
             .Louter:\n\
             \tli $t1, 6\n\
             .Linner:\n\
             \taddiu $t1, $t1, -1\n\
             \tbgtz $t1, .Linner\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Louter\n\
             \tjr $ra\n",
        );
        assert_eq!(nest.loops().len(), 2);
        let inner = nest.innermost(cfg.block_of(3)).unwrap();
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.trip, TripCount::Exact(6));
        let outer = &nest.loops()[inner.parent.unwrap()];
        assert_eq!(outer.depth, 1);
        assert_eq!(outer.trip, TripCount::Exact(4));
        // total executions of the inner body ≈ 4 * 6.
        assert!((nest.total_trip(inner.id) - 24.0).abs() < 1e-9);
        assert!((nest.outer_trip(inner.id) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn two_latches_merge_into_one_loop() {
        // A "continue"-style second back edge: one loop, not two.
        let (_, _, nest) = nest_of(
            "main:\n\
             \tli $t0, 8\n\
             .Lh:\n\
             \taddiu $t0, $t0, -1\n\
             \tbeq $t0, $zero, .Lout\n\
             \tbgtz $t0, .Lh\n\
             \tbgtz $t0, .Lh\n\
             .Lout:\n\
             \tjr $ra\n",
        );
        assert_eq!(nest.loops().len(), 1);
        assert_eq!(nest.loops()[0].latches.len(), 2);
    }

    #[test]
    fn program_loops_maps_instructions() {
        let p = parse_asm(
            "main:\n\
             \tjal f\n\
             \tjr $ra\n\
             f:\n\
             \tli $t0, 3\n\
             .Lh:\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        )
        .unwrap();
        let pl = ProgramLoops::build(&p);
        assert_eq!(pl.funcs.len(), 2);
        assert!(pl.loop_at(0).is_none());
        let (f, l) = pl.loop_at(3).unwrap();
        assert_eq!(f.name, "f");
        assert_eq!(l.trip, TripCount::Exact(3));
        assert!(pl.func_at(100).is_none());
    }

    #[test]
    fn memory_slot_loop_with_slt_solved_exactly() {
        // The unoptimized-codegen shape: the induction variable lives
        // in a stack slot, the test is `slt` + `beq $zero`, and the
        // increment materialises its constant into a register.
        let (_, _, nest) = nest_of(
            "main:\n\
             \tli $t0, 0\n\
             \tsw $t0, 48($sp)\n\
             .Lh:\n\
             \tlw $t1, 48($sp)\n\
             \tli $t2, 4096\n\
             \tslt $t3, $t1, $t2\n\
             \tbeq $t3, $zero, .Lout\n\
             \tlw $t4, 48($sp)\n\
             \tli $t5, 1\n\
             \taddu $t6, $t4, $t5\n\
             \tsw $t6, 48($sp)\n\
             \tj .Lh\n\
             .Lout:\n\
             \tjr $ra\n",
        );
        assert_eq!(nest.loops().len(), 1);
        assert_eq!(nest.loops()[0].trip, TripCount::Exact(4096));
    }

    #[test]
    fn memory_slot_bound_in_slot_solved_exactly() {
        // Bound kept in memory too: `while (i < n)` with `n` stored
        // once before the loop and never written inside it.
        let (_, _, nest) = nest_of(
            "main:\n\
             \tli $t0, 0\n\
             \tsw $t0, 48($sp)\n\
             \tli $t1, 12\n\
             \tsw $t1, 52($sp)\n\
             .Lh:\n\
             \tlw $t2, 48($sp)\n\
             \tlw $t3, 52($sp)\n\
             \tslt $t4, $t2, $t3\n\
             \tbeq $t4, $zero, .Lout\n\
             \tlw $t5, 48($sp)\n\
             \taddiu $t5, $t5, 1\n\
             \tsw $t5, 48($sp)\n\
             \tj .Lh\n\
             .Lout:\n\
             \tjr $ra\n",
        );
        assert_eq!(nest.loops().len(), 1);
        assert_eq!(nest.loops()[0].trip, TripCount::Exact(12));
    }

    #[test]
    fn slti_countdown_solved_exactly() {
        // `bne` polarity: continue while `slti` is non-zero.
        let (_, _, nest) = nest_of(
            "main:\n\
             \tli $t0, 0\n\
             .Lh:\n\
             \taddiu $t0, $t0, 2\n\
             \tslti $t1, $t0, 10\n\
             \tbne $t1, $zero, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(nest.loops().len(), 1);
        assert_eq!(nest.loops()[0].trip, TripCount::Exact(5));
    }

    #[test]
    fn opaque_slot_update_falls_back_to_assumed() {
        // The slot advances by a loaded (data-dependent) amount: the
        // step is not statically visible.
        let (_, _, nest) = nest_of(
            "main:\n\
             \tli $t0, 0\n\
             \tsw $t0, 48($sp)\n\
             .Lh:\n\
             \tlw $t1, 48($sp)\n\
             \tli $t2, 4096\n\
             \tslt $t3, $t1, $t2\n\
             \tbeq $t3, $zero, .Lout\n\
             \tlw $t4, 48($sp)\n\
             \tlw $t5, 60($sp)\n\
             \taddu $t6, $t4, $t5\n\
             \tsw $t6, 48($sp)\n\
             \tj .Lh\n\
             .Lout:\n\
             \tjr $ra\n",
        );
        assert_eq!(
            nest.loops()[0].trip,
            TripCount::Assumed(LOOP_MULTIPLIER as u64)
        );
    }

    #[test]
    fn solve_trip_shapes() {
        // count down 8,7,..,1 then fail at 0.
        assert_eq!(solve_trip(8, -1, Cond::Gt0), Some(8));
        // bne: 0,4,8,..,40 → 10 iterations.
        assert_eq!(solve_trip(0, 4, Cond::Ne(40)), Some(10));
        // step skips the bound: statically unbounded.
        assert_eq!(solve_trip(0, 3, Cond::Ne(40)), None);
        // moving away from the exit: unbounded.
        assert_eq!(solve_trip(1, 1, Cond::Gt0), None);
        // fails immediately.
        assert_eq!(solve_trip(-5, -1, Cond::Gt0), Some(1));
        // ge0 countdown includes the zero iteration.
        assert_eq!(solve_trip(3, -1, Cond::Ge0), Some(4));
    }
}
