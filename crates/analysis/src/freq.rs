//! Static execution-frequency estimation.
//!
//! The paper (§5.2, criterion H5) notes that its frequency classes do
//! not depend on profile fidelity and that *"it is entirely possible
//! to replace profiling with static heuristic approximations"* (citing
//! Wu-Larus and Wong). This module is that replacement: loop nesting
//! (from natural-loop detection over the dominator tree) gives each
//! block a within-function frequency of `LOOP_MULTIPLIER^depth`, and a
//! call-graph pass propagates function entry frequencies from `main`.
//! The result is a per-instruction *estimated* execution count usable
//! wherever the heuristic takes measured counts.

use std::collections::BTreeMap;
use std::sync::Arc;

use dl_mips::inst::Inst;
use dl_mips::program::{FuncSym, Program};

use crate::cfg::Cfg;
use crate::dom::Dominators;

/// Assumed iterations per loop level. Wu-Larus uses 10; we calibrate
/// to 50 because a misjudged *hot* loop costs coverage (a real miss
/// source filtered as "rare") while a misjudged cold loop only costs a
/// little precision — the asymmetric risk favours over-estimating.
pub const LOOP_MULTIPLIER: f64 = 50.0;

/// Cap preventing runaway growth through recursion or deep nesting.
const FREQ_CAP: f64 = 1.0e12;

/// Loop-nesting depth per basic block of one function.
///
/// A block's depth is the nesting depth of the innermost natural loop
/// (back edge `t → h` with `h` dominating `t`) containing it, from the
/// shared discovery in [`crate::loops`]. Back edges targeting the same
/// header (e.g. a `continue` statement) belong to one loop, not two.
#[must_use]
pub fn loop_depths(cfg: &Cfg, dom: &Dominators) -> Vec<u32> {
    let nest = crate::loops::LoopNest::discover(cfg, dom);
    (0..cfg.blocks().len()).map(|b| nest.depth_of(b)).collect()
}

/// Static execution-frequency estimates for a whole program.
#[derive(Debug, Clone)]
pub struct FreqEstimate {
    /// Estimated execution count per instruction (same indexing as the
    /// simulator's measured `exec_counts`).
    pub inst_freq: Vec<f64>,
    /// Estimated entry frequency per function name.
    pub func_freq: BTreeMap<String, f64>,
}

impl FreqEstimate {
    /// The estimates as integer counts, directly substitutable for
    /// measured execution counts in the heuristic.
    #[must_use]
    pub fn as_counts(&self) -> Vec<u64> {
        self.inst_freq
            .iter()
            .map(|&f| f.min(FREQ_CAP) as u64)
            .collect()
    }
}

/// Estimates execution frequencies for every instruction of `program`.
///
/// Within a function, block frequency is `LOOP_MULTIPLIER^depth`.
/// Function entry frequencies start at 1 for the entry function and
/// propagate along the call graph (call-site frequency × caller entry
/// frequency), iterated to a fixpoint with a cap so recursion
/// converges.
#[must_use]
pub fn estimate_frequencies(program: &Program) -> FreqEstimate {
    estimate_frequencies_with(program, |f| {
        let cfg = Arc::new(Cfg::build(program, f));
        let dom = Arc::new(Dominators::build(&cfg));
        (cfg, dom)
    })
}

/// [`estimate_frequencies`] with each function's CFG and dominator
/// tree obtained from `passes` — the hook a pass manager
/// ([`crate::ctx::AnalysisCtx`]) uses to supply its cached copies
/// instead of rebuilding them.
#[must_use]
pub fn estimate_frequencies_with(
    program: &Program,
    mut passes: impl FnMut(&FuncSym) -> (Arc<Cfg>, Arc<Dominators>),
) -> FreqEstimate {
    struct FuncInfo {
        name: String,
        start: usize,
        block_freq: Vec<f64>,
        cfg: Arc<Cfg>,
        // (callee entry index, block id of call site)
        calls: Vec<(usize, usize)>,
    }
    let mut infos = Vec::new();
    for f in program.symbols.funcs() {
        if f.start >= f.end {
            continue;
        }
        let (cfg, dom) = passes(f);
        let depths = loop_depths(&cfg, &dom);
        let block_freq: Vec<f64> = depths
            .iter()
            .map(|&d| LOOP_MULTIPLIER.powi(d as i32).min(FREQ_CAP))
            .collect();
        let mut calls = Vec::new();
        for idx in f.start..f.end {
            if let Inst::Jal { target } = program.insts[idx] {
                calls.push((target.index(), cfg.block_of(idx)));
            }
        }
        infos.push(FuncInfo {
            name: f.name.clone(),
            start: f.start,
            block_freq,
            cfg,
            calls,
        });
    }
    // Entry frequencies via fixpoint over the call graph.
    let index_of_start: BTreeMap<usize, usize> = infos
        .iter()
        .enumerate()
        .map(|(i, f)| (f.start, i))
        .collect();
    let mut entry_freq = vec![0.0f64; infos.len()];
    if let Some(&e) = index_of_start.get(&program.entry) {
        entry_freq[e] = 1.0;
    }
    for _round in 0..20 {
        let mut next = entry_freq.clone();
        if let Some(&e) = index_of_start.get(&program.entry) {
            next[e] = 1.0;
        }
        let mut changed = false;
        for (ci, info) in infos.iter().enumerate() {
            for &(callee_start, block) in &info.calls {
                let Some(&callee) = index_of_start.get(&callee_start) else {
                    continue;
                };
                let contribution = (entry_freq[ci] * info.block_freq[block]).min(FREQ_CAP);
                if contribution > next[callee] {
                    // Take the dominant call chain rather than summing:
                    // keeps recursion from diverging while preserving
                    // the order of magnitude.
                    if (contribution - next[callee]).abs() > 1e-9 {
                        changed = true;
                    }
                    next[callee] = contribution;
                }
            }
        }
        entry_freq = next;
        if !changed {
            break;
        }
    }
    let mut inst_freq = vec![0.0f64; program.insts.len()];
    let mut func_freq = BTreeMap::new();
    for (ci, info) in infos.iter().enumerate() {
        func_freq.insert(info.name.clone(), entry_freq[ci]);
        let (lo, hi) = info.cfg.func_range();
        #[allow(clippy::needless_range_loop)] // index is an instruction address
        for idx in lo..hi {
            let b = info.cfg.block_of(idx);
            inst_freq[idx] = (entry_freq[ci] * info.block_freq[b]).min(FREQ_CAP);
        }
    }
    FreqEstimate {
        inst_freq,
        func_freq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    #[test]
    fn loop_depth_counts_nesting() {
        let p = parse_asm(
            "main:\n\
             \tli $t0, 4\n\
             .Louter:\n\
             \tli $t1, 4\n\
             .Linner:\n\
             \taddiu $t1, $t1, -1\n\
             \tbgtz $t1, .Linner\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Louter\n\
             \tjr $ra\n",
        )
        .unwrap();
        let f = p.symbols.func("main").unwrap().clone();
        let cfg = Cfg::build(&p, &f);
        let dom = Dominators::build(&cfg);
        let depths = loop_depths(&cfg, &dom);
        // Entry depth 0; outer body depth 1; inner body depth 2.
        assert_eq!(depths[cfg.block_of(0)], 0);
        assert_eq!(depths[cfg.block_of(1)], 1);
        assert_eq!(depths[cfg.block_of(2)], 2);
        assert_eq!(depths[cfg.block_of(6)], 0); // exit jr
    }

    #[test]
    fn frequency_scales_with_nesting() {
        let p = parse_asm(
            "main:\n\
             \tli $t0, 4\n\
             .Lh:\n\
             \tlw $t1, 0($gp)\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        )
        .unwrap();
        let est = estimate_frequencies(&p);
        // The loop body is ~10x the entry.
        assert!(est.inst_freq[1] > 5.0 * est.inst_freq[0]);
        assert_eq!(est.func_freq["main"], 1.0);
    }

    #[test]
    fn callee_inherits_call_site_frequency() {
        let p = parse_asm(
            "main:\n\
             \tli $t0, 8\n\
             .Lh:\n\
             \tjal helper\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n\
             helper:\n\
             \tlw $t1, 0($gp)\n\
             \tjr $ra\n",
        )
        .unwrap();
        let est = estimate_frequencies(&p);
        // helper is called from inside a loop: entry frequency ~10.
        assert!(est.func_freq["helper"] >= 9.0);
        // helper's load inherits it.
        let helper_load = p.symbols.func("helper").unwrap().start;
        assert!(est.inst_freq[helper_load] >= 9.0);
    }

    #[test]
    fn uncalled_function_estimates_cold() {
        let p = parse_asm(
            "main:\n\
             \tjr $ra\n\
             ghost:\n\
             \tlw $t0, 0($gp)\n\
             \tjr $ra\n",
        )
        .unwrap();
        let est = estimate_frequencies(&p);
        assert_eq!(est.func_freq["ghost"], 0.0);
        let counts = est.as_counts();
        assert_eq!(counts[p.symbols.func("ghost").unwrap().start], 0);
    }

    #[test]
    fn recursion_converges() {
        let p = parse_asm(
            "main:\n\
             \tjal rec\n\
             \tjr $ra\n\
             rec:\n\
             \tjal rec\n\
             \tjr $ra\n",
        )
        .unwrap();
        let est = estimate_frequencies(&p);
        assert!(est.func_freq["rec"].is_finite());
        assert!(est.func_freq["rec"] >= 1.0);
    }
}
