//! The address-pattern expression language (the paper's `AP` grammar)
//! and the structural features the decision criteria H1–H4 read off it.

use std::fmt;

use dl_mips::reg::BaseReg;

/// An address pattern: the data-flow expression computing a load's
/// effective address, expressed only in terms of *basic registers*
/// (`gp`, `sp`, parameter and return-value registers), constants, and
/// the operators `+ - * << >>` plus dereferencing.
///
/// Two non-grammar leaves extend the paper's presentation:
///
/// * [`Ap::Rec`] marks the point where the expression refers back to
///   itself through a loop-carried definition — the paper's
///   *recurrence* (criterion H4).
/// * [`Ap::Unknown`] stands for values the analysis cannot express
///   (call-clobbered registers, bitwise-op results), which the paper
///   handles implicitly by classifying such patterns into no positive
///   class.
///
/// # Example
///
/// ```
/// use dl_analysis::Ap;
/// use dl_mips::reg::BaseReg;
///
/// // (sp+16) + 8 — one level of dereferencing through a stack slot.
/// let ap = Ap::add(Ap::deref(Ap::add(Ap::Base(BaseReg::Sp), Ap::Const(16))), Ap::Const(8));
/// assert_eq!(ap.to_string(), "(sp+16)+8");
/// assert_eq!(ap.deref_nesting(), 1);
/// assert_eq!(ap.count_base(BaseReg::Sp), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ap {
    /// A compile-time constant.
    Const(i64),
    /// A basic register.
    Base(BaseReg),
    /// A value the analysis cannot express in the grammar.
    Unknown,
    /// A loop-carried reference back to the pattern itself.
    Rec,
    /// Addition.
    Add(Box<Ap>, Box<Ap>),
    /// Subtraction.
    Sub(Box<Ap>, Box<Ap>),
    /// Multiplication.
    Mul(Box<Ap>, Box<Ap>),
    /// Left shift.
    Shl(Box<Ap>, Box<Ap>),
    /// Right shift.
    Shr(Box<Ap>, Box<Ap>),
    /// Dereference: the value in memory at the inner address.
    Deref(Box<Ap>),
}

// `add`/`sub`/`mul`/`shl`/`shr` are smart constructors mirroring the
// grammar's operator names, not arithmetic on `Ap` values.
#[allow(clippy::should_implement_trait)]
impl Ap {
    /// Smart constructor for `a + b` with constant folding and
    /// identity elimination.
    #[must_use]
    pub fn add(a: Ap, b: Ap) -> Ap {
        match (a, b) {
            (Ap::Const(x), Ap::Const(y)) => Ap::Const(x.wrapping_add(y)),
            (a, Ap::Const(0)) | (Ap::Const(0), a) => a,
            (a, b) => Ap::Add(Box::new(a), Box::new(b)),
        }
    }

    /// Smart constructor for `a - b` with constant folding.
    #[must_use]
    pub fn sub(a: Ap, b: Ap) -> Ap {
        match (a, b) {
            (Ap::Const(x), Ap::Const(y)) => Ap::Const(x.wrapping_sub(y)),
            (a, Ap::Const(0)) => a,
            (a, b) => Ap::Sub(Box::new(a), Box::new(b)),
        }
    }

    /// Smart constructor for `a * b` with constant folding.
    #[must_use]
    pub fn mul(a: Ap, b: Ap) -> Ap {
        match (a, b) {
            (Ap::Const(x), Ap::Const(y)) => Ap::Const(x.wrapping_mul(y)),
            (Ap::Const(0), _) | (_, Ap::Const(0)) => Ap::Const(0),
            (a, Ap::Const(1)) | (Ap::Const(1), a) => a,
            (a, b) => Ap::Mul(Box::new(a), Box::new(b)),
        }
    }

    /// Smart constructor for `a << b` with constant folding.
    #[must_use]
    pub fn shl(a: Ap, b: Ap) -> Ap {
        match (a, b) {
            (Ap::Const(x), Ap::Const(y)) if (0..64).contains(&y) => Ap::Const(x << y),
            (a, Ap::Const(0)) => a,
            (a, b) => Ap::Shl(Box::new(a), Box::new(b)),
        }
    }

    /// Smart constructor for `a >> b` with constant folding
    /// (arithmetic shift).
    #[must_use]
    pub fn shr(a: Ap, b: Ap) -> Ap {
        match (a, b) {
            (Ap::Const(x), Ap::Const(y)) if (0..64).contains(&y) => Ap::Const(x >> y),
            (a, Ap::Const(0)) => a,
            (a, b) => Ap::Shr(Box::new(a), Box::new(b)),
        }
    }

    /// Smart constructor for a dereference.
    #[must_use]
    pub fn deref(a: Ap) -> Ap {
        Ap::Deref(Box::new(a))
    }

    /// Folds a bitwise operation: constants fold, anything else is
    /// [`Ap::Unknown`] (the grammar has no bitwise operators).
    #[must_use]
    pub fn bitop(a: Ap, b: Ap, f: fn(i64, i64) -> i64) -> Ap {
        match (a, b) {
            (Ap::Const(x), Ap::Const(y)) => Ap::Const(f(x, y)),
            _ => Ap::Unknown,
        }
    }

    /// Counts occurrences of the given basic register (criterion H1).
    #[must_use]
    pub fn count_base(&self, which: BaseReg) -> u32 {
        match self {
            Ap::Base(b) => u32::from(*b == which),
            Ap::Const(_) | Ap::Unknown | Ap::Rec => 0,
            Ap::Add(a, b) | Ap::Sub(a, b) | Ap::Mul(a, b) | Ap::Shl(a, b) | Ap::Shr(a, b) => {
                a.count_base(which) + b.count_base(which)
            }
            Ap::Deref(a) => a.count_base(which),
        }
    }

    /// Returns `true` if a multiplication or shift appears anywhere
    /// (criterion H2 / aggregate class AG3).
    #[must_use]
    pub fn has_mul_or_shift(&self) -> bool {
        match self {
            Ap::Mul(..) | Ap::Shl(..) | Ap::Shr(..) => true,
            Ap::Const(_) | Ap::Base(_) | Ap::Unknown | Ap::Rec => false,
            Ap::Add(a, b) | Ap::Sub(a, b) => a.has_mul_or_shift() || b.has_mul_or_shift(),
            Ap::Deref(a) => a.has_mul_or_shift(),
        }
    }

    /// Maximum nesting depth of [`Ap::Deref`] nodes (criterion H3 works
    /// on `1 +` this value: the load instruction itself is the first
    /// level of dereferencing).
    #[must_use]
    pub fn deref_nesting(&self) -> u32 {
        match self {
            Ap::Const(_) | Ap::Base(_) | Ap::Unknown | Ap::Rec => 0,
            Ap::Add(a, b) | Ap::Sub(a, b) | Ap::Mul(a, b) | Ap::Shl(a, b) | Ap::Shr(a, b) => {
                a.deref_nesting().max(b.deref_nesting())
            }
            Ap::Deref(a) => 1 + a.deref_nesting(),
        }
    }

    /// Returns `true` if the pattern contains a recurrence (criterion
    /// H4 / aggregate class AG7).
    #[must_use]
    pub fn has_recurrence(&self) -> bool {
        match self {
            Ap::Rec => true,
            Ap::Const(_) | Ap::Base(_) | Ap::Unknown => false,
            Ap::Add(a, b) | Ap::Sub(a, b) | Ap::Mul(a, b) | Ap::Shl(a, b) | Ap::Shr(a, b) => {
                a.has_recurrence() || b.has_recurrence()
            }
            Ap::Deref(a) => a.has_recurrence(),
        }
    }

    /// Returns `true` if any part of the pattern is [`Ap::Unknown`].
    #[must_use]
    pub fn has_unknown(&self) -> bool {
        match self {
            Ap::Unknown => true,
            Ap::Const(_) | Ap::Base(_) | Ap::Rec => false,
            Ap::Add(a, b) | Ap::Sub(a, b) | Ap::Mul(a, b) | Ap::Shl(a, b) | Ap::Shr(a, b) => {
                a.has_unknown() || b.has_unknown()
            }
            Ap::Deref(a) => a.has_unknown(),
        }
    }

    /// If the pattern is a *strided* recurrence — the recurrence point
    /// adjusted only by constants and constant scaling, with no
    /// dereference between the recurrence and the address — returns the
    /// constant step. Used by the OKN baseline's "strided reference"
    /// class.
    ///
    /// The walk accepts `Rec ± c`, `(Rec ± c) * c`, `Rec << c` shapes
    /// and accumulates the effective step.
    #[must_use]
    pub fn stride(&self) -> Option<i64> {
        // Per-iteration step of the expression. Loop-invariant terms
        // (no recurrence inside) contribute step 0 when added, and a
        // constant amount when added along the recurrence cycle.
        fn walk(ap: &Ap) -> Option<i64> {
            match ap {
                Ap::Rec => Some(0),
                Ap::Add(a, b) => match (a.has_recurrence(), b.has_recurrence()) {
                    (true, false) => walk(a).map(|s| s.wrapping_add(b.as_const().unwrap_or(0))),
                    (false, true) => walk(b).map(|s| s.wrapping_add(a.as_const().unwrap_or(0))),
                    _ => None,
                },
                Ap::Sub(a, b) => match (a.has_recurrence(), b.has_recurrence()) {
                    (true, false) => walk(a).map(|s| s.wrapping_sub(b.as_const().unwrap_or(0))),
                    (false, true) => {
                        walk(b).map(|s| s.wrapping_neg().wrapping_add(a.as_const().unwrap_or(0)))
                    }
                    _ => None,
                },
                Ap::Mul(a, b) => match (a.has_recurrence(), b.has_recurrence()) {
                    (true, false) => Some(walk(a)?.wrapping_mul(b.as_const()?)),
                    (false, true) => Some(walk(b)?.wrapping_mul(a.as_const()?)),
                    _ => None,
                },
                Ap::Shl(a, b) => match b.as_const() {
                    Some(c) if (0..32).contains(&c) && a.has_recurrence() => Some(walk(a)? << c),
                    _ => None,
                },
                _ => None,
            }
        }
        if !self.has_recurrence() {
            return None;
        }
        walk(self).filter(|&s| s != 0)
    }

    /// Returns the constant value if the pattern is a bare constant.
    #[must_use]
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Ap::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Total node count (used to bound pattern growth).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Ap::Const(_) | Ap::Base(_) | Ap::Unknown | Ap::Rec => 1,
            Ap::Add(a, b) | Ap::Sub(a, b) | Ap::Mul(a, b) | Ap::Shl(a, b) | Ap::Shr(a, b) => {
                1 + a.size() + b.size()
            }
            Ap::Deref(a) => 1 + a.size(),
        }
    }
}

impl fmt::Display for Ap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Dereference binds tightest and prints as parentheses, per the
        // paper's "45(sp)+30" convention rendered as "(sp+45)+30".
        fn prec(ap: &Ap) -> u8 {
            match ap {
                Ap::Const(_) | Ap::Base(_) | Ap::Unknown | Ap::Rec | Ap::Deref(_) => 4,
                Ap::Mul(..) => 3,
                Ap::Add(..) | Ap::Sub(..) => 2,
                Ap::Shl(..) | Ap::Shr(..) => 1,
            }
        }
        fn go(ap: &Ap, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let me = prec(ap);
            let need = me < parent;
            if need {
                f.write_str("[")?;
            }
            match ap {
                Ap::Const(c) => write!(f, "{c}")?,
                Ap::Base(b) => write!(f, "{b}")?,
                Ap::Unknown => f.write_str("?")?,
                Ap::Rec => f.write_str("rec")?,
                Ap::Add(a, b) => {
                    go(a, me, f)?;
                    f.write_str("+")?;
                    go(b, me + 1, f)?;
                }
                Ap::Sub(a, b) => {
                    go(a, me, f)?;
                    f.write_str("-")?;
                    go(b, me + 1, f)?;
                }
                Ap::Mul(a, b) => {
                    go(a, me, f)?;
                    f.write_str("*")?;
                    go(b, me + 1, f)?;
                }
                Ap::Shl(a, b) => {
                    go(a, me, f)?;
                    f.write_str("<<")?;
                    go(b, me + 1, f)?;
                }
                Ap::Shr(a, b) => {
                    go(a, me, f)?;
                    f.write_str(">>")?;
                    go(b, me + 1, f)?;
                }
                Ap::Deref(a) => {
                    f.write_str("(")?;
                    go(a, 0, f)?;
                    f.write_str(")")?;
                }
            }
            if need {
                f.write_str("]")?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Ap {
        Ap::Base(BaseReg::Sp)
    }
    fn gp() -> Ap {
        Ap::Base(BaseReg::Gp)
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Ap::add(Ap::Const(2), Ap::Const(3)), Ap::Const(5));
        assert_eq!(Ap::mul(Ap::Const(4), Ap::Const(8)), Ap::Const(32));
        assert_eq!(Ap::shl(Ap::Const(1), Ap::Const(4)), Ap::Const(16));
        assert_eq!(Ap::sub(sp(), Ap::Const(0)), sp());
        assert_eq!(Ap::add(sp(), Ap::Const(0)), sp());
        assert_eq!(Ap::mul(sp(), Ap::Const(1)), sp());
        assert_eq!(Ap::mul(sp(), Ap::Const(0)), Ap::Const(0));
    }

    #[test]
    fn bitop_folds_or_gives_unknown() {
        assert_eq!(
            Ap::bitop(Ap::Const(0x10000), Ap::Const(0x34), |a, b| a | b),
            Ap::Const(0x10034)
        );
        assert_eq!(Ap::bitop(sp(), Ap::Const(1), |a, b| a & b), Ap::Unknown);
    }

    #[test]
    fn base_counting() {
        // (sp+4) + (sp+8) + gp
        let ap = Ap::add(
            Ap::add(
                Ap::deref(Ap::add(sp(), Ap::Const(4))),
                Ap::deref(Ap::add(sp(), Ap::Const(8))),
            ),
            gp(),
        );
        assert_eq!(ap.count_base(BaseReg::Sp), 2);
        assert_eq!(ap.count_base(BaseReg::Gp), 1);
        assert_eq!(ap.count_base(BaseReg::Param), 0);
    }

    #[test]
    fn deref_nesting_depth() {
        let one = Ap::deref(Ap::add(sp(), Ap::Const(16)));
        assert_eq!(one.deref_nesting(), 1);
        let chained = Ap::add(Ap::deref(one.clone()), Ap::Const(8));
        assert_eq!(chained.deref_nesting(), 2);
        // Parallel derefs don't add up.
        let parallel = Ap::add(one.clone(), Ap::deref(gp()));
        assert_eq!(parallel.deref_nesting(), 1);
    }

    #[test]
    fn mul_shift_detection() {
        // shl with a non-const left operand stays a Shl node.
        assert!(Ap::shl(sp(), Ap::Const(2)).has_mul_or_shift());
        let ap = Ap::add(Ap::Shl(Box::new(Ap::Rec), Box::new(Ap::Const(2))), gp());
        assert!(ap.has_mul_or_shift());
        assert!(!Ap::add(sp(), Ap::Const(4)).has_mul_or_shift());
        // Deref hides nothing.
        let inner = Ap::deref(Ap::Mul(Box::new(Ap::Rec), Box::new(Ap::Const(12))));
        assert!(inner.has_mul_or_shift());
    }

    #[test]
    fn recurrence_and_stride() {
        let linear = Ap::add(Ap::Rec, Ap::Const(4));
        assert!(linear.has_recurrence());
        assert_eq!(linear.stride(), Some(4));

        let scaled = Ap::add(
            Ap::Shl(
                Box::new(Ap::add(Ap::Rec, Ap::Const(1))),
                Box::new(Ap::Const(2)),
            ),
            gp(),
        );
        // (rec+1)<<2 + gp — step 4 per iteration.
        assert_eq!(scaled.stride(), Some(4));

        let pointer_chase = Ap::deref(Ap::add(Ap::Rec, Ap::Const(8)));
        assert!(pointer_chase.has_recurrence());
        assert_eq!(pointer_chase.stride(), None);

        assert_eq!(Ap::add(sp(), Ap::Const(4)).stride(), None);
    }

    #[test]
    fn display_shapes() {
        let ap = Ap::add(Ap::deref(Ap::add(sp(), Ap::Const(45))), Ap::Const(30));
        assert_eq!(ap.to_string(), "(sp+45)+30");
        let idx = Ap::add(
            Ap::deref(Ap::add(sp(), Ap::Const(4))),
            Ap::Shl(
                Box::new(Ap::deref(Ap::add(sp(), Ap::Const(8)))),
                Box::new(Ap::Const(2)),
            ),
        );
        assert_eq!(idx.to_string(), "(sp+4)+[(sp+8)<<2]");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(sp().size(), 1);
        assert_eq!(Ap::add(sp(), Ap::Const(4)).size(), 3);
        assert_eq!(Ap::deref(Ap::add(sp(), Ap::Const(4))).size(), 4);
    }

    #[test]
    fn unknown_propagates() {
        assert!(Ap::Unknown.has_unknown());
        assert!(Ap::add(sp(), Ap::Unknown).has_unknown());
        assert!(!Ap::add(sp(), Ap::Const(1)).has_unknown());
    }
}
