//! Static reuse-distance *profiles*: a per-load histogram of reuse
//! distances, from which a miss ratio for **any** cache geometry
//! falls out of one analysis.
//!
//! Where [`crate::reuse`] collapses each load to a single miss ratio
//! against one geometry (re-deriving the fits/aliasing judgement per
//! geometry), this pass computes the geometry-free artifact the
//! static reuse-profile literature works with (Razzak et al.; Barai
//! et al., see `PAPERS.md`): for every load site, the distribution of
//! *stack distances* — distinct cache blocks touched between
//! consecutive accesses to the same block. Under the classic
//! fully-associative LRU model an access hits iff its distance is
//! below the cache's block capacity, so one histogram prices every
//! geometry of the 8–64 KiB sweep with plain bucket arithmetic.
//!
//! Distances are derived from the loop nest: an invariant load's
//! reuses happen one iteration apart (distance ≈ blocks touched per
//! iteration), a strided load reuses its block within a line walk and
//! again on the next traversal of an outer loop (distance ≈ the inner
//! loop's whole footprint), a pointer chase only reuses across
//! traversals, and an irregular load abstains. Loops whose trip
//! counts were solved **exactly** produce point buckets; `Assumed`
//! trips widen each bucket into an interval of
//! [`ASSUMED_SLACK_BUCKETS`] log₂ buckets on each side, and the miss
//! model scores a straddling interval fractionally — uncertainty is
//! carried, not hidden.
//!
//! The pass is *interprocedural*: [`crate::callgraph`] supplies
//! direct call edges, and two traversals stitch functions together.
//! A bottom-up pass summarises each callee's distinct-block footprint
//! (recursive SCCs and functions with unresolved indirect control
//! flow summarise as unknown), which is inlined at call sites so a
//! calling loop's per-iteration footprint includes what its callees
//! touch. A top-down pass then assigns each singly-called function a
//! *calling context* (how often it runs, how many blocks pass
//! between invocations), which promotes the callee's own
//! fixed-address loads from one-shot cold accesses to loop-carried
//! reuses — loads the intraprocedural model had to abstain on.
//!
//! The pricing model is **fully-associative LRU by construction**.
//! `dl-sim`'s memory system can now diverge from that model on three
//! axes — PLRU/random replacement keeps hot blocks alive for
//! different durations than true LRU, an L2 changes which re-walks
//! are cheap without changing which L1 accesses miss, and a stride
//! prefetcher hides misses this model still (correctly) predicts.
//! The prediction is deliberately left geometry-only: the
//! `extension-memmatrix` table quantifies how far the simulated
//! hierarchy can drift before the FA-LRU ρ estimate degrades.

use crate::callgraph::CallGraph;
use crate::indvar::{AddressClass, LoadLoopClass};
use crate::loops::{FuncLoops, Loop, ProgramLoops, TripCount};
use crate::reuse::CacheGeometry;

/// Cache-line size (bytes) the histograms are denominated in. Every
/// geometry in this repository uses 32-byte lines; a caller pricing a
/// histogram against a different line size gets the documented
/// approximation, not an error.
pub const PROFILE_LINE: f64 = 32.0;

/// Half-width, in log₂ buckets, of the interval an `Assumed` trip
/// count widens a distance bucket into (±2 ≈ a factor of four each
/// way).
pub const ASSUMED_SLACK_BUCKETS: u8 = 2;

/// Distinct-block footprint charged for a call whose callee is
/// statically unknowable (recursive SCC, `jalr`, computed `jr`).
/// Deliberately small-but-nonzero: an unknown callee touches
/// *something*, and the resulting buckets are marked inexact anyway.
pub const UNKNOWN_CALL_BLOCKS: f64 = 8.0;

/// Highest distance bucket (distances are dynamic block counts, so 64
/// log₂ buckets cover every representable distance).
pub const MAX_BUCKET: u8 = 64;

/// A statically estimated quantity that remembers whether every trip
/// count it was derived from was solved exactly.
#[derive(Debug, Clone, Copy)]
struct Est {
    val: f64,
    exact: bool,
}

impl Est {
    const ZERO: Est = Est {
        val: 0.0,
        exact: true,
    };
    const ONE: Est = Est {
        val: 1.0,
        exact: true,
    };

    fn new(val: f64, exact: bool) -> Est {
        Est { val, exact }
    }

    fn add(self, other: Est) -> Est {
        Est::new(self.val + other.val, self.exact && other.exact)
    }

    fn mul(self, other: Est) -> Est {
        Est::new(self.val * other.val, self.exact && other.exact)
    }

    fn max(self, other: Est) -> Est {
        Est::new(self.val.max(other.val), self.exact && other.exact)
    }

    fn of_trip(t: TripCount) -> Est {
        Est::new(t.iterations(), t.is_exact())
    }
}

/// The log₂ distance bucket of `d` (in blocks): bucket 0 holds
/// distance 0, bucket `b ≥ 1` holds distances in `[2^(b-1), 2^b)`.
/// This matches `dl-sim`'s measured bucketing bit for bit, and makes
/// the hit test *exact* for power-of-two block capacities: `d < 2^k`
/// iff `bucket(d) ≤ k`.
#[must_use]
pub fn distance_bucket(d: f64) -> u8 {
    if d < 1.0 {
        0
    } else {
        let b = d.log2().floor() + 1.0;
        if b >= f64::from(MAX_BUCKET) {
            MAX_BUCKET
        } else {
            b as u8
        }
    }
}

/// One weighted bucket interval of a reuse histogram. `lo == hi` is a
/// point bucket (every trip count involved was exact); a wider
/// interval records `Assumed`-trip uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Lowest log₂ distance bucket the reuses may fall in.
    pub lo: u8,
    /// Highest log₂ distance bucket the reuses may fall in.
    pub hi: u8,
    /// Fraction of the load's dynamic accesses in this interval.
    pub weight: f64,
}

/// The static reuse-distance histogram of one load site. Weights
/// (`buckets` + `cold` + `abstain`) sum to 1: every dynamic access is
/// either a modelled reuse, a first touch, or unmodellable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReuseHistogram {
    /// Modelled reuses, as weighted bucket intervals.
    pub buckets: Vec<Bucket>,
    /// First-touch (compulsory) fraction — a miss in every geometry.
    pub cold: f64,
    /// Fraction with no static distance evidence (irregular
    /// addresses, unknown contexts). Scores as neither hit nor miss.
    pub abstain: f64,
}

impl ReuseHistogram {
    fn abstained() -> ReuseHistogram {
        ReuseHistogram {
            abstain: 1.0,
            ..ReuseHistogram::default()
        }
    }

    fn cold_only() -> ReuseHistogram {
        ReuseHistogram {
            cold: 1.0,
            ..ReuseHistogram::default()
        }
    }

    /// Adds `weight` worth of reuses at estimated distance `d`
    /// (blocks). An inexact estimate widens into an
    /// ±[`ASSUMED_SLACK_BUCKETS`] interval.
    fn push(&mut self, d: Est, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        let b = distance_bucket(d.val);
        let (lo, hi) = if d.exact {
            (b, b)
        } else {
            (
                b.saturating_sub(ASSUMED_SLACK_BUCKETS),
                (b + ASSUMED_SLACK_BUCKETS).min(MAX_BUCKET),
            )
        };
        if let Some(existing) = self.buckets.iter_mut().find(|e| e.lo == lo && e.hi == hi) {
            existing.weight += weight;
        } else {
            self.buckets.push(Bucket { lo, hi, weight });
        }
    }

    /// Fraction of accesses the histogram models (everything but
    /// `abstain`).
    #[must_use]
    pub fn modeled(&self) -> f64 {
        1.0 - self.abstain
    }

    /// Predicted miss ratio in a fully-associative LRU cache of
    /// `cap_blocks` blocks: cold accesses always miss, a point bucket
    /// misses iff its distances reach the capacity, and an interval
    /// bucket is scored per sub-bucket with a fractional charge for
    /// the one sub-bucket a non-power-of-two capacity straddles.
    /// Abstained weight contributes nothing (the estimator does not
    /// guess).
    #[must_use]
    pub fn miss_ratio(&self, cap_blocks: u64) -> f64 {
        let mut miss = self.cold;
        for b in &self.buckets {
            let span = f64::from(b.hi - b.lo) + 1.0;
            for sub in b.lo..=b.hi {
                miss += b.weight / span * sub_bucket_miss(sub, cap_blocks);
            }
        }
        miss.clamp(0.0, 1.0)
    }
}

/// Fraction of bucket `b`'s distance range at or beyond `cap`.
fn sub_bucket_miss(b: u8, cap: u64) -> f64 {
    if cap == 0 {
        return 1.0;
    }
    if b == 0 {
        return 0.0; // distance 0 hits any non-empty cache
    }
    let min_d = 2f64.powi(i32::from(b) - 1);
    let max_d = 2f64.powi(i32::from(b)) - 1.0;
    let cap = cap as f64;
    if max_d < cap {
        0.0
    } else if min_d >= cap {
        1.0
    } else {
        // Uniform within the bucket: the share of [min_d, 2^b) at or
        // beyond the capacity.
        ((max_d + 1.0 - cap) / (max_d + 1.0 - min_d)).clamp(0.0, 1.0)
    }
}

/// The static reuse profile of one load site.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Instruction index of the load.
    pub index: usize,
    /// Address class in its innermost enclosing loop.
    pub class: AddressClass,
    /// `true` if the load executes repeatedly — inside a loop, or
    /// inside a function a calling context proves is invoked from a
    /// loop.
    pub in_loop: bool,
    /// Estimated executions per program run of the iteration context
    /// the histogram was built against.
    pub trip: f64,
    /// `true` if that trip estimate was solved exactly.
    pub trip_exact: bool,
    /// `true` if the histogram needed the interprocedural machinery
    /// (callee summaries or a calling context) — i.e. the
    /// intraprocedural model alone would have abstained or gone cold.
    pub interprocedural: bool,
    /// The reuse-distance histogram.
    pub hist: ReuseHistogram,
}

/// Static reuse profiles for every load of a program, in load order.
#[derive(Debug, Clone, Default)]
pub struct ReuseProfiles {
    /// One profile per static load.
    pub loads: Vec<LoadProfile>,
}

/// One load's geometry-priced verdict.
#[derive(Debug, Clone, Copy)]
pub struct ProfilePrediction {
    /// Instruction index of the load.
    pub index: usize,
    /// Histogram-derived miss ratio in `[0, 1]`.
    pub miss_ratio: f64,
    /// `true` if the histogram abstains on most accesses — the
    /// prediction carries no weight.
    pub abstained: bool,
    /// `true` if the load has a repeating iteration context (see
    /// [`LoadProfile::in_loop`]).
    pub in_loop: bool,
    /// Copied from [`LoadProfile::interprocedural`].
    pub interprocedural: bool,
}

impl ReuseProfiles {
    /// Prices every histogram against `geometry` (fully-associative
    /// LRU over `capacity / line` blocks — associativity does not
    /// enter the stack-distance model). Cheap arithmetic: call it
    /// once per geometry of a sweep.
    #[must_use]
    pub fn predict(&self, geometry: &CacheGeometry) -> Vec<ProfilePrediction> {
        let cap_blocks = geometry.capacity / geometry.line;
        self.loads
            .iter()
            .map(|l| ProfilePrediction {
                index: l.index,
                miss_ratio: l.hist.miss_ratio(cap_blocks),
                abstained: l.hist.abstain >= 0.5,
                in_loop: l.in_loop,
                interprocedural: l.interprocedural,
            })
            .collect()
    }

    /// Loads flagged delinquent at `threshold`: repeating loads whose
    /// histogram commits to a miss ratio at or above it. One-shot
    /// loads (a single compulsory miss) and mostly-abstained loads
    /// are never flagged, mirroring [`crate::reuse`]'s abstention
    /// semantics.
    #[must_use]
    pub fn delinquent_set(&self, geometry: &CacheGeometry, threshold: f64) -> Vec<usize> {
        self.predict(geometry)
            .into_iter()
            .filter(|p| p.in_loop && !p.abstained && p.miss_ratio >= threshold)
            .map(|p| p.index)
            .collect()
    }

    /// How many loads needed the interprocedural machinery.
    #[must_use]
    pub fn interprocedural_count(&self) -> usize {
        self.loads.iter().filter(|l| l.interprocedural).count()
    }
}

/// A callee's distinct-block footprint per invocation.
#[derive(Debug, Clone, Copy)]
struct Summary {
    blocks: Est,
    known: bool,
}

/// The per-loop aggregates of one function: blocks touched by one
/// iteration and by one full execution.
#[derive(Debug, Clone, Copy)]
struct LoopBlocks {
    iter: Est,
    footprint: Est,
}

/// The calling context a singly-called function inherits: how many
/// times it is invoked over the program, and how many distinct blocks
/// pass between consecutive invocations.
#[derive(Debug, Clone, Copy)]
struct Context {
    trip: Est,
    between: Est,
}

/// Per-iteration *new* blocks a load contributes to its innermost
/// loop's footprint growth.
fn novelty(class: AddressClass) -> f64 {
    match class {
        AddressClass::Invariant => 0.0,
        AddressClass::Strided(s) => ((s.unsigned_abs() as f64).max(1.0) / PROFILE_LINE).min(1.0),
        // A chase touches a fresh block per node; an irregular load is
        // charged the same so its neighbours' distances stay honest.
        AddressClass::PointerChase | AddressClass::Irregular => 1.0,
    }
}

/// Everything the per-function phases need, gathered once.
struct FuncShape<'a> {
    floops: &'a FuncLoops,
    /// Loads of this function with their innermost loop id.
    loads: Vec<(&'a LoadLoopClass, Option<usize>)>,
    /// Direct call sites with their innermost loop id and callee.
    calls: Vec<(Option<usize>, usize)>,
    /// Children of each loop id.
    children: Vec<Vec<usize>>,
}

impl<'a> FuncShape<'a> {
    fn gather(
        floops: &'a FuncLoops,
        classes: &'a [LoadLoopClass],
        node: &crate::callgraph::CallNode,
    ) -> FuncShape<'a> {
        let innermost_of = |at: usize| -> Option<usize> {
            floops.nest.innermost(floops.cfg.block_of(at)).map(|l| l.id)
        };
        let loads = classes
            .iter()
            .filter(|c| c.index >= floops.start && c.index < floops.end)
            .map(|c| (c, innermost_of(c.index)))
            .collect();
        let calls = node
            .call_sites
            .iter()
            .map(|s| (innermost_of(s.at), s.callee))
            .collect();
        let mut children = vec![Vec::new(); floops.nest.loops().len()];
        for l in floops.nest.loops() {
            if let Some(p) = l.parent {
                children[p].push(l.id);
            }
        }
        FuncShape {
            floops,
            loads,
            calls,
            children,
        }
    }

    /// Total-trip of loop `id` with exactness tracked.
    fn total_trip(&self, id: usize) -> Est {
        let loops = self.floops.nest.loops();
        let mut est = Est::ONE;
        let mut cur = Some(id);
        let mut steps = 0;
        while let Some(l) = cur {
            est = est.mul(Est::of_trip(loops[l].trip));
            steps += 1;
            if steps > loops.len() {
                break;
            }
            cur = loops[l].parent;
        }
        est
    }

    /// Outer-trip (ancestors only) of loop `id` with exactness.
    fn outer_trip(&self, id: usize) -> Est {
        self.floops.nest.loops()[id]
            .parent
            .map_or(Est::ONE, |p| self.total_trip(p))
    }

    /// Computes [`LoopBlocks`] for every loop (children before
    /// parents) given the callee summaries.
    fn loop_blocks(&self, summaries: &[Summary]) -> Vec<LoopBlocks> {
        let loops = self.floops.nest.loops();
        let mut out = vec![
            LoopBlocks {
                iter: Est::ZERO,
                footprint: Est::ZERO,
            };
            loops.len()
        ];
        // Deeper loops first: children are finished before parents.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(loops[i].depth));
        for id in order {
            let mut iter = Est::ZERO;
            let mut new_per_iter = Est::ZERO;
            for (c, innermost) in &self.loads {
                if *innermost == Some(id) {
                    iter = iter.add(Est::ONE);
                    new_per_iter = new_per_iter.add(Est::new(novelty(c.class), true));
                }
            }
            for &(site_loop, callee) in &self.calls {
                if site_loop == Some(id) {
                    let s = summaries[callee];
                    iter = iter.add(s.blocks);
                    new_per_iter = new_per_iter.add(s.blocks);
                }
            }
            for &child in &self.children[id] {
                iter = iter.add(out[child].footprint);
                new_per_iter = new_per_iter.add(out[child].footprint);
            }
            let trip = Est::of_trip(loops[id].trip);
            // A full execution re-touches invariant data but keeps
            // streaming over strided data; children and callees are
            // charged once (their data is assumed re-walked).
            let streamed = {
                let mut only_loads = Est::ZERO;
                for (c, innermost) in &self.loads {
                    if *innermost == Some(id) {
                        only_loads = only_loads.add(Est::new(novelty(c.class), true));
                    }
                }
                only_loads
                    .mul(trip)
                    .add(new_per_iter.add(only_loads.mul(Est::new(-1.0, true))))
            };
            out[id] = LoopBlocks {
                iter,
                footprint: iter.max(streamed),
            };
        }
        out
    }

    /// The function's per-invocation footprint: top-level loads, root
    /// loops, top-level calls.
    fn own_summary(&self, summaries: &[Summary], blocks: &[LoopBlocks]) -> Summary {
        let mut total = Est::ZERO;
        let mut known = true;
        for (_, innermost) in &self.loads {
            if innermost.is_none() {
                total = total.add(Est::ONE);
            }
        }
        for l in self.floops.nest.loops() {
            if l.parent.is_none() {
                total = total.add(blocks[l.id].footprint);
            }
        }
        for &(site_loop, callee) in &self.calls {
            if site_loop.is_none() {
                let s = summaries[callee];
                total = total.add(s.blocks);
                known &= s.known;
            }
        }
        Summary {
            blocks: total,
            known,
        }
    }
}

/// Builds the reuse profile of every load. `classes`, `loops`, and
/// `cg` must come from the same program (the pass manager guarantees
/// this).
#[must_use]
pub fn build(classes: &[LoadLoopClass], loops: &ProgramLoops, cg: &CallGraph) -> ReuseProfiles {
    debug_assert_eq!(loops.funcs.len(), cg.nodes.len());
    let n = cg.nodes.len();
    let shapes: Vec<FuncShape<'_>> = (0..n)
        .map(|i| {
            debug_assert_eq!(loops.funcs[i].start, cg.nodes[i].start);
            FuncShape::gather(&loops.funcs[i], classes, &cg.nodes[i])
        })
        .collect();

    // Bottom-up: per-callee footprint summaries, inlined at call
    // sites. Recursive SCCs and indirect control flow summarise as
    // unknown (a small inexact footprint).
    let unknown = Summary {
        blocks: Est::new(UNKNOWN_CALL_BLOCKS, false),
        known: false,
    };
    let mut summaries = vec![unknown; n];
    let mut loop_blocks: Vec<Vec<LoopBlocks>> = vec![Vec::new(); n];
    for fi in cg.bottom_up() {
        let node = &cg.nodes[fi];
        loop_blocks[fi] = shapes[fi].loop_blocks(&summaries);
        if node.recursive || node.has_indirect {
            summaries[fi] = unknown;
        } else {
            summaries[fi] = shapes[fi].own_summary(&summaries, &loop_blocks[fi]);
        }
    }

    // Top-down: calling contexts. Only attempted when every reachable
    // call is a resolved direct one — an unresolved transfer could
    // invoke anything, invalidating any single-site context.
    let any_indirect = cg.nodes.iter().any(|no| no.reachable && no.has_indirect);
    let mut contexts: Vec<Option<Context>> = vec![None; n];
    if let Some(entry) = cg.entry {
        contexts[entry] = Some(Context {
            trip: Est::ONE,
            between: Est::ZERO,
        });
    }
    if !any_indirect {
        for &fi in cg.bottom_up().iter().rev() {
            if Some(fi) == cg.entry {
                continue;
            }
            let node = &cg.nodes[fi];
            if node.recursive || !node.reachable || node.incoming_sites != 1 {
                continue;
            }
            // The unique direct call site.
            let Some((caller, site)) = (0..n).find_map(|c| {
                cg.nodes[c]
                    .call_sites
                    .iter()
                    .find(|s| s.callee == fi)
                    .map(|s| (c, *s))
            }) else {
                continue;
            };
            let Some(caller_ctx) = contexts[caller] else {
                continue;
            };
            let site_loop = shapes[caller]
                .floops
                .nest
                .innermost(shapes[caller].floops.cfg.block_of(site.at))
                .map(|l| l.id);
            contexts[fi] = Some(match site_loop {
                Some(l) => Context {
                    trip: caller_ctx.trip.mul(shapes[caller].total_trip(l)),
                    between: loop_blocks[caller][l].iter,
                },
                None => caller_ctx,
            });
        }
    }

    // Histograms.
    let mut loads = Vec::with_capacity(classes.len());
    for fi in 0..n {
        let shape = &shapes[fi];
        let ctx = contexts[fi];
        for &(c, innermost) in &shape.loads {
            loads.push(profile_load(shape, &loop_blocks[fi], ctx, c, innermost));
        }
    }
    // Loads outside every non-empty function (should not happen, but
    // stay total): abstain.
    for c in classes {
        if !loads.iter().any(|l: &LoadProfile| l.index == c.index) {
            loads.push(LoadProfile {
                index: c.index,
                class: c.class,
                in_loop: c.in_loop,
                trip: c.trip,
                trip_exact: c.trip_exact,
                interprocedural: false,
                hist: ReuseHistogram::abstained(),
            });
        }
    }
    loads.sort_by_key(|l| l.index);
    ReuseProfiles { loads }
}

/// Builds one load's histogram from its loop (or calling) context.
fn profile_load(
    shape: &FuncShape<'_>,
    blocks: &[LoopBlocks],
    ctx: Option<Context>,
    c: &LoadLoopClass,
    innermost: Option<usize>,
) -> LoadProfile {
    let ctx_trip = ctx.map_or(Est::ONE, |x| x.trip);
    let Some(id) = innermost else {
        // Not in a loop. A calling context that proves repetition
        // promotes a fixed-address load into an invariant reuse; an
        // irregular one still abstains; everything else is one cold
        // access.
        return match ctx {
            Some(x) if x.trip.val > 1.5 && c.class == AddressClass::Invariant => {
                let mut hist = ReuseHistogram::default();
                let between = x.between.add(Est::new(-1.0, true)).max(Est::ZERO);
                hist.push(between, 1.0 - 1.0 / x.trip.val);
                hist.cold = 1.0 / x.trip.val;
                LoadProfile {
                    index: c.index,
                    class: c.class,
                    in_loop: true,
                    trip: x.trip.val,
                    trip_exact: x.trip.exact,
                    interprocedural: true,
                    hist,
                }
            }
            _ => LoadProfile {
                index: c.index,
                class: c.class,
                in_loop: false,
                trip: 1.0,
                trip_exact: true,
                interprocedural: false,
                hist: if c.class == AddressClass::Irregular {
                    ReuseHistogram::abstained()
                } else {
                    ReuseHistogram::cold_only()
                },
            },
        };
    };

    let nest_loop: &Loop = &shape.floops.nest.loops()[id];
    let trip = Est::of_trip(nest_loop.trip);
    let n_iter = trip.val.max(1.0);
    // Re-entries of this loop: ancestors within the function times the
    // calling context's invocation count.
    let outer = shape.outer_trip(id).mul(ctx_trip);
    let m = outer.val.max(1.0);
    // Distance between consecutive iterations: the blocks one
    // iteration touches, minus this load's own block.
    let d_iter = blocks[id].iter.add(Est::new(-1.0, true)).max(Est::ZERO);
    // Distance between consecutive traversals: the blocks one
    // iteration of the *enclosing* context touches (which includes
    // this loop's whole footprint), minus the load's own block.
    let d_rewalk = match nest_loop.parent {
        Some(p) => blocks[p].iter,
        None => match ctx {
            Some(x) if x.trip.val > 1.5 => x.between,
            // No enclosing context: d_rewalk is unused because m == 1.
            _ => blocks[id].footprint,
        },
    }
    .add(Est::new(-1.0, true))
    .max(Est::ZERO);
    let interprocedural =
        ctx.is_some_and(|x| x.trip.val > 1.5) && nest_loop.parent.is_none() && m > 1.0;

    let mut hist = ReuseHistogram::default();
    // Fraction of accesses that touch a block not touched by the
    // previous iteration of this load.
    let frac_new = match c.class {
        AddressClass::Invariant => 1.0 / n_iter,
        AddressClass::Strided(s) => ((s.unsigned_abs() as f64).max(1.0) / PROFILE_LINE).min(1.0),
        AddressClass::PointerChase => 1.0,
        AddressClass::Irregular => {
            return LoadProfile {
                index: c.index,
                class: c.class,
                in_loop: true,
                trip: c.trip,
                trip_exact: c.trip_exact,
                interprocedural: false,
                hist: ReuseHistogram::abstained(),
            };
        }
    };
    // Within-traversal reuses one iteration apart.
    hist.push(d_iter, 1.0 - frac_new);
    // New blocks: re-found on the next traversal when one exists,
    // cold otherwise (and the first traversal is always cold).
    if m > 1.0 {
        hist.push(d_rewalk, frac_new * (1.0 - 1.0 / m));
        hist.cold = frac_new / m;
    } else {
        hist.cold = frac_new;
    }

    LoadProfile {
        index: c.index,
        class: c.class,
        in_loop: true,
        trip: c.trip,
        trip_exact: c.trip_exact && outer.exact,
        interprocedural,
        hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{analyze_program, AnalysisConfig};
    use crate::indvar::classify_loads;
    use dl_mips::parse::parse_asm;

    fn profiles(src: &str) -> ReuseProfiles {
        let p = parse_asm(src).unwrap();
        let analysis = analyze_program(&p, &AnalysisConfig::default());
        let loops = ProgramLoops::build(&p);
        let classes = classify_loads(&p, &analysis, &loops);
        let cg = CallGraph::build(&p);
        build(&classes, &loops, &cg)
    }

    fn geom(kb: u64) -> CacheGeometry {
        CacheGeometry::new(kb * 1024, 32, 4)
    }

    #[test]
    fn bucket_boundaries_are_exact_for_powers_of_two() {
        assert_eq!(distance_bucket(0.0), 0);
        assert_eq!(distance_bucket(1.0), 1);
        assert_eq!(distance_bucket(3.0), 2);
        assert_eq!(distance_bucket(4.0), 3);
        assert_eq!(distance_bucket(255.0), 8);
        assert_eq!(distance_bucket(256.0), 9);
        // 256-block capacity (8 KiB / 32 B): bucket 8 hits, bucket 9
        // misses — the boundary never straddles.
        assert_eq!(sub_bucket_miss(8, 256), 0.0);
        assert_eq!(sub_bucket_miss(9, 256), 1.0);
    }

    #[test]
    fn interval_buckets_straddle_fractionally() {
        let h = ReuseHistogram {
            buckets: vec![Bucket {
                lo: 7,
                hi: 11,
                weight: 1.0,
            }],
            cold: 0.0,
            abstain: 0.0,
        };
        let r = h.miss_ratio(256);
        // Sub-buckets 7, 8 hit; 9, 10, 11 miss → 3/5.
        assert!((r - 0.6).abs() < 1e-9, "{r}");
    }

    #[test]
    fn streaming_walk_is_cold_every_new_line() {
        // 16 KiB walk, once: 4-byte stride → 1/8 of accesses first-
        // touch a line and never see it again. Miss ratio 1/8 at
        // every geometry.
        let p = profiles(
            "main:\n\
             \tli $t0, 0\n\
             \tli $t1, 16384\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \tjr $ra\n",
        );
        let load = &p.loads[0];
        assert!((load.hist.cold - 1.0 / 8.0).abs() < 1e-9);
        for kb in [8, 16, 32, 64] {
            let r = load.hist.miss_ratio(kb * 1024 / 32);
            assert!((r - 1.0 / 8.0).abs() < 1e-9, "{kb} KiB: {r}");
        }
    }

    #[test]
    fn rewalked_array_hits_when_it_fits() {
        // 4 KiB inner walk re-walked 8 times: fits a 8 KiB cache
        // (re-walk distance 128 blocks < 256), misses at 2 KiB
        // (128 >= 64).
        let p = profiles(
            "main:\n\
             \tli $s0, 8\n\
             .Louter:\n\
             \tli $t0, 0\n\
             \tli $t1, 4096\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Louter\n\
             \tjr $ra\n",
        );
        let load = &p.loads[0];
        let fits = load.hist.miss_ratio(256);
        let thrashes = load.hist.miss_ratio(64);
        // Fitting: only the first walk's 1/8 first-touches miss, and
        // only once over 8 walks.
        assert!((fits - 1.0 / 8.0 / 8.0).abs() < 1e-9, "{fits}");
        // Thrashing: every new line misses on every walk.
        assert!((thrashes - 1.0 / 8.0).abs() < 1e-9, "{thrashes}");
        // The same histogram priced both geometries.
        assert!(p.delinquent_set(&geom(2), 0.10).contains(&load.index));
        assert!(!p.delinquent_set(&geom(8), 0.10).contains(&load.index));
    }

    #[test]
    fn invariant_load_reuses_every_iteration() {
        let p = profiles(
            "main:\n\
             \tli $t0, 100\n\
             .Lh:\n\
             \tlw $t1, 0($gp)\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        );
        let load = &p.loads[0];
        assert!((load.hist.cold - 0.01).abs() < 1e-9);
        assert!((load.hist.miss_ratio(256) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn assumed_trips_widen_buckets() {
        // A chase of unknown length re-walked by an exact outer loop:
        // the re-walk distance depends on the assumed trip, so the
        // bucket must be an interval, not a point.
        let p = profiles(
            "main:\n\
             \tli $s0, 4\n\
             .Louter:\n\
             \tlw $t0, 0($gp)\n\
             .Lh:\n\
             \tlw $t0, 0($t0)\n\
             \tbne $t0, $zero, .Lh\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Louter\n\
             \tjr $ra\n",
        );
        let chase = p
            .loads
            .iter()
            .find(|l| l.class == AddressClass::PointerChase)
            .expect("chase load profiled");
        let wide = chase.hist.buckets.iter().any(|b| b.hi > b.lo);
        assert!(wide, "assumed-trip distances must widen: {:?}", chase.hist);
    }

    #[test]
    fn irregular_loads_abstain() {
        // The address register is hashed with the loaded value each
        // iteration — no affine or chase structure to model.
        let p = profiles(
            "main:\n\
             \tli $t0, 100\n\
             \tli $t3, 64\n\
             .Lh:\n\
             \tlw $t1, 0($t3)\n\
             \txor $t3, $t3, $t1\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        );
        let load = &p.loads[0];
        assert_eq!(load.hist.abstain, 1.0);
        assert!(p.delinquent_set(&geom(8), 0.0).is_empty());
    }

    #[test]
    fn call_context_resolves_cross_function_load() {
        // The callee's fixed-address load is one-shot to the
        // intraprocedural model; the calling loop's context proves it
        // repeats and reuses at a tiny distance.
        let in_loop = profiles(
            "main:\n\
             \tli $s0, 100\n\
             .Lh:\n\
             \tjal helper\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Lh\n\
             \tjr $ra\n\
             helper:\n\
             \tlw $t1, 0($gp)\n\
             \tjr $ra\n",
        );
        let load = &in_loop.loads[0];
        assert!(load.interprocedural, "context must resolve the load");
        assert!(load.in_loop);
        // The calling loop's trip is Assumed (the call interrupts the
        // countdown tracking), so the context is inexact but present:
        // the load repeats ~trip times and mostly hits.
        assert!(load.trip > 1.5, "context trip: {}", load.trip);
        assert!(!load.trip_exact);
        assert!((load.hist.cold - 1.0 / load.trip).abs() < 1e-9);
        assert!(load.hist.miss_ratio(256) < 0.05);
        assert_eq!(in_loop.interprocedural_count(), 1);

        // The same callee invoked once stays a single cold access.
        let once = profiles(
            "main:\n\
             \tjal helper\n\
             \tjr $ra\n\
             helper:\n\
             \tlw $t1, 0($gp)\n\
             \tjr $ra\n",
        );
        assert!(!once.loads[0].interprocedural);
        assert_eq!(once.loads[0].hist.cold, 1.0);
        assert_eq!(once.interprocedural_count(), 0);
    }

    #[test]
    fn two_deep_call_chain_propagates_context() {
        // main loops over f1; f1 calls f2 at top level: f2's load
        // inherits the loop context through the chain.
        let p = profiles(
            "main:\n\
             \tli $s0, 50\n\
             .Lh:\n\
             \tjal f1\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Lh\n\
             \tjr $ra\n\
             f1:\n\
             \taddiu $sp, $sp, -8\n\
             \tsw $ra, 4($sp)\n\
             \tjal f2\n\
             \tlw $ra, 4($sp)\n\
             \taddiu $sp, $sp, 8\n\
             \tjr $ra\n\
             f2:\n\
             \tlw $t1, 0($gp)\n\
             \tjr $ra\n",
        );
        let f2_load = p
            .loads
            .iter()
            .find(|l| l.interprocedural)
            .expect("f2's load resolved through the chain");
        assert!((f2_load.trip - 50.0).abs() < 1e-9);
    }

    #[test]
    fn recursive_callee_footprint_is_unknown_not_wrong() {
        let p = profiles(
            "main:\n\
             \tli $s0, 10\n\
             .Lh:\n\
             \tjal rec\n\
             \tlw $t1, 0($gp)\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Lh\n\
             \tjr $ra\n\
             rec:\n\
             \tjal rec\n\
             \tjr $ra\n",
        );
        // The invariant load next to the recursive call still gets a
        // histogram, but its iteration distance is inexact (the
        // recursive footprint is unknown) → interval buckets.
        let load = &p.loads[0];
        assert!(load.in_loop);
        assert!(
            load.hist.buckets.iter().any(|b| b.hi > b.lo),
            "unknown callee footprint must widen: {:?}",
            load.hist
        );
    }

    #[test]
    fn weights_sum_to_one() {
        let p = profiles(
            "main:\n\
             \tli $s0, 8\n\
             .Louter:\n\
             \tli $t0, 0\n\
             \tli $t1, 4096\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \tlw $t3, 0($gp)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Louter\n\
             \tjr $ra\n",
        );
        for l in &p.loads {
            let total: f64 =
                l.hist.buckets.iter().map(|b| b.weight).sum::<f64>() + l.hist.cold + l.hist.abstain;
            assert!((total - 1.0).abs() < 1e-9, "load {}: {total}", l.index);
        }
    }
}
