//! Induction-variable recognition and per-loop classification of load
//! addresses.
//!
//! For every load the reuse estimator needs to know how the address
//! moves across iterations of the enclosing loop. Three sources of
//! evidence are combined: the load's address patterns (an [`Ap`]
//! recurrence with a resolvable [`Ap::stride`] is a strided access; a
//! recurrence hidden behind a dereference is a pointer chase), basic
//! induction-variable recognition over reaching definitions (a base
//! register whose only in-loop reaching definitions are a single
//! `addiu r, r, c` self-update advances by `c` bytes per iteration
//! even when pattern extraction gave up), and *memory* induction
//! variables — unoptimized code keeps `i` in a stack slot and every
//! iteration does `lw / addiu / sw`, so a `Deref` of that slot inside
//! an address pattern advances by the slot's store step even though no
//! register ever recurs. All three are flow-based, so the
//! classification is stable under basic-block reordering.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use dl_mips::inst::Inst;
use dl_mips::program::{FuncSym, Program};
use dl_mips::reg::BaseReg;

use crate::cfg::Cfg;
use crate::extract::{LoadInfo, ProgramAnalysis};
use crate::loops::{loop_slot_changes, FuncLoops, Loop, ProgramLoops, Slot, SlotChange};
use crate::pattern::Ap;
use crate::reaching::{DefSite, ReachingDefs};

/// How a load's effective address behaves across iterations of its
/// innermost enclosing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressClass {
    /// The address does not change between iterations.
    Invariant,
    /// The address advances by a constant byte step per iteration.
    Strided(i64),
    /// The next address is loaded from memory at the current one
    /// (a recurrence through a dereference — linked structures).
    PointerChase,
    /// No static statement can be made (unknown values in every
    /// pattern).
    Irregular,
}

impl fmt::Display for AddressClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressClass::Invariant => f.write_str("invariant"),
            AddressClass::Strided(s) => write!(f, "strided({s:+})"),
            AddressClass::PointerChase => f.write_str("pointer-chase"),
            AddressClass::Irregular => f.write_str("irregular"),
        }
    }
}

/// The loop context and address class of one load site.
#[derive(Debug, Clone)]
pub struct LoadLoopClass {
    /// Instruction index of the load.
    pub index: usize,
    /// `true` if the load sits inside a natural loop.
    pub in_loop: bool,
    /// Nesting depth of the innermost enclosing loop (0 outside).
    pub loop_depth: u32,
    /// Estimated iterations of the innermost enclosing loop (1.0
    /// outside any loop).
    pub trip: f64,
    /// Estimated number of times that loop is re-entered (the product
    /// of the enclosing loops' trip counts; 1.0 for an outermost loop).
    pub outer_trip: f64,
    /// `true` if the innermost loop's trip count was solved exactly.
    pub trip_exact: bool,
    /// The address classification.
    pub class: AddressClass,
}

/// Classifies every load of `analysis` against the loop nests in
/// `loops`. Returns one entry per load, in load order.
#[must_use]
pub fn classify_loads(
    program: &Program,
    analysis: &ProgramAnalysis,
    loops: &ProgramLoops,
) -> Vec<LoadLoopClass> {
    classify_loads_with(program, analysis, loops, |fsym, cfg| {
        Arc::new(ReachingDefs::build(program, fsym, cfg))
    })
}

/// [`classify_loads`] with each function's reaching definitions
/// obtained from `reaching` — the hook a pass manager
/// ([`crate::ctx::AnalysisCtx`]) uses to supply its cached copies
/// instead of rebuilding them.
#[must_use]
pub fn classify_loads_with(
    program: &Program,
    analysis: &ProgramAnalysis,
    loops: &ProgramLoops,
    mut reaching: impl FnMut(&FuncSym, &Cfg) -> Arc<ReachingDefs>,
) -> Vec<LoadLoopClass> {
    let mut out = Vec::with_capacity(analysis.loads.len());
    // Loads arrive sorted by index, so reaching definitions (and the
    // per-loop slot maps) are built once per function.
    type SlotMaps = HashMap<usize, HashMap<Slot, SlotChange>>;
    let mut cache: Option<(usize, Arc<ReachingDefs>, SlotMaps)> = None;
    for load in &analysis.loads {
        let Some(f) = loops.func_at(load.index) else {
            out.push(LoadLoopClass {
                index: load.index,
                in_loop: false,
                loop_depth: 0,
                trip: 1.0,
                outer_trip: 1.0,
                trip_exact: false,
                class: class_from_patterns(load),
            });
            continue;
        };
        if cache.as_ref().is_none_or(|(start, ..)| *start != f.start) {
            let fsym = program
                .symbols
                .func(&f.name)
                .expect("function from ProgramLoops exists");
            cache = Some((f.start, reaching(fsym, &f.cfg), SlotMaps::new()));
        }
        let (_, rd, slot_maps) = cache.as_mut().expect("just built");
        let innermost = f.nest.innermost(f.cfg.block_of(load.index));
        let class = classify_one(program, f, rd.as_ref(), slot_maps, load, innermost);
        let (in_loop, loop_depth, trip, outer_trip, trip_exact) = match innermost {
            Some(l) => (
                true,
                l.depth,
                l.trip.iterations(),
                f.nest.outer_trip(l.id),
                l.trip.is_exact(),
            ),
            None => (false, 0, 1.0, 1.0, false),
        };
        out.push(LoadLoopClass {
            index: load.index,
            in_loop,
            loop_depth,
            trip,
            outer_trip,
            trip_exact,
            class,
        });
    }
    out
}

/// Pattern-only classification, used where no loop context exists.
fn class_from_patterns(load: &LoadInfo) -> AddressClass {
    if let Some(s) = pattern_stride(load) {
        return AddressClass::Strided(s);
    }
    if load.patterns.iter().any(Ap::has_recurrence) {
        return AddressClass::PointerChase;
    }
    if !load.patterns.is_empty() && !load.patterns.iter().any(Ap::has_unknown) {
        return AddressClass::Invariant;
    }
    AddressClass::Irregular
}

/// The smallest-magnitude resolvable pattern stride (deterministic
/// under pattern reordering).
fn pattern_stride(load: &LoadInfo) -> Option<i64> {
    load.patterns
        .iter()
        .filter_map(Ap::stride)
        .min_by_key(|s| (s.unsigned_abs(), *s))
}

/// Full classification of one load: register-pattern evidence first,
/// then basic induction-variable recognition on the base register,
/// then the memory-slot analysis for the innermost enclosing loop.
fn classify_one(
    program: &Program,
    f: &FuncLoops,
    rd: &ReachingDefs,
    slot_maps: &mut HashMap<usize, HashMap<Slot, SlotChange>>,
    load: &LoadInfo,
    innermost: Option<&Loop>,
) -> AddressClass {
    if let Some(s) = pattern_stride(load) {
        return AddressClass::Strided(s);
    }
    if let Some(s) = base_induction_step(program, f, rd, load, innermost) {
        return AddressClass::Strided(s);
    }
    if let Some(l) = innermost {
        let slots = slot_maps
            .entry(l.id)
            .or_insert_with(|| loop_slot_changes(program, &f.cfg, l));
        if let Some(class) = slot_class(load, slots) {
            return class;
        }
        if load.patterns.iter().any(Ap::has_recurrence) {
            return AddressClass::PointerChase;
        }
        // In a loop, a pattern the slot analysis could not resolve is
        // genuinely untrackable — do not claim invariance.
        return AddressClass::Irregular;
    }
    class_from_patterns(load)
}

/// How a pattern (sub)expression's value changes per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delta {
    /// Constant per-iteration change (0 = loop-invariant).
    Fixed(i64),
    /// Incorporates a pointer chased through memory.
    Chase,
    /// Untrackable.
    Unknown,
}

/// The slot a pattern expression statically addresses, if any.
fn slot_of(ap: &Ap) -> Option<Slot> {
    match ap {
        Ap::Base(b @ (BaseReg::Sp | BaseReg::Gp)) => Some((*b, 0)),
        Ap::Add(a, c) => match (a.as_ref(), c.as_ref()) {
            (Ap::Base(b @ (BaseReg::Sp | BaseReg::Gp)), Ap::Const(off))
            | (Ap::Const(off), Ap::Base(b @ (BaseReg::Sp | BaseReg::Gp))) => Some((*b, *off)),
            _ => None,
        },
        Ap::Sub(a, c) => match (a.as_ref(), c.as_ref()) {
            (Ap::Base(b @ (BaseReg::Sp | BaseReg::Gp)), Ap::Const(off)) => Some((*b, -*off)),
            _ => None,
        },
        _ => None,
    }
}

/// Per-iteration change of a whole pattern expression, given the
/// loop's slot behaviour. A `Deref` of an invariant address reads the
/// slot map: unstored slots are invariant, stepping slots contribute
/// their step, chased slots poison the expression into a chase. A
/// `Deref` through a *moving* address yields [`Delta::Chase`] — a
/// fresh pointer is read from a new location every iteration
/// (gather-style indirection), which behaves like a chase at the
/// cache.
fn pattern_delta(ap: &Ap, slots: &HashMap<Slot, SlotChange>) -> Delta {
    let combine = |a: Delta, b: Delta, op: fn(i64, i64) -> Option<i64>| match (a, b) {
        (Delta::Unknown, _) | (_, Delta::Unknown) => Delta::Unknown,
        (Delta::Chase, _) | (_, Delta::Chase) => Delta::Chase,
        (Delta::Fixed(x), Delta::Fixed(y)) => op(x, y).map_or(Delta::Unknown, Delta::Fixed),
    };
    match ap {
        Ap::Const(_) | Ap::Base(_) => Delta::Fixed(0),
        // Register recurrences and untrackable values are handled by
        // the register-level evidence, not the slot analysis.
        Ap::Unknown | Ap::Rec => Delta::Unknown,
        Ap::Add(a, b) => combine(
            pattern_delta(a, slots),
            pattern_delta(b, slots),
            i64::checked_add,
        ),
        Ap::Sub(a, b) => combine(
            pattern_delta(a, slots),
            pattern_delta(b, slots),
            i64::checked_sub,
        ),
        Ap::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
            (x, Ap::Const(c)) | (Ap::Const(c), x) => match pattern_delta(x, slots) {
                Delta::Fixed(d) => d.checked_mul(*c).map_or(Delta::Unknown, Delta::Fixed),
                other => other,
            },
            _ => match (pattern_delta(a, slots), pattern_delta(b, slots)) {
                (Delta::Fixed(0), Delta::Fixed(0)) => Delta::Fixed(0),
                _ => Delta::Unknown,
            },
        },
        Ap::Shl(a, b) => match b.as_ref() {
            Ap::Const(c @ 0..=31) => match pattern_delta(a, slots) {
                Delta::Fixed(d) => d
                    .checked_shl(*c as u32)
                    .map_or(Delta::Unknown, Delta::Fixed),
                other => other,
            },
            _ => match (pattern_delta(a, slots), pattern_delta(b, slots)) {
                (Delta::Fixed(0), Delta::Fixed(0)) => Delta::Fixed(0),
                _ => Delta::Unknown,
            },
        },
        Ap::Shr(a, b) => match (pattern_delta(a, slots), pattern_delta(b, slots)) {
            (Delta::Fixed(0), Delta::Fixed(0)) => Delta::Fixed(0),
            (Delta::Chase, _) | (_, Delta::Chase) => Delta::Chase,
            _ => Delta::Unknown, // a moving value shifted right: step lost
        },
        Ap::Deref(addr) => match pattern_delta(addr, slots) {
            Delta::Fixed(0) => match slot_of(addr).and_then(|s| slots.get(&s)) {
                None => Delta::Fixed(0), // not stored in the loop
                Some(SlotChange::Step(s)) => Delta::Fixed(*s),
                Some(SlotChange::Chase) => Delta::Chase,
                Some(SlotChange::Opaque) => Delta::Unknown,
            },
            Delta::Chase => Delta::Chase,
            // A deref through a *moving* address is an indirect
            // gather (`a[i]->field`, `b[idx[i]]`): a fresh pointer is
            // read from a new location every iteration, so the final
            // access behaves like a chase, not like a stride.
            Delta::Fixed(_) => Delta::Chase,
            Delta::Unknown => Delta::Unknown,
        },
    }
}

/// Classification from the memory-slot evidence: the smallest
/// resolvable non-zero delta wins (deterministic under pattern
/// reordering), a chase poisons, and only all-invariant patterns make
/// the load invariant.
fn slot_class(load: &LoadInfo, slots: &HashMap<Slot, SlotChange>) -> Option<AddressClass> {
    if load.patterns.is_empty() {
        return None;
    }
    let deltas: Vec<Delta> = load
        .patterns
        .iter()
        .map(|p| pattern_delta(p, slots))
        .collect();
    if let Some(s) = deltas
        .iter()
        .filter_map(|d| match d {
            Delta::Fixed(s) if *s != 0 => Some(*s),
            _ => None,
        })
        .min_by_key(|s| (s.unsigned_abs(), *s))
    {
        return Some(AddressClass::Strided(s));
    }
    if deltas.contains(&Delta::Chase) {
        return Some(AddressClass::PointerChase);
    }
    if deltas.iter().all(|d| *d == Delta::Fixed(0)) {
        return Some(AddressClass::Invariant);
    }
    None
}

/// If the load's base register is a basic induction variable of the
/// enclosing loop, its constant byte step per iteration.
///
/// The register qualifies when the definitions reaching the load from
/// inside the loop are ordinary instructions that are all the same
/// self-update `addiu base, base, step` (call-provided values
/// disqualify it), and at least one such in-loop definition exists.
fn base_induction_step(
    program: &Program,
    f: &FuncLoops,
    rd: &ReachingDefs,
    load: &LoadInfo,
    innermost: Option<&Loop>,
) -> Option<i64> {
    let l = innermost?;
    let (_, base, _, _) = program.insts[load.index].as_load()?;
    let mut step: Option<i64> = None;
    let mut in_loop_defs = 0u32;
    for site in rd.reaching(load.index, base) {
        let idx = match site {
            DefSite::Entry(_) => continue, // value from outside the loop
            DefSite::Inst(i) => i,
            // A call inside the loop feeding the base register breaks
            // the induction reading; outside the loop it is just the
            // incoming value.
            DefSite::CallRet(i) | DefSite::CallClobber(i) => {
                if l.contains(f.cfg.block_of(i)) {
                    return None;
                }
                continue;
            }
        };
        if !l.contains(f.cfg.block_of(idx)) {
            continue;
        }
        in_loop_defs += 1;
        match program.insts[idx] {
            Inst::Addiu { rt, rs, imm } if rt == base && rs == base => {
                let s = i64::from(imm);
                if step.is_some_and(|prev| prev != s) {
                    return None; // conflicting steps
                }
                step = Some(s);
            }
            _ => return None, // non-induction in-loop definition
        }
    }
    if in_loop_defs == 0 {
        return None;
    }
    step.filter(|&s| s != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{analyze_program, AnalysisConfig};
    use dl_mips::parse::parse_asm;

    fn classify(src: &str) -> (Program, Vec<LoadLoopClass>) {
        let p = parse_asm(src).unwrap();
        let analysis = analyze_program(&p, &AnalysisConfig::default());
        let loops = ProgramLoops::build(&p);
        let classes = classify_loads(&p, &analysis, &loops);
        (p, classes)
    }

    #[test]
    fn derived_pointer_slot_and_indirect_gather() {
        // `a = base + (i << 5)` keeps the cursor in a slot derived
        // from another slot's induction variable: loads through `a`
        // stride by 32, and a deref *through* a field loaded from the
        // moving cursor is an indirect gather (chase-like).
        let (_, classes) = classify(
            "main:\n\
             \tli $t0, 0\n\
             \tsw $t0, 48($sp)\n\
             \tli $t1, 4096\n\
             \tsw $t1, 40($sp)\n\
             .Lh:\n\
             \tlw $t2, 48($sp)\n\
             \tli $t3, 1024\n\
             \tslt $t4, $t2, $t3\n\
             \tbeq $t4, $zero, .Lout\n\
             \tlw $t5, 40($sp)\n\
             \tlw $t6, 48($sp)\n\
             \tsll $t7, $t6, 5\n\
             \taddu $t8, $t5, $t7\n\
             \tsw $t8, 44($sp)\n\
             \tlw $t9, 44($sp)\n\
             \tlw $s0, 0($t9)\n\
             \tlw $s1, 4($t9)\n\
             \tlw $s2, 8($s1)\n\
             \tlw $t2, 48($sp)\n\
             \taddiu $t2, $t2, 1\n\
             \tsw $t2, 48($sp)\n\
             \tj .Lh\n\
             .Lout:\n\
             \tjr $ra\n",
        );
        let by_index = |i: usize| classes.iter().find(|c| c.index == i).unwrap();
        // Field loads through the derived cursor: stride = struct size.
        assert_eq!(by_index(14).class, AddressClass::Strided(32));
        assert_eq!(by_index(15).class, AddressClass::Strided(32));
        // Deref of the pointer fetched from the moving cursor.
        assert_eq!(by_index(16).class, AddressClass::PointerChase);
        // The derived-slot loop still solves its trip from the slot IV.
        assert!(by_index(14).trip_exact);
        assert!((by_index(14).trip - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn strided_array_walk() {
        let (_, classes) = classify(
            "main:\n\
             \tli $t0, 0\n\
             \tli $t1, 256\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(classes.len(), 1);
        let c = &classes[0];
        assert_eq!(c.class, AddressClass::Strided(4));
        assert!(c.in_loop);
        assert_eq!(c.loop_depth, 1);
        assert!(c.trip_exact);
        assert!((c.trip - 64.0).abs() < 1e-9);
    }

    #[test]
    fn pointer_chase_through_deref() {
        let (_, classes) = classify(
            "main:\n\
             \tli $t0, 64\n\
             .Lh:\n\
             \tlw $t0, 0($t0)\n\
             \tbne $t0, $zero, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].class, AddressClass::PointerChase);
        assert!(classes[0].in_loop);
    }

    #[test]
    fn invariant_load_in_loop() {
        let (_, classes) = classify(
            "main:\n\
             \tli $t0, 8\n\
             .Lh:\n\
             \tlw $t1, 0($gp)\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].class, AddressClass::Invariant);
        assert!((classes[0].trip - 8.0).abs() < 1e-9);
    }

    #[test]
    fn load_outside_any_loop() {
        let (_, classes) = classify(
            "main:\n\
             \tlw $t0, 4($sp)\n\
             \tjr $ra\n",
        );
        assert_eq!(classes.len(), 1);
        assert!(!classes[0].in_loop);
        assert_eq!(classes[0].loop_depth, 0);
        assert_eq!(classes[0].class, AddressClass::Invariant);
    }

    #[test]
    fn call_fed_base_is_not_induction() {
        let (_, classes) = classify(
            "main:\n\
             \tli $s0, 8\n\
             .Lh:\n\
             \tjal helper\n\
             \tlw $t1, 0($v0)\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Lh\n\
             \tjr $ra\n\
             helper:\n\
             \tli $v0, 128\n\
             \tjr $ra\n",
        );
        // The loop load's base comes from a call: never strided.
        let in_loop: Vec<_> = classes.iter().filter(|c| c.in_loop).collect();
        assert!(!in_loop.is_empty());
        for c in in_loop {
            assert!(!matches!(c.class, AddressClass::Strided(_)));
        }
    }

    /// O0-style codegen: the induction variable `i` lives in a stack
    /// slot, so the array walk's stride is only visible through the
    /// slot's `lw / addiu / sw` update.
    #[test]
    fn memory_induction_variable_gives_stride() {
        let (_, classes) = classify(
            "main:\n\
             \taddiu $sp, $sp, -32\n\
             \tsw $zero, 16($sp)\n\
             .Lh:\n\
             \tlw $t0, 16($sp)\n\
             \tsll $t1, $t0, 2\n\
             \taddu $t2, $gp, $t1\n\
             \tlw $t3, 64($t2)\n\
             \tlw $t4, 16($sp)\n\
             \taddiu $t5, $t4, 1\n\
             \tsw $t5, 16($sp)\n\
             \tlw $t6, 16($sp)\n\
             \tslti $t7, $t6, 100\n\
             \tbne $t7, $zero, .Lh\n\
             \taddiu $sp, $sp, 32\n\
             \tjr $ra\n",
        );
        // The array element load advances 4 bytes per iteration; the
        // slot reads of `i` itself are invariant addresses.
        let array = classes.iter().find(|c| c.index == 5).unwrap();
        assert_eq!(array.class, AddressClass::Strided(4));
        for idx in [2usize, 6, 9] {
            let slot_read = classes.iter().find(|c| c.index == idx).unwrap();
            assert_eq!(slot_read.class, AddressClass::Invariant, "inst {idx}");
        }
    }

    /// O0-style pointer chase: `p` lives in a stack slot and is
    /// replaced each iteration by a value loaded through itself.
    #[test]
    fn memory_pointer_chase_detected() {
        let (_, classes) = classify(
            "main:\n\
             \taddiu $sp, $sp, -16\n\
             .Lh:\n\
             \tlw $t0, 8($sp)\n\
             \tlw $t2, 0($t0)\n\
             \tlw $t1, 4($t0)\n\
             \tsw $t1, 8($sp)\n\
             \tbne $t1, $zero, .Lh\n\
             \tjr $ra\n",
        );
        // Loads through the chased pointer are pointer-chase; the
        // slot read of `p` itself is at an invariant address.
        let value = classes.iter().find(|c| c.index == 2).unwrap();
        let next = classes.iter().find(|c| c.index == 3).unwrap();
        assert_eq!(value.class, AddressClass::PointerChase);
        assert_eq!(next.class, AddressClass::PointerChase);
        let slot = classes.iter().find(|c| c.index == 1).unwrap();
        assert_eq!(slot.class, AddressClass::Invariant);
    }

    /// A slot stored twice per iteration is not a simple induction
    /// variable — loads indexed by it must not claim a stride.
    #[test]
    fn doubly_stored_slot_is_not_induction() {
        let (_, classes) = classify(
            "main:\n\
             \taddiu $sp, $sp, -32\n\
             .Lh:\n\
             \tlw $t0, 16($sp)\n\
             \tsll $t1, $t0, 2\n\
             \taddu $t2, $gp, $t1\n\
             \tlw $t3, 64($t2)\n\
             \tsw $t3, 16($sp)\n\
             \tlw $t4, 16($sp)\n\
             \taddiu $t5, $t4, 1\n\
             \tsw $t5, 16($sp)\n\
             \tbne $t5, $zero, .Lh\n\
             \tjr $ra\n",
        );
        let array = classes.iter().find(|c| c.index == 4).unwrap();
        assert!(
            !matches!(array.class, AddressClass::Strided(_)),
            "got {:?}",
            array.class
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(AddressClass::Strided(4).to_string(), "strided(+4)");
        assert_eq!(AddressClass::Strided(-8).to_string(), "strided(-8)");
        assert_eq!(AddressClass::PointerChase.to_string(), "pointer-chase");
        assert_eq!(AddressClass::Invariant.to_string(), "invariant");
        assert_eq!(AddressClass::Irregular.to_string(), "irregular");
    }
}
