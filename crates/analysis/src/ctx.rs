//! The analysis pass manager: one [`AnalysisCtx`] per compiled
//! program, computing each analysis lazily on first request and
//! caching it — per function for the function-local passes (CFG,
//! dominators, reaching definitions) and per program for the
//! aggregated artifacts (address patterns, loop nests, induction
//! classes, frequency estimates).
//!
//! Before this existed every predictor rebuilt its own inputs:
//! `analyze_program` built a CFG and reaching definitions per
//! function, `ProgramLoops::build` rebuilt the same CFGs plus
//! dominators, `classify_loads` rebuilt reaching definitions again,
//! and `estimate_frequencies` rebuilt CFGs and dominators a third
//! time — O(predictors × passes) recomputation per program. The ctx
//! collapses that to one computation per pass per function, handing
//! out shared references, and counts its own hits, misses, and
//! per-pass wall time ([`AnalysisCtx::stats`]) so the observability
//! layer can prove the sharing actually happens.
//!
//! The ctx is two-layered so one immutable cache serves many dynamic
//! profiles: the pass caches live behind an `Arc` shared by every
//! clone, while [`AnalysisCtx::with_profile`] attaches a per-run
//! execution-count vector to a cheap copy. A pipeline memoizes the
//! profileless ctx per `(benchmark, opt)`; each simulated run holds a
//! profiled view of the same underlying caches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use dl_mips::program::{FuncSym, Program};

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::extract::{analyze_function, AnalysisConfig, ProgramAnalysis};
use crate::freq::{estimate_frequencies_with, FreqEstimate};
use crate::indvar::{classify_loads_with, LoadLoopClass};
use crate::loops::ProgramLoops;
use crate::profile::{self, ProfilePrediction, ReuseProfiles};
use crate::reaching::ReachingDefs;
use crate::reuse::{predict_from_classes, CacheGeometry, ReusePrediction};

/// A sink for pass-computation events, fired once per pass *miss*
/// (cache hits are silent). Implementors turn the events into
/// timeline spans; dl-analysis itself depends on nothing but `std`,
/// so the trait speaks `Instant`/`Duration` rather than any concrete
/// observability type.
pub trait PassObserver: Send + Sync + std::fmt::Debug {
    /// Pass `pass` was computed, starting at `start` and taking
    /// `duration`. Called from whichever thread won the computation
    /// race; implementations must be thread-safe.
    fn pass_computed(&self, pass: &'static str, start: Instant, duration: Duration);
}

/// Hit/miss/time counters for one analysis pass.
#[derive(Debug, Default)]
struct PassCounter {
    hits: AtomicU64,
    misses: AtomicU64,
    nanos: AtomicU64,
}

impl PassCounter {
    fn snapshot(&self) -> PassStats {
        PassStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            secs: self.nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// Snapshot of one pass's cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PassStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that computed the pass.
    pub misses: u64,
    /// Wall time spent computing (zero on pure hits).
    pub secs: f64,
}

impl PassStats {
    fn merge(&mut self, other: &PassStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.secs += other.secs;
    }
}

/// Snapshot of every pass cache of one ctx (or, merged, of a whole
/// pipeline). Pass names follow the dependency graph in `DESIGN.md`:
/// `cfg → dom → loops → indvar → reuse` and `cfg → reaching →
/// patterns`, with `freq` reusing `cfg` + `dom`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CtxStats {
    /// Control-flow graph construction (per function).
    pub cfg: PassStats,
    /// Dominator trees (per function).
    pub dom: PassStats,
    /// Reaching definitions (per function).
    pub reaching: PassStats,
    /// Address-pattern extraction (per program).
    pub patterns: PassStats,
    /// Loop-nest discovery + trip solving (per program).
    pub loops: PassStats,
    /// Induction-variable load classification (per program).
    pub indvar: PassStats,
    /// Static execution-frequency estimation (per program).
    pub freq: PassStats,
    /// Call-graph construction (per program).
    pub callgraph: PassStats,
    /// Static reuse-profile histograms (per program).
    pub profile: PassStats,
}

impl CtxStats {
    /// Every pass with its name, in dependency order.
    #[must_use]
    pub fn passes(&self) -> [(&'static str, PassStats); 9] {
        [
            ("cfg", self.cfg),
            ("dom", self.dom),
            ("reaching", self.reaching),
            ("patterns", self.patterns),
            ("loops", self.loops),
            ("indvar", self.indvar),
            ("freq", self.freq),
            ("callgraph", self.callgraph),
            ("profile", self.profile),
        ]
    }

    /// Accumulates another snapshot into this one.
    pub fn merge(&mut self, other: &CtxStats) {
        self.cfg.merge(&other.cfg);
        self.dom.merge(&other.dom);
        self.reaching.merge(&other.reaching);
        self.patterns.merge(&other.patterns);
        self.loops.merge(&other.loops);
        self.indvar.merge(&other.indvar);
        self.freq.merge(&other.freq);
        self.callgraph.merge(&other.callgraph);
        self.profile.merge(&other.profile);
    }

    /// Total cache hits over all passes.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.passes().iter().map(|(_, p)| p.hits).sum()
    }

    /// Total computations over all passes.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.passes().iter().map(|(_, p)| p.misses).sum()
    }

    /// Fraction of requests served from a cache, or 0 with no traffic.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Total wall time spent computing passes.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.passes().iter().map(|(_, p)| p.secs).sum()
    }
}

/// The lazily cached passes of one non-empty function.
#[derive(Debug, Default)]
struct FuncPasses {
    cfg: OnceLock<Arc<Cfg>>,
    dom: OnceLock<Arc<Dominators>>,
    reaching: OnceLock<Arc<ReachingDefs>>,
}

/// The shared, immutable core of a ctx: the program, the single
/// analysis configuration every pass reads, and every pass cache.
#[derive(Debug)]
struct CtxInner {
    program: Program,
    config: AnalysisConfig,
    /// One entry per non-empty function, sorted by start index.
    funcs: Vec<(FuncSym, FuncPasses)>,
    analysis: OnceLock<ProgramAnalysis>,
    loops: OnceLock<ProgramLoops>,
    classes: OnceLock<Vec<LoadLoopClass>>,
    freq: OnceLock<FreqEstimate>,
    callgraph: OnceLock<CallGraph>,
    reuse_profiles: OnceLock<ReuseProfiles>,
    counters: Counters,
    /// Optional pass-event sink (set at most once, usually right after
    /// construction). `None` costs one `OnceLock::get` per miss.
    observer: OnceLock<Arc<dyn PassObserver>>,
}

#[derive(Debug, Default)]
struct Counters {
    cfg: PassCounter,
    dom: PassCounter,
    reaching: PassCounter,
    patterns: PassCounter,
    loops: PassCounter,
    indvar: PassCounter,
    freq: PassCounter,
    callgraph: PassCounter,
    profile: PassCounter,
}

/// The per-program pass manager. Cheap to clone: clones share one
/// underlying cache. See the [module docs](self) for the design.
///
/// # Example
///
/// ```
/// use dl_mips::parse::parse_asm;
/// use dl_analysis::ctx::AnalysisCtx;
///
/// let p = parse_asm(
///     "main:\n\
///      \tlw $t0, 16($sp)\n\
///      \tlw $t1, 8($t0)\n\
///      \tjr $ra\n",
/// ).unwrap();
/// let ctx = AnalysisCtx::new(p);
/// // First request computes the patterns; the second is a cache hit.
/// assert_eq!(ctx.analysis().loads.len(), 2);
/// assert_eq!(ctx.analysis().loads[1].patterns[0].to_string(), "(sp+16)+8");
/// assert_eq!(ctx.stats().patterns.misses, 1);
/// assert_eq!(ctx.stats().patterns.hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisCtx {
    inner: Arc<CtxInner>,
    /// Per-run dynamic execution counts, indexed by instruction. The
    /// static pass caches never depend on this, so attaching a profile
    /// invalidates nothing.
    profile: Option<Arc<Vec<u64>>>,
}

impl AnalysisCtx {
    /// A ctx over `program` with the default [`AnalysisConfig`].
    #[must_use]
    pub fn new(program: Program) -> AnalysisCtx {
        AnalysisCtx::with_config(program, AnalysisConfig::default())
    }

    /// A ctx over `program` with an explicit pattern-extraction
    /// config. This is the one place a config enters the analysis
    /// stack; every pass reads it from here.
    #[must_use]
    pub fn with_config(program: Program, config: AnalysisConfig) -> AnalysisCtx {
        let mut funcs: Vec<(FuncSym, FuncPasses)> = program
            .symbols
            .funcs()
            .iter()
            .filter(|f| f.start < f.end)
            .map(|f| (f.clone(), FuncPasses::default()))
            .collect();
        funcs.sort_by_key(|(f, _)| f.start);
        AnalysisCtx {
            inner: Arc::new(CtxInner {
                program,
                config,
                funcs,
                analysis: OnceLock::new(),
                loops: OnceLock::new(),
                classes: OnceLock::new(),
                freq: OnceLock::new(),
                callgraph: OnceLock::new(),
                reuse_profiles: OnceLock::new(),
                counters: Counters::default(),
                observer: OnceLock::new(),
            }),
            profile: None,
        }
    }

    /// Attaches a [`PassObserver`] that receives one event per pass
    /// computation. Shared by every clone and profiled view of this
    /// ctx. The first observer wins; later calls are ignored (the ctx
    /// is cached and shared, so racing owners must not fight over it).
    pub fn set_pass_observer(&self, observer: Arc<dyn PassObserver>) {
        let _ = self.inner.observer.set(observer);
    }

    /// The analyzed program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// The pattern-extraction configuration every pass uses.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.inner.config
    }

    /// A view of the same ctx with per-run execution counts attached.
    /// Shares every pass cache with `self` (and with every other
    /// profiled view of the same program).
    #[must_use]
    pub fn with_profile(&self, exec_counts: &[u64]) -> AnalysisCtx {
        AnalysisCtx {
            inner: Arc::clone(&self.inner),
            profile: Some(Arc::new(exec_counts.to_vec())),
        }
    }

    /// The attached execution counts, if any.
    #[must_use]
    pub fn profile(&self) -> Option<&[u64]> {
        self.profile.as_deref().map(Vec::as_slice)
    }

    /// The execution count of instruction `index`. Without a profile
    /// (or beyond its length) loads are treated as hot — `u64::MAX` —
    /// matching the heuristic's long-standing convention.
    #[must_use]
    pub fn exec_count(&self, index: usize) -> u64 {
        self.profile()
            .and_then(|counts| counts.get(index).copied())
            .unwrap_or(u64::MAX)
    }

    /// Runs `compute` at most once per `slot`, counting hits, misses,
    /// and compute time. Concurrent first requests may race inside
    /// `OnceLock::get_or_init`; exactly one result is kept and only
    /// the kept computation counts as the miss.
    fn pass<'a, T>(
        &'a self,
        name: &'static str,
        slot: &'a OnceLock<T>,
        counter: &PassCounter,
        compute: impl FnOnce() -> T,
    ) -> &'a T {
        if let Some(ready) = slot.get() {
            counter.hits.fetch_add(1, Ordering::Relaxed);
            return ready;
        }
        let start = Instant::now();
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            compute()
        });
        if computed {
            let elapsed = start.elapsed();
            counter.misses.fetch_add(1, Ordering::Relaxed);
            counter.nanos.fetch_add(
                u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
            if let Some(observer) = self.inner.observer.get() {
                observer.pass_computed(name, start, elapsed);
            }
        } else {
            counter.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// The CFG of the `i`-th non-empty function.
    fn cfg_at(&self, i: usize) -> &Arc<Cfg> {
        let (func, passes) = &self.inner.funcs[i];
        self.pass("cfg", &passes.cfg, &self.inner.counters.cfg, || {
            Arc::new(Cfg::build(&self.inner.program, func))
        })
    }

    /// The dominator tree of the `i`-th non-empty function.
    fn dom_at(&self, i: usize) -> &Arc<Dominators> {
        let cfg = Arc::clone(self.cfg_at(i));
        let (_, passes) = &self.inner.funcs[i];
        self.pass("dom", &passes.dom, &self.inner.counters.dom, || {
            Arc::new(Dominators::build(&cfg))
        })
    }

    /// The reaching definitions of the `i`-th non-empty function.
    fn reaching_at(&self, i: usize) -> &Arc<ReachingDefs> {
        let cfg = Arc::clone(self.cfg_at(i));
        let (func, passes) = &self.inner.funcs[i];
        self.pass(
            "reaching",
            &passes.reaching,
            &self.inner.counters.reaching,
            || Arc::new(ReachingDefs::build(&self.inner.program, func, &cfg)),
        )
    }

    /// Index into the per-function caches for the function starting at
    /// instruction `start`, if it is one of the non-empty functions.
    fn func_index(&self, start: usize) -> Option<usize> {
        self.inner
            .funcs
            .binary_search_by_key(&start, |(f, _)| f.start)
            .ok()
    }

    /// The address-pattern analysis of every load, computed once per
    /// program from the cached per-function CFGs and reaching
    /// definitions.
    pub fn analysis(&self) -> &ProgramAnalysis {
        self.pass(
            "patterns",
            &self.inner.analysis,
            &self.inner.counters.patterns,
            || {
                let mut loads = Vec::new();
                for i in 0..self.inner.funcs.len() {
                    let rd = Arc::clone(self.reaching_at(i));
                    let (func, _) = &self.inner.funcs[i];
                    loads.extend(analyze_function(
                        &self.inner.program,
                        func,
                        &rd,
                        &self.inner.config,
                    ));
                }
                loads.sort_by_key(|l| l.index);
                ProgramAnalysis { loads }
            },
        )
    }

    /// The loop nests of every function, computed once per program
    /// from the cached CFGs and dominator trees. The returned
    /// [`ProgramLoops`] shares the ctx's CFGs (`Arc`), so downstream
    /// passes never rebuild them.
    pub fn loops(&self) -> &ProgramLoops {
        self.pass(
            "loops",
            &self.inner.loops,
            &self.inner.counters.loops,
            || {
                ProgramLoops::build_with(&self.inner.program, |f| {
                    let i = self
                        .func_index(f.start)
                        .expect("ProgramLoops walks the ctx's own functions");
                    (Arc::clone(self.cfg_at(i)), Arc::clone(self.dom_at(i)))
                })
            },
        )
    }

    /// The per-load induction-variable classes, computed once per
    /// program from the cached patterns, loops, and reaching
    /// definitions.
    pub fn load_classes(&self) -> &[LoadLoopClass] {
        let classes: &Vec<LoadLoopClass> = self.pass(
            "indvar",
            &self.inner.classes,
            &self.inner.counters.indvar,
            || {
                let analysis = self.analysis();
                let loops = self.loops();
                classify_loads_with(&self.inner.program, analysis, loops, |fsym, _cfg| {
                    let i = self
                        .func_index(fsym.start)
                        .expect("classified loads live in ctx functions");
                    Arc::clone(self.reaching_at(i))
                })
            },
        );
        classes
    }

    /// The static execution-frequency estimate, computed once per
    /// program from the cached CFGs and dominator trees.
    pub fn freq(&self) -> &FreqEstimate {
        self.pass("freq", &self.inner.freq, &self.inner.counters.freq, || {
            estimate_frequencies_with(&self.inner.program, |f| {
                let i = self
                    .func_index(f.start)
                    .expect("frequency walks the ctx's own functions");
                (Arc::clone(self.cfg_at(i)), Arc::clone(self.dom_at(i)))
            })
        })
    }

    /// Reuse-distance predictions against `geometry`. The expensive,
    /// geometry-independent part ([`Self::load_classes`]) is cached;
    /// the per-geometry miss model is cheap arithmetic, so this
    /// returns a fresh vector each call.
    #[must_use]
    pub fn reuse_predictions(&self, geometry: &CacheGeometry) -> Vec<ReusePrediction> {
        predict_from_classes(self.load_classes(), geometry)
    }

    /// The interprocedural call graph, computed once per program.
    pub fn callgraph(&self) -> &CallGraph {
        self.pass(
            "callgraph",
            &self.inner.callgraph,
            &self.inner.counters.callgraph,
            || CallGraph::build(&self.inner.program),
        )
    }

    /// The static reuse-distance profiles of every load, computed
    /// once per program from the cached load classes, loop nests, and
    /// call graph. Geometry-free: price against any geometry with
    /// [`Self::profile_predictions`].
    pub fn reuse_profiles(&self) -> &ReuseProfiles {
        self.pass(
            "profile",
            &self.inner.reuse_profiles,
            &self.inner.counters.profile,
            || {
                let classes = self.load_classes();
                let loops = self.loops();
                let cg = self.callgraph();
                profile::build(classes, loops, cg)
            },
        )
    }

    /// Histogram-derived predictions against `geometry`. Like
    /// [`Self::reuse_predictions`], the geometry-independent artifact
    /// ([`Self::reuse_profiles`]) is cached and the per-geometry
    /// pricing is cheap arithmetic — a 9-geometry sweep runs the
    /// analysis once.
    #[must_use]
    pub fn profile_predictions(&self, geometry: &CacheGeometry) -> Vec<ProfilePrediction> {
        self.reuse_profiles().predict(geometry)
    }

    /// Snapshot of every pass cache's hit/miss/time counters.
    #[must_use]
    pub fn stats(&self) -> CtxStats {
        let c = &self.inner.counters;
        CtxStats {
            cfg: c.cfg.snapshot(),
            dom: c.dom.snapshot(),
            reaching: c.reaching.snapshot(),
            patterns: c.patterns.snapshot(),
            loops: c.loops.snapshot(),
            indvar: c.indvar.snapshot(),
            freq: c.freq.snapshot(),
            callgraph: c.callgraph.snapshot(),
            profile: c.profile.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    /// Two functions: a strided array walk and a helper with a
    /// pointer chase, exercising every pass.
    const TWO_FUNCS: &str = "main:\n\
         \tli $t0, 0\n\
         \tli $t1, 4096\n\
         .Lh:\n\
         \tlw $t2, 0($t0)\n\
         \taddiu $t0, $t0, 4\n\
         \tbne $t0, $t1, .Lh\n\
         \tjal chase\n\
         \tjr $ra\n\
         chase:\n\
         \tlw $a0, 0($a0)\n\
         \tbne $a0, $zero, chase\n\
         \tjr $ra\n";

    fn ctx() -> AnalysisCtx {
        AnalysisCtx::new(parse_asm(TWO_FUNCS).unwrap())
    }

    #[test]
    fn every_pass_computes_at_most_once_per_function() {
        let ctx = ctx();
        let n_funcs = 2;
        // Force every artifact twice, in an order that exercises the
        // shared per-function passes from multiple consumers.
        for _ in 0..2 {
            let _ = ctx.analysis();
            let _ = ctx.loops();
            let _ = ctx.load_classes();
            let _ = ctx.freq();
            let _ = ctx.callgraph();
            let _ = ctx.reuse_profiles();
        }
        let s = ctx.stats();
        // Function-local passes: exactly one computation per function,
        // no matter how many program-level passes consumed them.
        assert_eq!(s.cfg.misses, n_funcs, "cfg rebuilt: {s:?}");
        assert_eq!(s.dom.misses, n_funcs, "dom rebuilt: {s:?}");
        assert_eq!(s.reaching.misses, n_funcs, "reaching rebuilt: {s:?}");
        // Program-level passes: exactly one computation each.
        for (name, pass) in [
            ("patterns", s.patterns),
            ("loops", s.loops),
            ("indvar", s.indvar),
            ("freq", s.freq),
            ("callgraph", s.callgraph),
            ("profile", s.profile),
        ] {
            assert_eq!(pass.misses, 1, "{name} recomputed");
            assert!(pass.hits >= 1, "{name} saw no cache hits");
        }
        // The shared layers were actually shared: cfg served the
        // patterns, loops, and freq consumers from one computation.
        assert!(s.cfg.hits >= 2 * n_funcs, "cfg hits too low: {s:?}");
        assert!(s.reaching.hits >= n_funcs, "reaching not shared: {s:?}");
        assert!(s.hit_rate() > 0.5);
    }

    #[test]
    fn ctx_matches_direct_analysis() {
        let ctx = ctx();
        let direct = crate::extract::analyze_program(ctx.program(), ctx.config());
        assert_eq!(ctx.analysis().loads, direct.loads);
    }

    #[test]
    fn ctx_loops_match_direct_build() {
        let ctx = ctx();
        let direct = ProgramLoops::build(ctx.program());
        let via = ctx.loops();
        assert_eq!(via.funcs.len(), direct.funcs.len());
        for (a, b) in via.funcs.iter().zip(direct.funcs.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.nest.loops().len(), b.nest.loops().len());
            for (la, lb) in a.nest.loops().iter().zip(b.nest.loops().iter()) {
                assert_eq!(la.header, lb.header);
                assert_eq!(la.blocks, lb.blocks);
                assert_eq!(la.trip, lb.trip);
            }
        }
    }

    #[test]
    fn profile_views_share_one_cache() {
        let base = ctx();
        let _ = base.analysis();
        let profiled = base.with_profile(&[7; 16]);
        let _ = profiled.analysis();
        // The profiled view hit the base view's cache.
        assert_eq!(base.stats().patterns.misses, 1);
        assert_eq!(base.stats().patterns.hits, 1);
        assert_eq!(profiled.exec_count(0), 7);
        assert_eq!(profiled.exec_count(999), u64::MAX);
        assert_eq!(base.exec_count(0), u64::MAX);
        assert!(base.profile().is_none());
        assert_eq!(profiled.profile().map(<[u64]>::len), Some(16));
    }

    #[test]
    fn concurrent_requests_compute_each_pass_once() {
        let ctx = ctx();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    let _ = ctx.analysis();
                    let _ = ctx.load_classes();
                    let _ = ctx.freq();
                });
            }
        });
        let s = ctx.stats();
        assert_eq!(s.patterns.misses, 1);
        assert_eq!(s.indvar.misses, 1);
        assert_eq!(s.freq.misses, 1);
        assert_eq!(s.cfg.misses, 2);
    }

    #[test]
    fn reuse_predictions_come_from_cached_classes() {
        let ctx = ctx();
        let g8 = CacheGeometry::new(8 * 1024, 32, 4);
        let g64 = CacheGeometry::new(64 * 1024, 32, 4);
        let p8 = ctx.reuse_predictions(&g8);
        let p64 = ctx.reuse_predictions(&g64);
        assert_eq!(p8.len(), p64.len());
        // Two geometries, one classification.
        assert_eq!(ctx.stats().indvar.misses, 1);
        // The 16 KiB walk misses in the 8 KiB cache...
        assert!(p8.iter().any(|p| p.miss_ratio > 0.0));
    }

    #[test]
    fn observer_fires_once_per_computed_pass() {
        #[derive(Debug, Default)]
        struct Recorder(std::sync::Mutex<Vec<&'static str>>);
        impl PassObserver for Recorder {
            fn pass_computed(&self, pass: &'static str, start: Instant, duration: Duration) {
                assert!(start.elapsed() >= duration);
                self.0.lock().unwrap().push(pass);
            }
        }
        let ctx = ctx();
        let recorder = Arc::new(Recorder::default());
        ctx.set_pass_observer(Arc::clone(&recorder) as Arc<dyn PassObserver>);
        for _ in 0..2 {
            let _ = ctx.analysis();
            let _ = ctx.load_classes();
            let _ = ctx.freq();
            let _ = ctx.reuse_profiles();
        }
        let mut events = recorder.0.lock().unwrap().clone();
        events.sort_unstable();
        // Two functions → two cfg/dom/reaching computations; one of
        // each program-level pass. Cache hits fired nothing.
        assert_eq!(
            events,
            vec![
                "callgraph",
                "cfg",
                "cfg",
                "dom",
                "dom",
                "freq",
                "indvar",
                "loops",
                "patterns",
                "profile",
                "reaching",
                "reaching"
            ]
        );
        // Setting a second observer is a silent no-op (first wins).
        ctx.set_pass_observer(Arc::new(Recorder::default()));
    }

    #[test]
    fn stats_merge_accumulates() {
        let a = ctx();
        let b = ctx();
        let _ = a.analysis();
        let _ = b.analysis();
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged.patterns.misses, 2);
        assert_eq!(merged.cfg.misses, 4);
        assert_eq!(merged.misses(), a.stats().misses() + b.stats().misses());
    }
}
