//! Static reuse-distance estimation: a second, loop-aware delinquency
//! predictor.
//!
//! Where the paper's heuristic scores a load by the *shape* of its
//! address pattern (AG1–AG9), this estimator predicts an actual miss
//! ratio by combining three statically recovered quantities — the
//! address class per iteration ([`crate::indvar`]), the enclosing
//! loop's trip count ([`crate::loops`]), and the resulting data
//! footprint — against a cache geometry. The model follows the spirit
//! of static reuse-profile estimation (Razzak et al.; Barai et al.)
//! with deliberate simplifications documented in `DESIGN.md`:
//! fully-symbolic reuse histograms are collapsed to the four address
//! classes, conflict misses are modeled only for set-aliasing strides,
//! and unknown addresses abstain (predict 0) rather than guess.
//!
//! The cache geometry is a plain value object so this crate stays
//! independent of `dl-sim`; callers construct it from `dl-sim`'s
//! `CacheConfig` accessors (capacity / line / associativity). The
//! geometry carries no replacement policy, hierarchy, or prefetcher:
//! the estimate assumes LRU-like retention, so when `dl-sim` runs
//! with PLRU/random replacement, an L2, or a stride prefetcher, the
//! predicted set stays fixed while the simulated misses move — the
//! `extension-memmatrix` table measures exactly that divergence.

use crate::extract::ProgramAnalysis;
use crate::indvar::{classify_loads, AddressClass, LoadLoopClass};
use crate::loops::ProgramLoops;
use dl_mips::program::Program;

/// Default prediction threshold above which a load is considered
/// delinquent — the same δ the paper uses for φ scores.
pub const REUSE_DELTA: f64 = 0.10;

/// The cache parameters the estimator predicts against. Mirrors
/// `dl-sim`'s `CacheConfig` (capacity, line size, associativity)
/// without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line (block) size in bytes.
    pub line: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheGeometry {
    /// A geometry from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the capacity is not a
    /// multiple of `line * assoc`.
    #[must_use]
    pub fn new(capacity: u64, line: u64, assoc: u32) -> CacheGeometry {
        assert!(capacity > 0 && line > 0 && assoc > 0, "bad cache geometry");
        assert!(
            capacity.is_multiple_of(line * u64::from(assoc)),
            "capacity must be a whole number of sets"
        );
        CacheGeometry {
            capacity,
            line,
            assoc,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.capacity / (self.line * u64::from(self.assoc))
    }
}

/// The estimator's verdict for one load site.
#[derive(Debug, Clone)]
pub struct ReusePrediction {
    /// Instruction index of the load.
    pub index: usize,
    /// Address class in the innermost enclosing loop.
    pub class: AddressClass,
    /// Nesting depth of that loop (0 outside any loop).
    pub loop_depth: u32,
    /// Estimated iterations of that loop.
    pub trip: f64,
    /// `true` if the trip count was solved exactly.
    pub trip_exact: bool,
    /// Estimated bytes touched by one traversal of the loop.
    pub footprint: f64,
    /// Predicted per-access miss ratio in `[0, 1]`.
    pub miss_ratio: f64,
}

/// Predicts a miss ratio for every load of the program. One entry per
/// load, in load order.
#[must_use]
pub fn predict_program(
    program: &Program,
    analysis: &ProgramAnalysis,
    geometry: &CacheGeometry,
) -> Vec<ReusePrediction> {
    let loops = ProgramLoops::build(program);
    predict_from_classes(&classify_loads(program, analysis, &loops), geometry)
}

/// Applies the miss model to already-classified loads. The
/// classification ([`classify_loads`]) is geometry-independent and
/// expensive; this step is cheap arithmetic, so a pass manager caches
/// the classes once and calls this per geometry.
#[must_use]
pub fn predict_from_classes(
    classes: &[LoadLoopClass],
    geometry: &CacheGeometry,
) -> Vec<ReusePrediction> {
    classes.iter().map(|c| predict_one(c, geometry)).collect()
}

/// Indices of the loads whose predicted miss ratio reaches
/// `threshold`, ascending.
#[must_use]
pub fn delinquent_set(predictions: &[ReusePrediction], threshold: f64) -> Vec<usize> {
    predictions
        .iter()
        .filter(|p| p.miss_ratio >= threshold)
        .map(|p| p.index)
        .collect()
}

/// The per-class miss model. All ratios are per dynamic access.
///
/// * Outside any loop the load runs ~once: its single compulsory miss
///   is not delinquent (ratio 0).
/// * **Invariant** in a loop of `N` iterations: one line fetched once,
///   reused `N-1` times → `1/N`.
/// * **Strided** by `s` over `N` iterations: the traversal touches
///   `|s|·N` bytes, missing once per line → `min(|s|, L)/L` per
///   access. If the trip was solved exactly, the footprint fits in
///   the cache, the stride does not alias a single set, and an outer
///   loop re-traverses it `M` times, later traversals hit: the ratio
///   divides by `M`. An *assumed* trip gives no basis for claiming
///   the footprint fits, so it never earns the discount.
/// * **Pointer chase** over `N` nodes: worst case one line per node;
///   small chains with a solved length that fit and are re-walked
///   amortize like a fitting stride, long ones miss every access.
/// * **Irregular**: no static evidence — the estimator abstains
///   (ratio 0) rather than dilute precision.
fn predict_one(c: &LoadLoopClass, g: &CacheGeometry) -> ReusePrediction {
    let line = g.line as f64;
    let (footprint, miss_ratio) = if !c.in_loop {
        (line, 0.0)
    } else {
        match c.class {
            AddressClass::Invariant => (line, 1.0 / c.trip.max(1.0)),
            AddressClass::Strided(s) => {
                let stride = (s.unsigned_abs() as f64).max(1.0);
                let footprint = stride * c.trip;
                let per_traversal = (stride.min(line)) / line;
                let fits = footprint <= g.capacity as f64;
                // A stride that is a multiple of (line * sets) keeps
                // hitting one set; once more lines than ways are live
                // the set thrashes and cross-traversal reuse is gone.
                let set_span = (g.line * g.sets()) as f64;
                let aliases_one_set = (s.unsigned_abs() as f64) % set_span == 0.0
                    && footprint > (u64::from(g.assoc) * g.line) as f64;
                // The cross-traversal discount needs a solved trip:
                // an assumed count gives no basis for claiming the
                // footprint actually fits.
                let ratio = if c.trip_exact && fits && !aliases_one_set && c.outer_trip > 1.0 {
                    per_traversal / c.outer_trip
                } else {
                    per_traversal
                };
                (footprint, ratio)
            }
            AddressClass::PointerChase => {
                let footprint = line * c.trip;
                let fits = c.trip_exact && footprint <= g.capacity as f64;
                let ratio = if fits && c.outer_trip > 1.0 {
                    1.0 / c.outer_trip
                } else {
                    1.0
                };
                (footprint, ratio)
            }
            AddressClass::Irregular => (line * c.trip, 0.0),
        }
    };
    ReusePrediction {
        index: c.index,
        class: c.class,
        loop_depth: c.loop_depth,
        trip: c.trip,
        trip_exact: c.trip_exact,
        footprint,
        miss_ratio: miss_ratio.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{analyze_program, AnalysisConfig};
    use dl_mips::parse::parse_asm;

    fn geom() -> CacheGeometry {
        // 8 KiB, 4-way, 32 B lines — the paper's baseline cache.
        CacheGeometry::new(8 * 1024, 32, 4)
    }

    fn predict(src: &str) -> Vec<ReusePrediction> {
        let p = parse_asm(src).unwrap();
        let analysis = analyze_program(&p, &AnalysisConfig::default());
        predict_program(&p, &analysis, &geom())
    }

    #[test]
    fn geometry_accessors() {
        let g = geom();
        assert_eq!(g.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn zero_geometry_panics() {
        let _ = CacheGeometry::new(0, 32, 4);
    }

    #[test]
    fn streaming_load_misses_once_per_line() {
        // 4-byte stride over 4096 iterations: 16 KiB footprint, does
        // not fit 8 KiB → miss every 8th access (4/32).
        let p = predict(
            "main:\n\
             \tli $t0, 0\n\
             \tli $t1, 16384\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].class, AddressClass::Strided(4));
        assert!((p[0].miss_ratio - 4.0 / 32.0).abs() < 1e-9);
        assert!((p[0].footprint - 16384.0).abs() < 1e-9);
    }

    #[test]
    fn fitting_stride_amortizes_over_outer_loop() {
        // Inner walk touches 1 KiB (fits); the outer loop re-walks it
        // 8 times → ratio = (4/32) / 8.
        let p = predict(
            "main:\n\
             \tli $s0, 8\n\
             .Louter:\n\
             \tli $t0, 0\n\
             \tli $t1, 1024\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Louter\n\
             \tjr $ra\n",
        );
        assert_eq!(p.len(), 1);
        assert!((p[0].miss_ratio - (4.0 / 32.0) / 8.0).abs() < 1e-9);
        assert_eq!(p[0].loop_depth, 2);
    }

    #[test]
    fn pointer_chase_predicts_heavy_misses() {
        let p = predict(
            "main:\n\
             \tli $t0, 64\n\
             .Lh:\n\
             \tlw $t0, 0($t0)\n\
             \tbne $t0, $zero, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].class, AddressClass::PointerChase);
        // Assumed trip (50 nodes) × 32 B lines = 1600 B fits the 8 KiB
        // cache, but with no outer loop there is no reuse: ratio 1.
        assert!((p[0].miss_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loop_invariant_amortizes_to_one_over_trip() {
        let p = predict(
            "main:\n\
             \tli $t0, 8\n\
             .Lh:\n\
             \tlw $t1, 0($gp)\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(p.len(), 1);
        assert!((p[0].miss_ratio - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn outside_loop_predicts_no_delinquency() {
        let p = predict("main:\n\tlw $t0, 4($sp)\n\tjr $ra\n");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].miss_ratio, 0.0);
    }

    #[test]
    fn set_aliasing_stride_defeats_reuse() {
        // Stride 2048 = line * sets: every access lands in one set.
        // 16 iterations → 32 KiB footprint ... does not fit anyway;
        // use 4 iterations (8 KiB, fits) re-walked by an outer loop —
        // aliasing must still disable the outer-loop discount.
        let p = predict(
            "main:\n\
             \tli $s0, 8\n\
             .Louter:\n\
             \tli $t0, 0\n\
             \tli $t1, 8192\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 2048\n\
             \tbne $t0, $t1, .Lh\n\
             \taddiu $s0, $s0, -1\n\
             \tbgtz $s0, .Louter\n\
             \tjr $ra\n",
        );
        assert_eq!(p.len(), 1);
        // 4 lines in one 4-way set is within associativity... footprint
        // 8192 ≤ 8192 fits, 4 iterations × 2048 stride: aliasing needs
        // footprint > assoc*line = 128; 8192 > 128 → no discount.
        assert!((p[0].miss_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delinquent_set_filters_and_sorts() {
        let p = predict(
            "main:\n\
             \tlw $t3, 4($sp)\n\
             \tli $t0, 0\n\
             \tli $t1, 16384\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \tjr $ra\n",
        );
        assert_eq!(p.len(), 2);
        let set = delinquent_set(&p, REUSE_DELTA);
        assert_eq!(set, vec![3]);
        assert!(delinquent_set(&p, 0.99).is_empty());
    }
}
