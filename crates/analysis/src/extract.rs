//! Address-pattern extraction: turning each static load's address
//! operand into a set of [`Ap`] expressions by backward substitution
//! through reaching definitions.
//!
//! Intermediate registers are eliminated until the expression bottoms
//! out in basic registers, constants, dereferences of other patterns
//! (when a definition is itself a load), recurrence markers (when the
//! substitution revisits a definition already on the current expansion
//! path — a loop-carried address), or [`Ap::Unknown`].

use dl_mips::inst::Inst;
use dl_mips::program::Program;
use dl_mips::reg::Reg;

use crate::cfg::Cfg;
use crate::pattern::Ap;
use crate::reaching::{DefSite, ReachingDefs};

/// Bounds on pattern expansion, preventing exponential blowup on
/// join-heavy code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Maximum number of distinct patterns kept per load.
    pub max_patterns: usize,
    /// Maximum substitution depth.
    pub max_depth: usize,
    /// Patterns larger than this many nodes are abandoned as
    /// [`Ap::Unknown`].
    pub max_nodes: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_patterns: 8,
            max_depth: 16,
            max_nodes: 64,
        }
    }
}

/// The analysis result for one static load instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadInfo {
    /// Instruction index of the load.
    pub index: usize,
    /// Name of the containing function.
    pub func: String,
    /// The load's address patterns — one per distinct reaching
    /// address computation (bounded by
    /// [`AnalysisConfig::max_patterns`]).
    pub patterns: Vec<Ap>,
    /// `true` if expansion hit a configured bound and the pattern set
    /// is incomplete.
    pub truncated: bool,
}

impl LoadInfo {
    /// Maximum [`Ap::deref_nesting`] over all patterns.
    #[must_use]
    pub fn max_deref_nesting(&self) -> u32 {
        self.patterns
            .iter()
            .map(Ap::deref_nesting)
            .max()
            .unwrap_or(0)
    }

    /// `true` if any pattern contains a recurrence.
    #[must_use]
    pub fn any_recurrence(&self) -> bool {
        self.patterns.iter().any(Ap::has_recurrence)
    }

    /// `true` if any pattern contains a multiplication or shift.
    #[must_use]
    pub fn any_mul_or_shift(&self) -> bool {
        self.patterns.iter().any(Ap::has_mul_or_shift)
    }
}

/// The analysis result for a whole program: one [`LoadInfo`] per static
/// load, in program order.
#[derive(Debug, Clone, Default)]
pub struct ProgramAnalysis {
    /// Per-load analysis records.
    pub loads: Vec<LoadInfo>,
}

impl ProgramAnalysis {
    /// Looks up the record for the load at instruction `index`.
    #[must_use]
    pub fn load_at(&self, index: usize) -> Option<&LoadInfo> {
        self.loads
            .binary_search_by_key(&index, |l| l.index)
            .ok()
            .map(|i| &self.loads[i])
    }
}

struct Expander<'a> {
    program: &'a Program,
    rd: &'a ReachingDefs,
    cfg: &'a AnalysisConfig,
    path: Vec<usize>,
    truncated: bool,
}

impl Expander<'_> {
    fn cap(&mut self, mut v: Vec<Ap>) -> Vec<Ap> {
        v.sort_by_key(Ap::size);
        v.dedup();
        if v.len() > self.cfg.max_patterns {
            v.truncate(self.cfg.max_patterns);
            self.truncated = true;
        }
        v
    }

    /// All patterns for the value of `reg` just before instruction `at`.
    fn expand_reg(&mut self, reg: Reg, at: usize, depth: usize) -> Vec<Ap> {
        if reg == Reg::Zero {
            return vec![Ap::Const(0)];
        }
        // The paper's grammar treats `sp` and `gp` as terminal basic
        // registers: frame adjustments (`addiu $sp, $sp, -N`) are not
        // substituted through, so patterns are relative to the value
        // of the register *at the load*.
        if reg == Reg::Sp {
            return vec![Ap::Base(dl_mips::reg::BaseReg::Sp)];
        }
        if reg == Reg::Gp {
            return vec![Ap::Base(dl_mips::reg::BaseReg::Gp)];
        }
        if depth >= self.cfg.max_depth {
            self.truncated = true;
            return vec![Ap::Unknown];
        }
        let mut out = Vec::new();
        for site in self.rd.reaching(at, reg) {
            match site {
                DefSite::Entry(r) => out.push(match r.base_reg() {
                    Some(b) => Ap::Base(b),
                    None => Ap::Unknown,
                }),
                DefSite::CallRet(_) => out.push(Ap::Base(dl_mips::reg::BaseReg::Ret)),
                DefSite::CallClobber(_) => out.push(Ap::Unknown),
                DefSite::Inst(d) => {
                    if self.path.contains(&d) {
                        out.push(Ap::Rec);
                    } else {
                        self.path.push(d);
                        out.extend(self.expand_def(d, depth + 1));
                        self.path.pop();
                    }
                }
            }
        }
        if out.is_empty() {
            out.push(Ap::Unknown);
        }
        let out = self.cap(out);
        out.into_iter()
            .map(|p| {
                if p.size() > self.cfg.max_nodes {
                    self.truncated = true;
                    Ap::Unknown
                } else {
                    p
                }
            })
            .collect()
    }

    /// Patterns for the value produced by the defining instruction `d`.
    fn expand_def(&mut self, d: usize, depth: usize) -> Vec<Ap> {
        let inst = self.program.insts[d];
        let unary = |me: &mut Self, rs: Reg, f: &dyn Fn(Ap) -> Ap| -> Vec<Ap> {
            me.expand_reg(rs, d, depth).into_iter().map(f).collect()
        };
        let binary = |me: &mut Self, rs: Reg, rt: Reg, f: &dyn Fn(Ap, Ap) -> Ap| -> Vec<Ap> {
            let left = me.expand_reg(rs, d, depth);
            let right = me.expand_reg(rt, d, depth);
            let mut out = Vec::new();
            for l in &left {
                for r in &right {
                    out.push(f(l.clone(), r.clone()));
                    if out.len() >= me.cfg.max_patterns {
                        me.truncated = me.truncated || left.len() * right.len() > out.len();
                        return out;
                    }
                }
            }
            out
        };
        match inst {
            // A defining load contributes a dereference of its own
            // address pattern.
            _ if inst.as_load().is_some() => {
                let (_, base, off, _) = inst.as_load().expect("checked");
                unary(self, base, &|p| {
                    Ap::deref(Ap::add(p, Ap::Const(i64::from(off))))
                })
            }
            Inst::Lui { imm, .. } => vec![Ap::Const(i64::from(imm) << 16)],
            Inst::Addiu { rs, imm, .. } => {
                unary(self, rs, &|p| Ap::add(p, Ap::Const(i64::from(imm))))
            }
            Inst::Addu { rs, rt, .. } => binary(self, rs, rt, &Ap::add),
            Inst::Subu { rs, rt, .. } => binary(self, rs, rt, &Ap::sub),
            Inst::Mul { rs, rt, .. } => binary(self, rs, rt, &Ap::mul),
            Inst::Sll { rt, shamt, .. } => {
                unary(self, rt, &move |p| Ap::shl(p, Ap::Const(i64::from(shamt))))
            }
            Inst::Srl { rt, shamt, .. } | Inst::Sra { rt, shamt, .. } => {
                unary(self, rt, &move |p| Ap::shr(p, Ap::Const(i64::from(shamt))))
            }
            Inst::Sllv { rt, rs, .. } => binary(self, rt, rs, &Ap::shl),
            Inst::Srlv { rt, rs, .. } | Inst::Srav { rt, rs, .. } => binary(self, rt, rs, &Ap::shr),
            // Bitwise ops with immediates: constants fold (lui/ori
            // constant synthesis); otherwise the mask is *transparent*
            // — `x & 1023` keeps `x`'s structure. The paper's grammar
            // has no bitwise operators; collapsing masked indices to
            // Unknown would hide the dereference/recurrence structure
            // criteria H1-H4 need, so transparency is the faithful
            // reading (DESIGN.md notes this deviation).
            Inst::Ori { rs, imm, .. } => unary(self, rs, &move |p| match p.as_const() {
                Some(c) => Ap::Const(c | i64::from(imm)),
                None => p,
            }),
            Inst::Andi { rs, imm, .. } => unary(self, rs, &move |p| match p.as_const() {
                Some(c) => Ap::Const(c & i64::from(imm)),
                None => p,
            }),
            Inst::Xori { rs, imm, .. } => unary(self, rs, &move |p| match p.as_const() {
                Some(c) => Ap::Const(c ^ i64::from(imm)),
                None => p,
            }),
            Inst::Or { rs, rt, .. } => binary(self, rs, rt, &|a, b| Ap::bitop(a, b, |x, y| x | y)),
            Inst::And { rs, rt, .. } => binary(self, rs, rt, &|a, b| Ap::bitop(a, b, |x, y| x & y)),
            Inst::Xor { rs, rt, .. } => binary(self, rs, rt, &|a, b| Ap::bitop(a, b, |x, y| x ^ y)),
            // Division, comparisons, nor: not expressible in the grammar.
            _ => vec![Ap::Unknown],
        }
    }
}

/// Computes address patterns for every static load of one function,
/// given its already-built reaching definitions. Records come out in
/// instruction order. This is the per-function unit the pass manager
/// ([`crate::ctx::AnalysisCtx`]) caches; [`analyze_program`] is the
/// standalone composition over all functions.
#[must_use]
pub fn analyze_function(
    program: &Program,
    func: &dl_mips::program::FuncSym,
    rd: &ReachingDefs,
    config: &AnalysisConfig,
) -> Vec<LoadInfo> {
    let mut loads = Vec::new();
    for idx in func.start..func.end {
        let Some((_, base, off, _)) = program.insts[idx].as_load() else {
            continue;
        };
        let mut ex = Expander {
            program,
            rd,
            cfg: config,
            path: Vec::new(),
            truncated: false,
        };
        let base_patterns = ex.expand_reg(base, idx, 0);
        let mut patterns: Vec<Ap> = base_patterns
            .into_iter()
            .map(|p| Ap::add(p, Ap::Const(i64::from(off))))
            .collect();
        patterns.sort_by_key(Ap::size);
        patterns.dedup();
        loads.push(LoadInfo {
            index: idx,
            func: func.name.clone(),
            patterns,
            truncated: ex.truncated,
        });
    }
    loads
}

/// Computes address patterns for every static load in `program`.
///
/// # Example
///
/// See the [crate-level example](crate).
#[must_use]
pub fn analyze_program(program: &Program, config: &AnalysisConfig) -> ProgramAnalysis {
    let mut loads = Vec::new();
    for func in program.symbols.funcs() {
        if func.start >= func.end {
            continue;
        }
        let cfg = Cfg::build(program, func);
        let rd = ReachingDefs::build(program, func, &cfg);
        loads.extend(analyze_function(program, func, &rd, config));
    }
    loads.sort_by_key(|l| l.index);
    ProgramAnalysis { loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;
    use dl_mips::reg::BaseReg;

    fn analyze(src: &str) -> ProgramAnalysis {
        analyze_program(&parse_asm(src).unwrap(), &AnalysisConfig::default())
    }

    #[test]
    fn local_scalar_is_sp_plus_offset() {
        let a = analyze("main:\n\tlw $t0, 16($sp)\n\tjr $ra\n");
        assert_eq!(
            a.loads[0].patterns,
            vec![Ap::add(Ap::Base(BaseReg::Sp), Ap::Const(16))]
        );
        assert_eq!(a.loads[0].max_deref_nesting(), 0);
    }

    #[test]
    fn global_is_gp_relative() {
        let a = analyze("main:\n\tlw $t0, -4($gp)\n\tjr $ra\n");
        assert_eq!(a.loads[0].patterns[0].to_string(), "gp+-4");
        assert_eq!(a.loads[0].patterns[0].count_base(BaseReg::Gp), 1);
    }

    #[test]
    fn pointer_dereference_chain() {
        // p loaded from stack, then *p, then p->next->next shape.
        let a = analyze(
            "main:\n\
             \tlw $t0, 16($sp)\n\
             \tlw $t1, 8($t0)\n\
             \tlw $t2, 8($t1)\n\
             \tjr $ra\n",
        );
        assert_eq!(a.loads[1].patterns[0].to_string(), "(sp+16)+8");
        assert_eq!(a.loads[1].max_deref_nesting(), 1);
        assert_eq!(a.loads[2].patterns[0].to_string(), "((sp+16)+8)+8");
        assert_eq!(a.loads[2].max_deref_nesting(), 2);
    }

    #[test]
    fn array_indexing_unoptimized_shape() {
        // A and i on the stack: addr = (sp+4) + ((sp+8) << 2).
        let a = analyze(
            "main:\n\
             \tlw $t0, 4($sp)\n\
             \tlw $t1, 8($sp)\n\
             \tsll $t2, $t1, 2\n\
             \taddu $t3, $t0, $t2\n\
             \tlw $t4, 0($t3)\n\
             \tjr $ra\n",
        );
        let p = &a.loads[2].patterns[0];
        assert_eq!(p.to_string(), "(sp+4)+[(sp+8)<<2]");
        assert!(p.has_mul_or_shift());
        assert_eq!(p.count_base(BaseReg::Sp), 2);
        assert_eq!(p.deref_nesting(), 1);
    }

    #[test]
    fn recurrence_detected_in_loop() {
        // Classic strided loop: t0 += 4 each iteration, loaded from.
        let a = analyze(
            "main:\n\
             \tmove $t0, $a0\n\
             .Lloop:\n\
             \tlw $t1, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t1, $zero, .Lloop\n\
             \tjr $ra\n",
        );
        let load = &a.loads[0];
        assert!(load.any_recurrence());
        // Patterns include both the initial (param) and the recurrent one.
        let recurrent = load
            .patterns
            .iter()
            .find(|p| p.has_recurrence())
            .expect("has recurrent pattern");
        assert_eq!(recurrent.stride(), Some(4));
        assert!(load
            .patterns
            .iter()
            .any(|p| p.count_base(BaseReg::Param) == 1));
    }

    #[test]
    fn pointer_chase_recurrence_has_no_stride() {
        // t0 = *(t0) walk.
        let a = analyze(
            "main:\n\
             \tmove $t0, $a0\n\
             .Lloop:\n\
             \tlw $t0, 0($t0)\n\
             \tbne $t0, $zero, .Lloop\n\
             \tjr $ra\n",
        );
        let load = &a.loads[0];
        assert!(load.any_recurrence());
        let rec = load.patterns.iter().find(|p| p.has_recurrence()).unwrap();
        assert_eq!(rec.stride(), None);
        assert!(rec.deref_nesting() >= 1 || *rec == Ap::Rec);
    }

    #[test]
    fn multiple_control_paths_give_multiple_patterns() {
        let a = analyze(
            "main:\n\
             \tbeq $a0, $zero, .Lelse\n\
             \taddiu $t0, $sp, 8\n\
             \tj .Ljoin\n\
             .Lelse:\n\
             \taddiu $t0, $gp, 12\n\
             .Ljoin:\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        let pats: Vec<String> = a.loads[0].patterns.iter().map(Ap::to_string).collect();
        assert_eq!(pats.len(), 2);
        assert!(pats.contains(&"sp+8".to_owned()));
        assert!(pats.contains(&"gp+12".to_owned()));
    }

    #[test]
    fn malloc_result_is_ret_base() {
        let a = analyze(
            "main:\n\
             \tli $a0, 64\n\
             \tli $v0, 9\n\
             \tsyscall\n\
             \tlw $t0, 8($v0)\n\
             \tjr $ra\n",
        );
        assert_eq!(a.loads[0].patterns[0].to_string(), "ret+8");
    }

    #[test]
    fn call_clobbered_base_is_unknown() {
        let a = analyze(
            "main:\n\
             \taddiu $t0, $sp, 8\n\
             \tjal main\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        assert_eq!(a.loads[0].patterns, vec![Ap::Unknown]);
    }

    #[test]
    fn lui_ori_constant_synthesis_folds() {
        let a = analyze(
            "main:\n\
             \tlui $t0, 0x1000\n\
             \tori $t0, $t0, 0x34\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        assert_eq!(a.loads[0].patterns[0], Ap::Const(0x1000_0034));
    }

    #[test]
    fn load_at_lookup() {
        let a = analyze("main:\n\tnop\n\tlw $t0, 0($sp)\n\tjr $ra\n");
        assert!(a.load_at(1).is_some());
        assert!(a.load_at(0).is_none());
    }

    #[test]
    fn depth_cap_truncates() {
        // A chain of 20 dependent loads exceeds max_depth=16.
        let mut src = String::from("main:\n\tlw $t0, 0($sp)\n");
        for _ in 0..20 {
            src.push_str("\tlw $t0, 0($t0)\n");
        }
        src.push_str("\tjr $ra\n");
        let a = analyze_program(
            &parse_asm(&src).unwrap(),
            &AnalysisConfig {
                max_depth: 6,
                ..AnalysisConfig::default()
            },
        );
        let last = a.loads.last().unwrap();
        assert!(last.truncated);
    }
}
