//! Dominator computation over a function CFG (iterative dataflow
//! formulation), used by natural-loop detection.

use crate::cfg::Cfg;

/// Immediate-dominator tree of a [`Cfg`], with block 0 as the root.
///
/// # Example
///
/// ```
/// use dl_mips::parse::parse_asm;
/// use dl_analysis::{Cfg, dom::Dominators};
///
/// let p = parse_asm(
///     "main:\n\
///      \tbeq $a0, $zero, .Le\n\
///      \tnop\n\
///      \tj .Lj\n\
///      .Le:\n\
///      \tnop\n\
///      .Lj:\n\
///      \tjr $ra\n",
/// ).unwrap();
/// let cfg = Cfg::build(&p, p.symbols.func("main").unwrap());
/// let dom = Dominators::build(&cfg);
/// // The join block is dominated by the entry, not by either arm.
/// let join = cfg.blocks().len() - 1;
/// assert_eq!(dom.idom(join), Some(0));
/// assert!(dom.dominates(0, join));
/// ```
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of block `b` (`None` for the
    /// entry and for unreachable blocks).
    idom: Vec<Option<usize>>,
}

impl Dominators {
    /// Computes dominators with the classic iterative algorithm
    /// (Cooper-Harvey-Kennedy style, on reverse-post-order).
    #[must_use]
    pub fn build(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks().len();
        // Reverse post-order over the CFG from the entry.
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        fn dfs(cfg: &Cfg, b: usize, visited: &mut [bool], out: &mut Vec<usize>) {
            visited[b] = true;
            for &s in &cfg.blocks()[b].succs {
                if !visited[s] {
                    dfs(cfg, s, visited, out);
                }
            }
            out.push(b);
        }
        dfs(cfg, 0, &mut visited, &mut order);
        order.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_index[b] = i;
        }

        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[0] = Some(0);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &cfg.blocks()[b].preds {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // Normalize: entry's idom is conventionally itself internally;
        // expose None for it.
        let mut out = idom;
        out[0] = None;
        Dominators { idom: out }
    }

    /// The immediate dominator of `block` (`None` for the entry or an
    /// unreachable block).
    #[must_use]
    pub fn idom(&self, block: usize) -> Option<usize> {
        self.idom.get(block).copied().flatten()
    }

    /// `true` if `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// `true` if the block was reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, block: usize) -> bool {
        block == 0 || self.idom(block).is_some()
    }
}

fn intersect(idom: &[Option<usize>], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("processed block has idom");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;
    use dl_mips::program::Program;

    fn build(src: &str) -> (Program, Cfg, Dominators) {
        let p = parse_asm(src).unwrap();
        let f = p.symbols.func("main").unwrap().clone();
        let cfg = Cfg::build(&p, &f);
        let dom = Dominators::build(&cfg);
        (p, cfg, dom)
    }

    #[test]
    fn straight_line_chain() {
        let (_, cfg, dom) = build("main:\n\tjal main\n\tjal main\n\tjr $ra\n");
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(dom.idom(0), None);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert!(dom.dominates(0, 2));
        assert!(!dom.dominates(2, 1));
    }

    #[test]
    fn diamond_joins_at_entry() {
        let (_, cfg, dom) = build(
            "main:\n\
             \tbeq $a0, $zero, .Le\n\
             \tnop\n\
             \tj .Lj\n\
             .Le:\n\
             \tnop\n\
             .Lj:\n\
             \tjr $ra\n",
        );
        let join = cfg.blocks().len() - 1;
        assert_eq!(dom.idom(join), Some(0));
        // Neither arm dominates the join.
        assert!(!dom.dominates(1, join));
        assert!(!dom.dominates(2, join));
        assert!(dom.dominates(0, join));
    }

    #[test]
    fn loop_header_dominates_body() {
        let (_, cfg, dom) = build(
            "main:\n\
             \tli $t0, 4\n\
             .Lh:\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjr $ra\n",
        );
        // Blocks: [li], [header+branch], [exit].
        assert_eq!(cfg.blocks().len(), 3);
        assert!(dom.dominates(1, 1));
        assert_eq!(dom.idom(2), Some(1));
    }

    #[test]
    fn nested_loops_form_idom_chain() {
        let (_, cfg, dom) = build(
            "main:\n\
             \tli $t0, 4\n\
             .Louter:\n\
             \tli $t1, 6\n\
             .Linner:\n\
             \taddiu $t1, $t1, -1\n\
             \tbgtz $t1, .Linner\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Louter\n\
             \tjr $ra\n",
        );
        // Blocks: entry, outer header, inner header+latch, outer
        // latch, exit — a straight idom chain.
        assert_eq!(cfg.blocks().len(), 5);
        for b in 1..5 {
            assert_eq!(dom.idom(b), Some(b - 1));
        }
        // Outer header dominates everything below it, including the
        // inner loop; the inner header does not dominate the entry.
        assert!(dom.dominates(1, 2));
        assert!(dom.dominates(1, 3));
        assert!(!dom.dominates(2, 1));
        assert!(dom.dominates(2, 3));
    }

    #[test]
    fn irreducible_cycle_joins_at_entry() {
        // A two-entry cycle: the entry branches into both .L1 and
        // .L2, which jump to each other. Neither side dominates the
        // other; both are immediately dominated by the entry.
        let (p, cfg, dom) = build(
            "main:\n\
             \tbeq $a0, $zero, .L2\n\
             .L1:\n\
             \tnop\n\
             \tj .L2\n\
             .L2:\n\
             \tbeq $a1, $zero, .L1\n\
             \tjr $ra\n",
        );
        assert_eq!(cfg.blocks().len(), 4);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        assert!(!dom.dominates(1, 2));
        assert!(!dom.dominates(2, 1));
        // The cycle has no dominating header, so back-edge discovery
        // must find no natural loop (and must not loop forever).
        let f = p.symbols.func("main").unwrap();
        assert_eq!(cfg.func_range(), (f.start, f.end));
        let nest = crate::loops::LoopNest::discover(&cfg, &dom);
        assert!(nest.loops().is_empty());
    }

    #[test]
    fn unreachable_block_reports_unreachable() {
        // Code after an unconditional jump, never targeted.
        let (_, cfg, dom) = build(
            "main:\n\
             \tj .Lend\n\
             \tnop\n\
             .Lend:\n\
             \tjr $ra\n",
        );
        assert_eq!(cfg.blocks().len(), 3);
        assert!(!dom.is_reachable(1));
        assert_eq!(dom.idom(1), None);
        assert!(dom.is_reachable(2));
        assert!(!dom.dominates(1, 2));
    }

    #[test]
    fn reflexive_domination() {
        let (_, _, dom) = build("main:\n\tjr $ra\n");
        assert!(dom.dominates(0, 0));
        assert!(dom.is_reachable(0));
    }
}
