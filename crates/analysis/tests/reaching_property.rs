//! Differential property test for reaching definitions: on
//! straight-line code, the dataflow solution must agree with a naive
//! last-writer scan for every register at every instruction.

use dl_analysis::reaching::{DefSite, ReachingDefs};
use dl_analysis::Cfg;
use dl_mips::inst::Inst;
use dl_mips::program::{Program, SymbolTable};
use dl_mips::reg::Reg;
use dl_testkit::{cases, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::from_number(rng.range_i32(0, 32) as u8).expect("in range")
}

fn arb_i16(rng: &mut Rng) -> i16 {
    rng.range_i32(i32::from(i16::MIN), i32::from(i16::MAX) + 1) as i16
}

/// Straight-line instructions with simple def/use structure.
fn arb_inst(rng: &mut Rng) -> Inst {
    match rng.index(6) {
        0 => Inst::Addiu {
            rt: arb_reg(rng),
            rs: arb_reg(rng),
            imm: arb_i16(rng),
        },
        1 => Inst::Addu {
            rd: arb_reg(rng),
            rs: arb_reg(rng),
            rt: arb_reg(rng),
        },
        2 => Inst::Lw {
            rt: arb_reg(rng),
            base: arb_reg(rng),
            off: arb_i16(rng),
        },
        3 => Inst::Sw {
            rt: arb_reg(rng),
            base: arb_reg(rng),
            off: arb_i16(rng),
        },
        4 => Inst::Lui {
            rt: arb_reg(rng),
            imm: rng.range_u32(0, 0x1_0000) as u16,
        },
        _ => Inst::Nop,
    }
}

fn straight_line_program(insts: Vec<Inst>) -> Program {
    let mut all = insts;
    all.push(Inst::Jr { rs: Reg::Ra });
    let n = all.len();
    let mut symbols = SymbolTable::new();
    symbols.add_func("main", 0, n);
    Program {
        insts: all,
        symbols,
        data: Vec::new(),
        entry: 0,
    }
}

/// Naive reference: the definition of `reg` reaching instruction `at`
/// in straight-line code is the closest preceding def.
fn naive_reaching(program: &Program, at: usize, reg: Reg) -> DefSite {
    for idx in (0..at).rev() {
        if program.insts[idx].def() == Some(reg) {
            return DefSite::Inst(idx);
        }
    }
    DefSite::Entry(reg)
}

#[test]
fn straight_line_matches_last_writer() {
    cases(256, 0x4ea1, |rng| {
        let insts = rng.vec_of(0, 40, arb_inst);
        let program = straight_line_program(insts);
        let func = program.symbols.func("main").expect("exists").clone();
        let cfg = Cfg::build(&program, &func);
        let rd = ReachingDefs::build(&program, &func, &cfg);
        for at in 0..program.insts.len() {
            for reg in [Reg::T0, Reg::T1, Reg::S0, Reg::Sp, Reg::A0] {
                if reg == Reg::Zero {
                    continue;
                }
                let got = rd.reaching(at, reg);
                assert_eq!(
                    got.len(),
                    1,
                    "straight-line code has exactly one reaching def (at {at}, {reg:?})"
                );
                assert_eq!(got[0], naive_reaching(&program, at, reg));
            }
        }
    });
}

/// In a diamond, a register defined in both arms has exactly those
/// two defs reaching the join; one defined in neither has its entry
/// def.
#[test]
fn diamond_merges_exactly_the_arm_defs() {
    cases(64, 0x4ea2, |rng| {
        use dl_mips::parse::parse_asm;
        let a = arb_i16(rng);
        let b = arb_i16(rng);
        let src = format!(
            "main:\n\
             \tbeq $a0, $zero, .Le\n\
             \taddiu $t0, $zero, {a}\n\
             \tj .Lj\n\
             .Le:\n\
             \taddiu $t0, $zero, {b}\n\
             .Lj:\n\
             \tjr $ra\n"
        );
        let program = parse_asm(&src).expect("parses");
        let func = program.symbols.func("main").expect("exists").clone();
        let cfg = Cfg::build(&program, &func);
        let rd = ReachingDefs::build(&program, &func, &cfg);
        let join = program.insts.len() - 1;
        let mut defs = rd.reaching(join, Reg::T0);
        defs.sort_by_key(|d| match d {
            DefSite::Inst(i) => *i,
            _ => usize::MAX,
        });
        assert_eq!(defs, vec![DefSite::Inst(1), DefSite::Inst(3)]);
        assert_eq!(rd.reaching(join, Reg::S3), vec![DefSite::Entry(Reg::S3)]);
    });
}
