//! Differential property test for reaching definitions: on
//! straight-line code, the dataflow solution must agree with a naive
//! last-writer scan for every register at every instruction.

use proptest::prelude::*;

use dl_analysis::reaching::{DefSite, ReachingDefs};
use dl_analysis::Cfg;
use dl_mips::inst::Inst;
use dl_mips::program::{Program, SymbolTable};
use dl_mips::reg::Reg;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::from_number(n).expect("in range"))
}

/// Straight-line instructions with simple def/use structure.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, rs, imm)| Inst::Addiu { rt, rs, imm }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, rs, rt)| Inst::Addu { rd, rs, rt }),
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, base, off)| Inst::Lw { rt, base, off }),
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, base, off)| Inst::Sw { rt, base, off }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Inst::Lui { rt, imm }),
        Just(Inst::Nop),
    ]
}

fn straight_line_program(insts: Vec<Inst>) -> Program {
    let mut all = insts;
    all.push(Inst::Jr { rs: Reg::Ra });
    let n = all.len();
    let mut symbols = SymbolTable::new();
    symbols.add_func("main", 0, n);
    Program {
        insts: all,
        symbols,
        data: Vec::new(),
        entry: 0,
    }
}

/// Naive reference: the definition of `reg` reaching instruction `at`
/// in straight-line code is the closest preceding def.
fn naive_reaching(program: &Program, at: usize, reg: Reg) -> DefSite {
    for idx in (0..at).rev() {
        if program.insts[idx].def() == Some(reg) {
            return DefSite::Inst(idx);
        }
    }
    DefSite::Entry(reg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn straight_line_matches_last_writer(insts in prop::collection::vec(arb_inst(), 0..40)) {
        let program = straight_line_program(insts);
        let func = program.symbols.func("main").expect("exists").clone();
        let cfg = Cfg::build(&program, &func);
        let rd = ReachingDefs::build(&program, &func, &cfg);
        for at in 0..program.insts.len() {
            for reg in [Reg::T0, Reg::T1, Reg::S0, Reg::Sp, Reg::A0] {
                if reg == Reg::Zero {
                    continue;
                }
                let got = rd.reaching(at, reg);
                prop_assert_eq!(
                    got.len(), 1,
                    "straight-line code has exactly one reaching def (at {}, {:?})",
                    at, reg
                );
                prop_assert_eq!(got[0], naive_reaching(&program, at, reg));
            }
        }
    }

    /// In a diamond, a register defined in both arms has exactly those
    /// two defs reaching the join; one defined in neither has its entry
    /// def.
    #[test]
    fn diamond_merges_exactly_the_arm_defs(a in any::<i16>(), b in any::<i16>()) {
        use dl_mips::parse::parse_asm;
        let src = format!(
            "main:\n\
             \tbeq $a0, $zero, .Le\n\
             \taddiu $t0, $zero, {a}\n\
             \tj .Lj\n\
             .Le:\n\
             \taddiu $t0, $zero, {b}\n\
             .Lj:\n\
             \tjr $ra\n"
        );
        let program = parse_asm(&src).expect("parses");
        let func = program.symbols.func("main").expect("exists").clone();
        let cfg = Cfg::build(&program, &func);
        let rd = ReachingDefs::build(&program, &func, &cfg);
        let join = program.insts.len() - 1;
        let mut defs = rd.reaching(join, Reg::T0);
        defs.sort_by_key(|d| match d {
            DefSite::Inst(i) => *i,
            _ => usize::MAX,
        });
        prop_assert_eq!(defs, vec![DefSite::Inst(1), DefSite::Inst(3)]);
        prop_assert_eq!(rd.reaching(join, Reg::S3), vec![DefSite::Entry(Reg::S3)]);
    }
}
