//! Property tests over the address-pattern algebra: the structural
//! features the decision criteria read must obey compositional laws.

use dl_analysis::Ap;
use dl_mips::reg::BaseReg;
use dl_testkit::{cases, Rng};

const BASES: [BaseReg; 4] = [BaseReg::Gp, BaseReg::Sp, BaseReg::Param, BaseReg::Ret];

fn arb_leaf(rng: &mut Rng) -> Ap {
    match rng.index(4) {
        0 => Ap::Const(rng.range_i64(-1000, 1000)),
        1 => Ap::Base(*rng.pick(&BASES)),
        2 => Ap::Unknown,
        _ => Ap::Rec,
    }
}

/// A random pattern tree of bounded depth.
fn arb_ap_depth(rng: &mut Rng, depth: usize) -> Ap {
    if depth == 0 || rng.chance(0.3) {
        return arb_leaf(rng);
    }
    match rng.index(5) {
        0 => Ap::Add(
            Box::new(arb_ap_depth(rng, depth - 1)),
            Box::new(arb_ap_depth(rng, depth - 1)),
        ),
        1 => Ap::Sub(
            Box::new(arb_ap_depth(rng, depth - 1)),
            Box::new(arb_ap_depth(rng, depth - 1)),
        ),
        2 => Ap::Mul(
            Box::new(arb_ap_depth(rng, depth - 1)),
            Box::new(arb_ap_depth(rng, depth - 1)),
        ),
        3 => Ap::Shl(
            Box::new(arb_ap_depth(rng, depth - 1)),
            Box::new(arb_ap_depth(rng, depth - 1)),
        ),
        _ => Ap::Deref(Box::new(arb_ap_depth(rng, depth - 1))),
    }
}

fn arb_ap(rng: &mut Rng) -> Ap {
    arb_ap_depth(rng, 4)
}

#[test]
fn base_counts_are_additive_over_binary_ops() {
    cases(512, 0xa91, |rng| {
        let a = arb_ap(rng);
        let b = arb_ap(rng);
        let sum = Ap::Add(Box::new(a.clone()), Box::new(b.clone()));
        for reg in BASES {
            assert_eq!(sum.count_base(reg), a.count_base(reg) + b.count_base(reg));
        }
    });
}

#[test]
fn deref_increments_nesting_by_exactly_one() {
    cases(512, 0xa92, |rng| {
        let a = arb_ap(rng);
        let d = Ap::deref(a.clone());
        assert_eq!(d.deref_nesting(), a.deref_nesting() + 1);
    });
}

#[test]
fn binary_nesting_is_max_of_children() {
    cases(512, 0xa93, |rng| {
        let a = arb_ap(rng);
        let b = arb_ap(rng);
        let m = Ap::Mul(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(m.deref_nesting(), a.deref_nesting().max(b.deref_nesting()));
    });
}

#[test]
fn recurrence_and_unknown_propagate_upward() {
    cases(512, 0xa94, |rng| {
        let a = arb_ap(rng);
        let b = arb_ap(rng);
        let combined = Ap::Sub(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(
            combined.has_recurrence(),
            a.has_recurrence() || b.has_recurrence()
        );
        assert_eq!(combined.has_unknown(), a.has_unknown() || b.has_unknown());
    });
}

#[test]
fn smart_constructors_never_increase_features() {
    cases(512, 0xa95, |rng| {
        let a = arb_ap(rng);
        let b = arb_ap(rng);
        // Folding may simplify but must not invent structure.
        let smart = Ap::add(a.clone(), b.clone());
        let raw = Ap::Add(Box::new(a), Box::new(b));
        assert!(smart.size() <= raw.size());
        assert!(smart.deref_nesting() <= raw.deref_nesting());
        for reg in BASES {
            assert!(smart.count_base(reg) <= raw.count_base(reg));
        }
    });
}

#[test]
fn constant_folding_is_exact() {
    cases(512, 0xa96, |rng| {
        let x = rng.range_i64(-10_000, 10_000);
        let y = rng.range_i64(-10_000, 10_000);
        assert_eq!(Ap::add(Ap::Const(x), Ap::Const(y)), Ap::Const(x + y));
        assert_eq!(Ap::sub(Ap::Const(x), Ap::Const(y)), Ap::Const(x - y));
        assert_eq!(Ap::mul(Ap::Const(x), Ap::Const(y)), Ap::Const(x * y));
    });
}

#[test]
fn stride_requires_recurrence() {
    cases(512, 0xa97, |rng| {
        let a = arb_ap(rng);
        if a.stride().is_some() {
            assert!(a.has_recurrence());
        }
    });
}

#[test]
fn display_never_panics_and_is_nonempty() {
    cases(512, 0xa98, |rng| {
        let a = arb_ap(rng);
        assert!(!a.to_string().is_empty());
    });
}

#[test]
fn size_is_positive_and_bounded_by_construction() {
    cases(512, 0xa99, |rng| {
        let a = arb_ap(rng);
        assert!(a.size() >= 1);
    });
}

#[test]
fn linear_recurrence_stride_is_the_step() {
    cases(512, 0xa9a, |rng| {
        let step = rng.range_i64(1, 512);
        let offset = rng.range_i64(-512, 512);
        let ap = Ap::add(
            Ap::Add(Box::new(Ap::Rec), Box::new(Ap::Const(step))),
            Ap::Const(offset),
        );
        // A net-zero step is not a stride (the address never moves).
        let expected = (step + offset != 0).then_some(step + offset);
        assert_eq!(ap.stride(), expected);
        let scaled = Ap::Shl(
            Box::new(Ap::add(Ap::Rec, Ap::Const(step))),
            Box::new(Ap::Const(2)),
        );
        assert_eq!(scaled.stride(), Some(step << 2));
    });
}
