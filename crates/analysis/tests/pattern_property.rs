//! Property tests over the address-pattern algebra: the structural
//! features the decision criteria read must obey compositional laws.

use proptest::prelude::*;

use dl_analysis::Ap;
use dl_mips::reg::BaseReg;

fn arb_base() -> impl Strategy<Value = BaseReg> {
    prop_oneof![
        Just(BaseReg::Gp),
        Just(BaseReg::Sp),
        Just(BaseReg::Param),
        Just(BaseReg::Ret),
    ]
}

fn arb_ap() -> impl Strategy<Value = Ap> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Ap::Const),
        arb_base().prop_map(Ap::Base),
        Just(Ap::Unknown),
        Just(Ap::Rec),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ap::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ap::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ap::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ap::Shl(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Ap::Deref(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn base_counts_are_additive_over_binary_ops(a in arb_ap(), b in arb_ap()) {
        let sum = Ap::Add(Box::new(a.clone()), Box::new(b.clone()));
        for reg in [BaseReg::Gp, BaseReg::Sp, BaseReg::Param, BaseReg::Ret] {
            prop_assert_eq!(
                sum.count_base(reg),
                a.count_base(reg) + b.count_base(reg)
            );
        }
    }

    #[test]
    fn deref_increments_nesting_by_exactly_one(a in arb_ap()) {
        let d = Ap::deref(a.clone());
        prop_assert_eq!(d.deref_nesting(), a.deref_nesting() + 1);
    }

    #[test]
    fn binary_nesting_is_max_of_children(a in arb_ap(), b in arb_ap()) {
        let m = Ap::Mul(Box::new(a.clone()), Box::new(b.clone()));
        prop_assert_eq!(m.deref_nesting(), a.deref_nesting().max(b.deref_nesting()));
    }

    #[test]
    fn recurrence_and_unknown_propagate_upward(a in arb_ap(), b in arb_ap()) {
        let combined = Ap::Sub(Box::new(a.clone()), Box::new(b.clone()));
        prop_assert_eq!(
            combined.has_recurrence(),
            a.has_recurrence() || b.has_recurrence()
        );
        prop_assert_eq!(
            combined.has_unknown(),
            a.has_unknown() || b.has_unknown()
        );
    }

    #[test]
    fn smart_constructors_never_increase_features(a in arb_ap(), b in arb_ap()) {
        // Folding may simplify but must not invent structure.
        let smart = Ap::add(a.clone(), b.clone());
        let raw = Ap::Add(Box::new(a), Box::new(b));
        prop_assert!(smart.size() <= raw.size());
        prop_assert!(smart.deref_nesting() <= raw.deref_nesting());
        for reg in [BaseReg::Gp, BaseReg::Sp, BaseReg::Param, BaseReg::Ret] {
            prop_assert!(smart.count_base(reg) <= raw.count_base(reg));
        }
    }

    #[test]
    fn constant_folding_is_exact(x in -10_000i64..10_000, y in -10_000i64..10_000) {
        prop_assert_eq!(Ap::add(Ap::Const(x), Ap::Const(y)), Ap::Const(x + y));
        prop_assert_eq!(Ap::sub(Ap::Const(x), Ap::Const(y)), Ap::Const(x - y));
        prop_assert_eq!(Ap::mul(Ap::Const(x), Ap::Const(y)), Ap::Const(x * y));
    }

    #[test]
    fn stride_requires_recurrence(a in arb_ap()) {
        if a.stride().is_some() {
            prop_assert!(a.has_recurrence());
        }
    }

    #[test]
    fn display_never_panics_and_is_nonempty(a in arb_ap()) {
        prop_assert!(!a.to_string().is_empty());
    }

    #[test]
    fn size_is_positive_and_bounded_by_construction(a in arb_ap()) {
        prop_assert!(a.size() >= 1);
    }

    #[test]
    fn linear_recurrence_stride_is_the_step(step in 1i64..512, offset in -512i64..512) {
        let ap = Ap::add(Ap::Add(Box::new(Ap::Rec), Box::new(Ap::Const(step))), Ap::Const(offset));
        // A net-zero step is not a stride (the address never moves).
        let expected = (step + offset != 0).then_some(step + offset);
        prop_assert_eq!(ap.stride(), expected);
        let scaled = Ap::Shl(Box::new(Ap::add(Ap::Rec, Ap::Const(step))), Box::new(Ap::Const(2)));
        prop_assert_eq!(scaled.stride(), Some(step << 2));
    }
}
