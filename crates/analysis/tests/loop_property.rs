//! Property tests for loop discovery and induction-variable
//! classification.
//!
//! 1. On arbitrary random CFGs (including irreducible ones), every
//!    natural loop's header dominates every block of the loop — the
//!    defining invariant of back-edge loop discovery.
//! 2. Strided classification and trip solving are stable under
//!    textual reordering of the loop's basic blocks: chaining the
//!    same blocks with explicit jumps in any order must produce the
//!    same classes.

use dl_analysis::dom::Dominators;
use dl_analysis::indvar::{classify_loads, AddressClass};
use dl_analysis::loops::LoopNest;
use dl_analysis::{analyze_program, AnalysisConfig, Cfg, ProgramLoops};
use dl_mips::parse::parse_asm;
use dl_testkit::{cases, Rng};

/// A random function body: `n` labelled regions with random
/// terminators (fallthrough, jump, conditional branch), ending in a
/// return. Produces arbitrary — possibly irreducible — CFGs.
fn arb_cfg_asm(rng: &mut Rng, n: usize) -> String {
    let mut s = String::from("main:\n");
    for i in 0..n {
        s.push_str(&format!(".L{i}:\n"));
        for _ in 0..rng.index(3) {
            s.push_str("\tnop\n");
        }
        let target = rng.index(n);
        match rng.index(4) {
            0 => {} // fall through
            1 => s.push_str(&format!("\tj .L{target}\n")),
            2 => s.push_str(&format!("\tbeq $a0, $zero, .L{target}\n")),
            _ => s.push_str(&format!("\tbgtz $a1, .L{target}\n")),
        }
    }
    s.push_str("\tjr $ra\n");
    s
}

#[test]
fn loop_headers_dominate_their_blocks() {
    cases(300, 0xD011AB, |rng| {
        let n = 2 + rng.index(7);
        let src = arb_cfg_asm(rng, n);
        let p = parse_asm(&src).expect("generated asm parses");
        let f = p.symbols.func("main").expect("has main").clone();
        let cfg = Cfg::build(&p, &f);
        let dom = Dominators::build(&cfg);
        let nest = LoopNest::discover(&cfg, &dom);
        for l in nest.loops() {
            assert!(l.contains(l.header), "{src}\nheader outside own loop");
            for &b in &l.blocks {
                assert!(
                    dom.dominates(l.header, b),
                    "{src}\nheader {} does not dominate member {b}",
                    l.header
                );
            }
            for &latch in &l.latches {
                assert!(l.contains(latch), "{src}\nlatch outside loop");
                assert!(
                    cfg.blocks()[latch].succs.contains(&l.header),
                    "{src}\nlatch {latch} has no edge to header"
                );
            }
        }
    });
}

/// The loop of `stable_classification_under_block_reordering`, as
/// four logical blocks chained by explicit jumps so their textual
/// order is free.
const ENTRY: &str = "main:\n\tli $t0, 0\n\tsw $t0, 48($sp)\n\tj .Ltest\n";
const BLOCKS: [&str; 4] = [
    ".Ltest:\n\tlw $t2, 48($sp)\n\tslti $t3, $t2, 256\n\tbeq $t3, $zero, .Ldone\n\tj .Lbody\n",
    ".Lbody:\n\tlw $t4, 48($sp)\n\tsll $t5, $t4, 2\n\tlw $t6, 4096($t5)\n\tj .Lincr\n",
    ".Lincr:\n\tlw $t7, 48($sp)\n\taddiu $t7, $t7, 1\n\tsw $t7, 48($sp)\n\tj .Ltest\n",
    ".Ldone:\n\tjr $ra\n",
];

#[test]
fn stable_classification_under_block_reordering() {
    cases(40, 0x57AB1E, |rng| {
        // A random permutation of the four chained blocks.
        let mut order: Vec<usize> = (0..BLOCKS.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.index(i + 1));
        }
        let mut src = String::from(ENTRY);
        for &b in &order {
            src.push_str(BLOCKS[b]);
        }
        let p = parse_asm(&src).expect("permuted asm parses");
        let analysis = analyze_program(&p, &AnalysisConfig::default());
        let loops = ProgramLoops::build(&p);
        let classes = classify_loads(&p, &analysis, &loops);
        // Whatever the textual order: one strided array walk with a
        // solved trip, and the slot reloads are invariant.
        let strided: Vec<_> = classes
            .iter()
            .filter(|c| matches!(c.class, AddressClass::Strided(_)))
            .collect();
        assert_eq!(strided.len(), 1, "{src}\nexpected one strided load");
        assert_eq!(strided[0].class, AddressClass::Strided(4), "{src}");
        assert!(strided[0].trip_exact, "{src}\ntrip not solved");
        assert!((strided[0].trip - 256.0).abs() < 1e-9, "{src}");
        for c in &classes {
            if c.in_loop && !matches!(c.class, AddressClass::Strided(_)) {
                assert_eq!(c.class, AddressClass::Invariant, "{src}\ninst {}", c.index);
            }
        }
    });
}
