//! Component throughput timings: the substrates the reproduction is
//! built on, measured in isolation with plain `Instant` timing.

use std::hint::black_box;

use dl_analysis::extract::{analyze_program, AnalysisConfig};
use dl_bench::{bench, iters_arg};
use dl_core::Heuristic;
use dl_minic::{compile, OptLevel};
use dl_sim::{run, Cache, CacheConfig, RunConfig};

fn cache_model(iters: u64) {
    let accesses: Vec<u32> = (0..10_000u32)
        .map(|i| 0x1000_0000 + (i.wrapping_mul(2_654_435_761) % 262_144))
        .collect();
    for cfg in [CacheConfig::kb(8, 2), CacheConfig::paper_training()] {
        bench(
            &format!("cache/access/{cfg}"),
            iters,
            Some(accesses.len() as u64),
            || {
                let mut cache = Cache::new(cfg);
                for &a in &accesses {
                    black_box(cache.access(a));
                }
                cache
            },
        );
    }
}

fn simulator(iters: u64) {
    // A ~1M-instruction kernel.
    let source = "int a[4096];
        int main() {
            int i; int t; int s;
            s = 0;
            for (t = 0; t < 40; t = t + 1) {
                for (i = 0; i < 4096; i = i + 1) { s = s + a[i]; }
            }
            print(s);
            return 0;
        }";
    let program = compile(source, OptLevel::O0).expect("compiles");
    let config = RunConfig::default();
    let instructions = run(&program, &config).expect("runs").instructions;
    bench(
        "simulator/interpret+cache",
        iters.min(20),
        Some(instructions),
        || run(&program, &config).expect("runs"),
    );
}

fn compiler(iters: u64) {
    let bench_wl = dl_workloads::by_name("126.gcc").expect("exists");
    let source = bench_wl.full_source();
    for opt in [OptLevel::O0, OptLevel::O1] {
        bench(
            &format!("compiler/minic/{opt}"),
            iters,
            Some(source.len() as u64),
            || compile(&source, opt).expect("compiles"),
        );
    }
}

fn analysis(iters: u64) {
    let bench_wl = dl_workloads::by_name("181.mcf").expect("exists");
    let program = bench_wl.compile(OptLevel::O0).expect("compiles");
    bench(
        "analysis/address-patterns/mcf",
        iters,
        Some(program.static_load_count() as u64),
        || analyze_program(&program, &AnalysisConfig::default()),
    );
}

fn heuristic(iters: u64) {
    let bench_wl = dl_workloads::by_name("181.mcf").expect("exists");
    let program = bench_wl.compile(OptLevel::O0).expect("compiles");
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    let config = RunConfig {
        input: bench_wl.input1.clone(),
        ..RunConfig::default()
    };
    let result = run(&program, &config).expect("runs");
    let h = Heuristic::default();
    bench(
        "heuristic/classify/mcf",
        iters,
        Some(analysis.loads.len() as u64),
        || h.classify(&analysis, &result.exec_counts),
    );
}

fn main() {
    let iters = iters_arg(50);
    cache_model(iters);
    simulator(iters);
    compiler(iters);
    analysis(iters);
    heuristic(iters);
}
