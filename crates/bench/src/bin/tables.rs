//! One timing per reproduced paper table (Tables 1-14 plus the
//! extensions and ablations): each measures regenerating that table
//! over a *warmed* pipeline (simulations memoized), i.e. the analysis,
//! classification, and metrics cost. A separate `pipeline/cold`
//! timing measures the full compile-simulate-analyze path for one
//! workload.

use dl_bench::{bench, iters_arg};
use dl_experiments::pipeline::Pipeline;
use dl_experiments::tables::all_tables;
use dl_minic::OptLevel;
use dl_sim::CacheConfig;

fn main() {
    let iters = iters_arg(10);

    let pipeline = Pipeline::new();
    // Warm every configuration the tables use.
    for (_, f) in all_tables() {
        let _ = f(&pipeline);
    }
    for (name, f) in all_tables() {
        bench(&format!("tables/{name}"), iters, None, || f(&pipeline));
    }

    let wl = dl_workloads::by_name("129.compress").expect("exists");
    bench("pipeline/cold/compress", iters, None, || {
        let pipeline = Pipeline::new();
        pipeline.run(&wl, OptLevel::O0, 1, CacheConfig::paper_baseline())
    });
}
