//! # dl-bench
//!
//! Criterion benchmarks for the delinquent-loads reproduction:
//!
//! * `benches/components.rs` — throughput of each substrate component
//!   (cache model, CPU interpreter, MiniC compiler, address-pattern
//!   extraction, heuristic scoring).
//! * `benches/tables.rs` — one benchmark per reproduced paper table
//!   (Tables 1–14 plus the two ablations), measuring regeneration cost
//!   over a warmed simulation cache, plus a cold end-to-end pipeline
//!   benchmark.
//!
//! Run with `cargo bench --workspace`.

#![warn(missing_docs)]
