//! # dl-bench
//!
//! Plain timing binaries for the delinquent-loads reproduction — no
//! external benchmarking framework, so everything builds and runs
//! offline:
//!
//! * `src/bin/components.rs` — throughput of each substrate component
//!   (cache model, CPU interpreter, MiniC compiler, address-pattern
//!   extraction, heuristic scoring).
//! * `src/bin/tables.rs` — one timing per reproduced paper table
//!   (Tables 1–14 plus the extensions and ablations), measuring
//!   regeneration cost over a warmed simulation cache, plus a cold
//!   end-to-end pipeline timing.
//!
//! Run with `cargo run --release -p dl-bench --bin components` (or
//! `--bin tables`). Pass `--iters N` to scale the per-measurement
//! iteration count. The pipeline-level sequential-vs-parallel
//! benchmark lives in `dl-experiments` (`--bin bench`) and writes
//! `BENCH_pipeline.json`.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::Instant;

/// One measured result: wall-clock per iteration plus derived
/// per-element throughput when the element count is known.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Iterations timed.
    pub iters: u64,
    /// Total wall-clock across all iterations.
    pub total_secs: f64,
    /// Work elements per iteration (for throughput), if meaningful.
    pub elements: Option<u64>,
}

impl Measurement {
    /// Seconds per iteration.
    #[must_use]
    pub fn secs_per_iter(&self) -> f64 {
        self.total_secs / self.iters as f64
    }

    /// Elements processed per second, when `elements` is known.
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 * self.iters as f64 / self.total_secs)
    }
}

/// Times `f` for `iters` iterations after one untimed warmup run,
/// prints a one-line summary, and returns the measurement.
pub fn bench<T>(
    name: &str,
    iters: u64,
    elements: Option<u64>,
    mut f: impl FnMut() -> T,
) -> Measurement {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total_secs = start.elapsed().as_secs_f64();
    let m = Measurement {
        name: name.to_owned(),
        iters,
        total_secs,
        elements,
    };
    report(&m);
    m
}

/// Prints a one-line, aligned summary of a measurement.
pub fn report(m: &Measurement) {
    let per = m.secs_per_iter();
    let human = if per >= 1.0 {
        format!("{per:10.3} s/iter")
    } else if per >= 1e-3 {
        format!("{:10.3} ms/iter", per * 1e3)
    } else {
        format!("{:10.3} us/iter", per * 1e6)
    };
    match m.throughput() {
        Some(tp) => println!("{:<44} {human}  {tp:>14.0} elems/s", m.name),
        None => println!("{:<44} {human}", m.name),
    }
}

/// Parses `--iters N` from argv, falling back to `default`.
#[must_use]
pub fn iters_arg(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
