//! Component throughput benchmarks: the substrates the reproduction is
//! built on, measured in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use dl_analysis::extract::{analyze_program, AnalysisConfig};
use dl_core::Heuristic;
use dl_minic::{compile, OptLevel};
use dl_sim::{run, Cache, CacheConfig, RunConfig};

fn cache_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let accesses: Vec<u32> = (0..10_000u32)
        .map(|i| 0x1000_0000 + (i.wrapping_mul(2_654_435_761) % 262_144))
        .collect();
    group.throughput(Throughput::Elements(accesses.len() as u64));
    for cfg in [CacheConfig::kb(8, 2), CacheConfig::paper_training()] {
        group.bench_function(format!("access/{cfg}"), |b| {
            b.iter_batched(
                || Cache::new(cfg),
                |mut cache| {
                    for &a in &accesses {
                        black_box(cache.access(a));
                    }
                    cache
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    // A ~1M-instruction kernel.
    let source = "int a[4096];
        int main() {
            int i; int t; int s;
            s = 0;
            for (t = 0; t < 40; t = t + 1) {
                for (i = 0; i < 4096; i = i + 1) { s = s + a[i]; }
            }
            print(s);
            return 0;
        }";
    let program = compile(source, OptLevel::O0).expect("compiles");
    let config = RunConfig::default();
    let instructions = run(&program, &config).expect("runs").instructions;
    group.throughput(Throughput::Elements(instructions));
    group.sample_size(20);
    group.bench_function("interpret+cache", |b| {
        b.iter(|| black_box(run(&program, &config).expect("runs")));
    });
    group.finish();
}

fn compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    let bench = dl_workloads::by_name("126.gcc").expect("exists");
    let source = bench.full_source();
    group.throughput(Throughput::Bytes(source.len() as u64));
    for opt in [OptLevel::O0, OptLevel::O1] {
        group.bench_function(format!("minic/{opt}"), |b| {
            b.iter(|| black_box(compile(&source, opt).expect("compiles")));
        });
    }
    group.finish();
}

fn analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    let bench = dl_workloads::by_name("181.mcf").expect("exists");
    let program = bench.compile(OptLevel::O0).expect("compiles");
    group.throughput(Throughput::Elements(program.static_load_count() as u64));
    group.bench_function("address-patterns/mcf", |b| {
        b.iter(|| black_box(analyze_program(&program, &AnalysisConfig::default())));
    });
    group.finish();
}

fn heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic");
    let bench = dl_workloads::by_name("181.mcf").expect("exists");
    let program = bench.compile(OptLevel::O0).expect("compiles");
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    let config = RunConfig {
        input: bench.input1.clone(),
        ..RunConfig::default()
    };
    let result = run(&program, &config).expect("runs");
    let h = Heuristic::default();
    group.throughput(Throughput::Elements(analysis.loads.len() as u64));
    group.bench_function("classify/mcf", |b| {
        b.iter(|| black_box(h.classify(&analysis, &result.exec_counts)));
    });
    group.finish();
}

criterion_group!(benches, cache_model, simulator, compiler, analysis, heuristic);
criterion_main!(benches);
