//! One benchmark per reproduced paper table (Tables 1-14 plus the
//! extensions and ablations): each measures regenerating that table
//! over a *warmed* pipeline (simulations memoized), i.e. the analysis,
//! classification, and metrics cost. A separate `pipeline/cold`
//! benchmark measures the full compile-simulate-analyze path for one
//! workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dl_experiments::pipeline::Pipeline;
use dl_experiments::tables::all_tables;
use dl_minic::OptLevel;
use dl_sim::CacheConfig;

fn table_regeneration(c: &mut Criterion) {
    let pipeline = Pipeline::new();
    // Warm every configuration the tables use.
    for (_, f) in all_tables() {
        let _ = f(&pipeline);
    }
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    for (name, f) in all_tables() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(f(&pipeline)));
        });
    }
    group.finish();
}

fn cold_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let bench = dl_workloads::by_name("129.compress").expect("exists");
    group.bench_function("cold/compress", |b| {
        b.iter(|| {
            let pipeline = Pipeline::new();
            black_box(pipeline.run(
                &bench,
                OptLevel::O0,
                1,
                CacheConfig::paper_baseline(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, table_regeneration, cold_pipeline);
criterion_main!(benches);
