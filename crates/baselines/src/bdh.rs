//! A static implementation of the BDH load classification
//! (Burtscher, Diwan & Hauswirth, PLDI 2002), per the paper's §8.5.
//!
//! Each load is classified by a three-letter string:
//!
//! * **Region** — Stack (S), Heap (H), or Global (G): from the load's
//!   base register (`$sp` → stack, `$gp` → global) and value
//!   propagation (addresses derived from `malloc` results or loaded
//!   pointers → heap).
//! * **Kind** — Scalar (S), Array (A), or Field (F): from the address
//!   pattern (index arithmetic → array; constant offset from a loaded
//!   pointer → field) and the symbol table (global symbols larger than
//!   a word → array).
//! * **Type** — Pointer (P) or Non-pointer (N): a load whose result is
//!   subsequently used as (part of) another memory address is assumed
//!   to load a pointer.
//!
//! Loads in the classes **GAN, HSN, HFN, HAN, HFP, HAP** are reported
//! as possibly delinquent, as the BDH authors suggest.

use dl_analysis::extract::{LoadInfo, ProgramAnalysis};
use dl_analysis::pattern::Ap;
use dl_mips::inst::Inst;
use dl_mips::layout::GP_VALUE;
use dl_mips::program::Program;
use dl_mips::reg::{BaseReg, Reg};

/// The memory region a load is statically judged to access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Stack (S).
    Stack,
    /// Heap (H).
    Heap,
    /// Global/static data (G).
    Global,
}

/// The reference kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Scalar (S).
    Scalar,
    /// Array element (A).
    Array,
    /// Structure field (F).
    Field,
}

/// A full BDH class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BdhClass {
    /// Memory region accessed.
    pub region: Region,
    /// Reference kind.
    pub kind: Kind,
    /// `true` when the loaded value is a pointer.
    pub pointer: bool,
}

impl BdhClass {
    /// The three-letter class string (e.g. `"HFP"`).
    #[must_use]
    pub fn code(&self) -> String {
        let r = match self.region {
            Region::Stack => 'S',
            Region::Heap => 'H',
            Region::Global => 'G',
        };
        let k = match self.kind {
            Kind::Scalar => 'S',
            Kind::Array => 'A',
            Kind::Field => 'F',
        };
        let t = if self.pointer { 'P' } else { 'N' };
        format!("{r}{k}{t}")
    }

    /// Whether this class is in the BDH delinquent union
    /// (GAN, HSN, HFN, HAN, HFP, HAP).
    #[must_use]
    pub fn is_delinquent(&self) -> bool {
        matches!(
            self.code().as_str(),
            "GAN" | "HSN" | "HFN" | "HAN" | "HFP" | "HAP"
        )
    }
}

impl std::fmt::Display for BdhClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.code())
    }
}

/// How far the pointer-use scan looks past a load before giving up.
const POINTER_SCAN_WINDOW: usize = 64;

/// Value propagation for the Type dimension: does the value loaded at
/// `index` flow (through copies and address arithmetic) into the base
/// register of a later memory access before being overwritten?
fn loads_pointer(program: &Program, index: usize) -> bool {
    let Some((rt, _, _, _)) = program.insts[index].as_load() else {
        return false;
    };
    let func_end = program
        .symbols
        .func_at(index)
        .map_or(program.insts.len(), |f| f.end);
    let mut tainted = 1u32 << rt as u8;
    let limit = func_end.min(index + 1 + POINTER_SCAN_WINDOW);
    for idx in index + 1..limit {
        let inst = program.insts[idx];
        let is_tainted = |r: Reg| tainted & (1 << r as u8) != 0;
        // A tainted register used as the base of a memory access means
        // the original load produced (part of) an address.
        if let Some((_, base, _, _)) = inst.as_load() {
            if is_tainted(base) {
                return true;
            }
        }
        if let Some((_, base, _, _)) = inst.as_store() {
            if is_tainted(base) {
                return true;
            }
        }
        // Address arithmetic propagates taint.
        let propagates = match inst {
            Inst::Addu { rs, rt: r2, .. } | Inst::Subu { rs, rt: r2, .. } => {
                is_tainted(rs) || is_tainted(r2)
            }
            Inst::Addiu { rs, .. } => is_tainted(rs),
            _ => false,
        };
        if let Some(def) = inst.def() {
            if propagates {
                tainted |= 1 << def as u8;
            } else {
                tainted &= !(1 << def as u8);
            }
        }
        if inst.is_call() {
            // Caller-saved taint dies at calls.
            for r in [
                Reg::At,
                Reg::V0,
                Reg::V1,
                Reg::A0,
                Reg::A1,
                Reg::A2,
                Reg::A3,
                Reg::T0,
                Reg::T1,
                Reg::T2,
                Reg::T3,
                Reg::T4,
                Reg::T5,
                Reg::T6,
                Reg::T7,
                Reg::T8,
                Reg::T9,
            ] {
                tainted &= !(1 << r as u8);
            }
        }
        if tainted == 0 {
            return false;
        }
    }
    false
}

fn region_of(program: &Program, load: &LoadInfo) -> Region {
    let (_, base, _, _) = program.insts[load.index]
        .as_load()
        .expect("LoadInfo indexes a load");
    match base {
        Reg::Sp | Reg::Fp => return Region::Stack,
        Reg::Gp => return Region::Global,
        _ => {}
    }
    // Value propagation through the patterns: malloc results and
    // loaded pointers are heap; otherwise fall back on the pattern's
    // root base register.
    let any = |f: &dyn Fn(&Ap) -> bool| load.patterns.iter().any(f);
    if any(&|p| p.count_base(BaseReg::Ret) > 0) || any(&|p| p.deref_nesting() >= 1) {
        Region::Heap
    } else if any(&|p| p.count_base(BaseReg::Param) > 0) {
        // Pointer parameters: the paper notes these are ambiguous for a
        // static classifier; heap is the common case in its benchmarks.
        Region::Heap
    } else if any(&|p| p.count_base(BaseReg::Sp) > 0) {
        Region::Stack
    } else {
        Region::Global
    }
}

fn kind_of(program: &Program, load: &LoadInfo) -> Kind {
    let indexed = load
        .patterns
        .iter()
        .any(|p| p.has_mul_or_shift() || p.stride().is_some());
    if indexed {
        return Kind::Array;
    }
    if load.patterns.iter().any(|p| p.deref_nesting() >= 1) {
        return Kind::Field;
    }
    // Direct gp/sp-relative access: consult the symbol table — a
    // symbol wider than one word is an array.
    let (_, base, off, _) = program.insts[load.index]
        .as_load()
        .expect("LoadInfo indexes a load");
    if base == Reg::Gp {
        let addr = GP_VALUE.wrapping_add(off as i32 as u32);
        if let Some(sym) = program.symbols.global_at(addr) {
            if sym.size > 4 {
                return Kind::Array;
            }
        }
    }
    Kind::Scalar
}

/// Classifies every load of a program under the static BDH scheme.
///
/// Returns `(instruction index, class)` pairs in program order.
#[must_use]
pub fn bdh_classify(program: &Program, analysis: &ProgramAnalysis) -> Vec<(usize, BdhClass)> {
    analysis
        .loads
        .iter()
        .map(|l| {
            (
                l.index,
                BdhClass {
                    region: region_of(program, l),
                    kind: kind_of(program, l),
                    pointer: loads_pointer(program, l.index),
                },
            )
        })
        .collect()
}

/// The BDH possibly-delinquent set: loads in GAN ∪ HSN ∪ HFN ∪ HAN ∪
/// HFP ∪ HAP.
///
/// # Example
///
/// ```
/// use dl_mips::parse::parse_asm;
/// use dl_analysis::extract::{analyze_program, AnalysisConfig};
/// use dl_baselines::bdh_delinquent_set;
///
/// // A heap pointer chase: flagged by BDH (class HFP / HFN).
/// let p = parse_asm(
///     "main:\n\
///      \tli $a0, 64\n\
///      \tli $v0, 9\n\
///      \tsyscall\n\
///      \tlw $t0, 0($v0)\n\
///      \tlw $t1, 4($t0)\n\
///      \tjr $ra\n",
/// ).unwrap();
/// let a = analyze_program(&p, &AnalysisConfig::default());
/// let set = bdh_delinquent_set(&p, &a);
/// assert!(set.contains(&4));
/// ```
#[must_use]
pub fn bdh_delinquent_set(program: &Program, analysis: &ProgramAnalysis) -> Vec<usize> {
    bdh_classify(program, analysis)
        .into_iter()
        .filter(|(_, c)| c.is_delinquent())
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_analysis::extract::{analyze_program, AnalysisConfig};
    use dl_mips::parse::parse_asm;

    fn classify(src: &str) -> (Program, Vec<(usize, BdhClass)>) {
        let p = parse_asm(src).unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let c = bdh_classify(&p, &a);
        (p, c)
    }

    #[test]
    fn stack_scalar_nonpointer() {
        let (_, c) = classify("main:\n\tlw $t0, 8($sp)\n\tjr $ra\n");
        assert_eq!(c[0].1.code(), "SSN");
        assert!(!c[0].1.is_delinquent());
    }

    #[test]
    fn stack_scalar_pointer_detected() {
        // The loaded value is immediately used as a base address.
        let (_, c) = classify(
            "main:\n\
             \tlw $t0, 8($sp)\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        assert_eq!(c[0].1.code(), "SSP");
        // The dependent load is a heap field access.
        assert_eq!(c[1].1.region, Region::Heap);
        assert_eq!(c[1].1.kind, Kind::Field);
    }

    #[test]
    fn taint_propagates_through_address_arithmetic() {
        let (_, c) = classify(
            "main:\n\
             \tlw $t0, 8($sp)\n\
             \taddiu $t2, $t0, 16\n\
             \tlw $t1, 0($t2)\n\
             \tjr $ra\n",
        );
        assert!(c[0].1.pointer);
    }

    #[test]
    fn taint_dies_on_redefinition() {
        let (_, c) = classify(
            "main:\n\
             \tlw $t0, 8($sp)\n\
             \tli $t0, 0\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        );
        assert!(!c[0].1.pointer);
    }

    #[test]
    fn global_word_scalar_vs_array() {
        let (_, c) = classify(
            "\t.data\n\
             counter:\t.word 0\n\
             table:\t.space 400\n\
             \t.text\n\
             main:\n\
             \tlw $t0, -32768($gp)\n\
             \tlw $t1, -32764($gp)\n\
             \tjr $ra\n",
        );
        // counter is 4 bytes → scalar; table is 400 bytes → array.
        assert_eq!(c[0].1.code(), "GSN");
        assert_eq!(c[1].1.code(), "GAN");
        assert!(!c[0].1.is_delinquent());
        assert!(c[1].1.is_delinquent());
    }

    #[test]
    fn heap_array_from_malloc_with_index() {
        let (_, c) = classify(
            "main:\n\
             \tli $a0, 400\n\
             \tli $v0, 9\n\
             \tsyscall\n\
             \tmove $s0, $v0\n\
             \tli $t0, 0\n\
             .Lloop:\n\
             \tsll $t1, $t0, 2\n\
             \taddu $t2, $s0, $t1\n\
             \tlw $t3, 0($t2)\n\
             \taddiu $t0, $t0, 1\n\
             \tslti $t4, $t0, 100\n\
             \tbne $t4, $zero, .Lloop\n\
             \tjr $ra\n",
        );
        let (_, class) = c[0];
        assert_eq!(class.region, Region::Heap);
        assert_eq!(class.kind, Kind::Array);
        assert!(class.is_delinquent()); // HAN
    }

    #[test]
    fn delinquent_union_is_the_published_six() {
        let mk = |region, kind, pointer| BdhClass {
            region,
            kind,
            pointer,
        };
        let delinquent = [
            mk(Region::Global, Kind::Array, false),
            mk(Region::Heap, Kind::Scalar, false),
            mk(Region::Heap, Kind::Field, false),
            mk(Region::Heap, Kind::Array, false),
            mk(Region::Heap, Kind::Field, true),
            mk(Region::Heap, Kind::Array, true),
        ];
        for c in delinquent {
            assert!(c.is_delinquent(), "{c} should be delinquent");
        }
        let benign = [
            mk(Region::Stack, Kind::Scalar, false),
            mk(Region::Stack, Kind::Array, true),
            mk(Region::Global, Kind::Scalar, false),
            mk(Region::Global, Kind::Array, true),
            mk(Region::Heap, Kind::Scalar, true), // HSP not in the union
        ];
        for c in benign {
            assert!(!c.is_delinquent(), "{c} should not be delinquent");
        }
    }

    #[test]
    fn set_extraction() {
        let p = parse_asm(
            "main:\n\
             \tlw $t0, 8($sp)\n\
             \tlw $t1, 0($t0)\n\
             \tjr $ra\n",
        )
        .unwrap();
        let a = analyze_program(&p, &AnalysisConfig::default());
        let set = bdh_delinquent_set(&p, &a);
        assert_eq!(set, vec![1]); // heap field access
    }
}
