//! [`Predictor`] implementations for the baseline methods, so OKN,
//! BDH, and the reuse estimator slot into any driver that speaks the
//! `dl-core` trait — next to the paper's heuristic and the hybrids.

use dl_analysis::ctx::AnalysisCtx;
use dl_analysis::reuse::{self, CacheGeometry};
use dl_core::{DelinquencySet, Predictor};

/// Ozawa, Kimura & Nishizaki's heuristics as a [`Predictor`]: flags
/// loads with a pointer dereference or a strided reference
/// ([`crate::okn`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Okn;

impl Predictor for Okn {
    fn name(&self) -> &'static str {
        "okn"
    }

    fn predict(&self, ctx: &AnalysisCtx) -> DelinquencySet {
        crate::okn::okn_delinquent_set(ctx.analysis())
    }
}

/// Burtscher, Diwan & Hauswirth's static load classification as a
/// [`Predictor`]: reports the GAN/HSN/HFN/HAN/HFP/HAP classes
/// ([`crate::bdh`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bdh;

impl Predictor for Bdh {
    fn name(&self) -> &'static str {
        "bdh"
    }

    fn predict(&self, ctx: &AnalysisCtx) -> DelinquencySet {
        crate::bdh::bdh_delinquent_set(ctx.program(), ctx.analysis())
    }
}

/// The static reuse-distance estimator as a [`Predictor`]: flags
/// loads whose predicted miss ratio against [`Self::geometry`] reaches
/// [`Self::threshold`]. Uses the ctx's cached load classification, so
/// several geometries share one classification.
///
/// The geometry names capacity/line/ways only — the estimate prices
/// LRU-like retention and no L2 or prefetcher, so under `dl-sim`'s
/// non-default memory systems its flagged set is unchanged while the
/// measured misses shift (see `extension-memmatrix`).
#[derive(Debug, Clone, Copy)]
pub struct ReusePredictor {
    /// The cache the miss ratios are predicted against.
    pub geometry: CacheGeometry,
    /// Miss-ratio threshold above which a load is flagged.
    pub threshold: f64,
}

impl ReusePredictor {
    /// A reuse predictor over `geometry` with the default threshold
    /// ([`reuse::REUSE_DELTA`]).
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        ReusePredictor {
            geometry,
            threshold: reuse::REUSE_DELTA,
        }
    }
}

impl Predictor for ReusePredictor {
    fn name(&self) -> &'static str {
        "reuse"
    }

    fn predict(&self, ctx: &AnalysisCtx) -> DelinquencySet {
        reuse::delinquent_set(&ctx.reuse_predictions(&self.geometry), self.threshold)
    }
}

/// The static reuse-*profile* estimator as a [`Predictor`]: prices
/// each load's cached reuse-distance histogram
/// (`dl-analysis::profile`, interprocedural) against
/// [`Self::geometry`] and flags those whose miss ratio reaches
/// [`Self::threshold`]. The histogram is geometry-free, so a sweep of
/// geometries shares one analysis.
#[derive(Debug, Clone, Copy)]
pub struct ProfilePredictor {
    /// The cache the histograms are priced against.
    pub geometry: CacheGeometry,
    /// Miss-ratio threshold above which a load is flagged.
    pub threshold: f64,
}

impl ProfilePredictor {
    /// A profile predictor over `geometry` with the default threshold
    /// ([`reuse::REUSE_DELTA`], shared with [`ReusePredictor`]).
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        ProfilePredictor {
            geometry,
            threshold: reuse::REUSE_DELTA,
        }
    }
}

impl Predictor for ProfilePredictor {
    fn name(&self) -> &'static str {
        "profile"
    }

    fn predict(&self, ctx: &AnalysisCtx) -> DelinquencySet {
        ctx.reuse_profiles()
            .delinquent_set(&self.geometry, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn ctx() -> AnalysisCtx {
        AnalysisCtx::new(
            parse_asm(
                "main:\n\
                 \tlw $t3, 4($sp)\n\
                 \tli $t0, 0\n\
                 \tli $t1, 16384\n\
                 .Lh:\n\
                 \tlw $t2, 0($t0)\n\
                 \taddiu $t0, $t0, 4\n\
                 \tbne $t0, $t1, .Lh\n\
                 \tjr $ra\n",
            )
            .unwrap(),
        )
    }

    #[test]
    fn predictors_match_their_direct_calls() {
        let ctx = ctx();
        assert_eq!(
            Okn.predict(&ctx),
            crate::okn::okn_delinquent_set(ctx.analysis())
        );
        assert_eq!(
            Bdh.predict(&ctx),
            crate::bdh::bdh_delinquent_set(ctx.program(), ctx.analysis())
        );
        let geometry = CacheGeometry::new(8 * 1024, 32, 4);
        let r = ReusePredictor::new(geometry);
        assert_eq!(
            r.predict(&ctx),
            crate::reuse::reuse_delinquent_set(
                ctx.program(),
                ctx.analysis(),
                &geometry,
                reuse::REUSE_DELTA
            )
        );
        assert_eq!(r.predict(&ctx), vec![3]);
    }

    #[test]
    fn profile_predictor_prices_cached_histograms() {
        let ctx = ctx();
        let g8 = CacheGeometry::new(8 * 1024, 32, 4);
        let p = ProfilePredictor::new(g8);
        assert_eq!(
            p.predict(&ctx),
            ctx.reuse_profiles().delinquent_set(&g8, reuse::REUSE_DELTA)
        );
        // The 16 KiB single-pass walk streams: every new line is a
        // cold miss at any geometry, so the load is flagged.
        assert_eq!(p.predict(&ctx), vec![3]);
        // A geometry sweep reuses the one cached histogram pass.
        for kb in [16, 64] {
            let _ = ProfilePredictor::new(CacheGeometry::new(kb * 1024, 32, 4)).predict(&ctx);
        }
        assert_eq!(ctx.stats().profile.misses, 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Okn.name(), "okn");
        assert_eq!(Bdh.name(), "bdh");
        let r = ReusePredictor::new(CacheGeometry::new(8 * 1024, 32, 4));
        assert_eq!(r.name(), "reuse");
        let p = ProfilePredictor::new(CacheGeometry::new(8 * 1024, 32, 4));
        assert_eq!(p.name(), "profile");
    }
}
