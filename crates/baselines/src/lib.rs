//! # dl-baselines
//!
//! The two comparison methods the paper evaluates against (§8.5):
//!
//! * [`okn`] — Ozawa, Kimura & Nishizaki's cache-miss heuristics
//!   (MICRO-28, 1995): a load is possibly delinquent if it involves a
//!   pointer dereference or a strided reference.
//! * [`bdh`] — a *static* implementation of Burtscher, Diwan &
//!   Hauswirth's load classification (PLDI 2002): loads are classified
//!   by memory region (Stack/Heap/Global), reference kind
//!   (Scalar/Array/Field), and type (Pointer/Non-pointer); the classes
//!   GAN, HSN, HFN, HAN, HFP and HAP are reported delinquent.
//!
//! Both achieve coverage comparable to the paper's heuristic but flag
//! ~50% of all static loads (π), which is the contrast the paper draws.
//!
//! A third, in-house comparison point goes beyond the paper:
//!
//! * [`reuse`] — the static reuse-distance estimator from
//!   `dl-analysis`, wrapped in the same `*_delinquent_set` shape so
//!   the tables can score heuristic vs. reuse vs. OKN/BDH uniformly.

#![warn(missing_docs)]

pub mod bdh;
pub mod okn;
pub mod predictors;
pub mod reuse;

pub use bdh::{bdh_classify, bdh_delinquent_set, BdhClass, Kind, Region};
pub use okn::{okn_classify, okn_delinquent_set, OknClass};
pub use predictors::{Bdh, Okn, ProfilePredictor, ReusePredictor};
pub use reuse::{reuse_delinquent_set, reuse_predictions};
