//! The OKN method (Ozawa, Kimura & Nishizaki, MICRO-28 1995).
//!
//! Three simple classes — pointer-dereferencing loads, strided loads,
//! and everything else — with the first two reported as possibly
//! delinquent. The paper reports this reaches ~92% coverage but flags
//! 30–60% of all static loads.

use dl_analysis::extract::{LoadInfo, ProgramAnalysis};
use dl_analysis::pattern::Ap;

/// The OKN classification of one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OknClass {
    /// The address computation dereferences memory (pointer use).
    PointerDeref,
    /// The address advances by a constant stride per loop iteration.
    Strided,
    /// Neither.
    Other,
}

impl OknClass {
    /// Whether the OKN method flags this class as possibly delinquent.
    #[must_use]
    pub fn is_delinquent(self) -> bool {
        !matches!(self, OknClass::Other)
    }
}

impl std::fmt::Display for OknClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OknClass::PointerDeref => "pointer",
            OknClass::Strided => "strided",
            OknClass::Other => "other",
        })
    }
}

/// Classifies one load: pointer dereference wins over strided when
/// both apply (the pointer class is the stronger signal in the OKN
/// scheme).
#[must_use]
pub fn okn_classify(load: &LoadInfo) -> OknClass {
    if load.patterns.iter().any(|p| p.deref_nesting() >= 1) {
        OknClass::PointerDeref
    } else if load.patterns.iter().any(|p| p.stride().is_some()) {
        OknClass::Strided
    } else {
        OknClass::Other
    }
}

/// The OKN possibly-delinquent set: indices of loads classified as
/// pointer-dereferencing or strided, in program order.
///
/// # Example
///
/// ```
/// use dl_mips::parse::parse_asm;
/// use dl_analysis::extract::{analyze_program, AnalysisConfig};
/// use dl_baselines::okn_delinquent_set;
///
/// let p = parse_asm(
///     "main:\n\
///      \tlw $t0, 16($sp)\n\
///      \tlw $t1, 0($t0)\n\
///      \tjr $ra\n",
/// ).unwrap();
/// let a = analyze_program(&p, &AnalysisConfig::default());
/// // Only the second load dereferences a pointer.
/// assert_eq!(okn_delinquent_set(&a), vec![1]);
/// ```
#[must_use]
pub fn okn_delinquent_set(analysis: &ProgramAnalysis) -> Vec<usize> {
    analysis
        .loads
        .iter()
        .filter(|l| okn_classify(l).is_delinquent())
        .map(|l| l.index)
        .collect()
}

/// Convenience: `true` when any pattern has a constant stride.
#[must_use]
pub fn is_strided(patterns: &[Ap]) -> bool {
    patterns.iter().any(|p| p.stride().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::reg::BaseReg;

    fn load_with(patterns: Vec<Ap>) -> LoadInfo {
        LoadInfo {
            index: 0,
            func: "f".into(),
            patterns,
            truncated: false,
        }
    }

    fn sp() -> Ap {
        Ap::Base(BaseReg::Sp)
    }

    #[test]
    fn plain_scalar_is_other() {
        let l = load_with(vec![Ap::add(sp(), Ap::Const(8))]);
        assert_eq!(okn_classify(&l), OknClass::Other);
        assert!(!okn_classify(&l).is_delinquent());
    }

    #[test]
    fn deref_is_pointer() {
        let l = load_with(vec![Ap::deref(Ap::add(sp(), Ap::Const(8)))]);
        assert_eq!(okn_classify(&l), OknClass::PointerDeref);
    }

    #[test]
    fn linear_recurrence_is_strided() {
        let l = load_with(vec![Ap::add(Ap::Rec, Ap::Const(4))]);
        assert_eq!(okn_classify(&l), OknClass::Strided);
        assert!(okn_classify(&l).is_delinquent());
    }

    #[test]
    fn pointer_wins_over_strided() {
        // A strided pattern that also dereferences: pointer class.
        let l = load_with(vec![Ap::deref(Ap::add(Ap::Rec, Ap::Const(4)))]);
        assert_eq!(okn_classify(&l), OknClass::PointerDeref);
    }

    #[test]
    fn any_pattern_suffices() {
        let l = load_with(vec![
            Ap::add(sp(), Ap::Const(8)),
            Ap::add(Ap::Rec, Ap::Const(8)),
        ]);
        assert_eq!(okn_classify(&l), OknClass::Strided);
    }

    #[test]
    fn display_names() {
        assert_eq!(OknClass::PointerDeref.to_string(), "pointer");
        assert_eq!(OknClass::Strided.to_string(), "strided");
        assert_eq!(OknClass::Other.to_string(), "other");
    }
}
