//! The static reuse-distance estimator packaged as a baseline
//! predictor, comparable against OKN, BDH, and the paper's heuristic
//! on the same `(program, analysis)` inputs.
//!
//! The estimation itself lives in `dl-analysis`'s `reuse` module (it
//! is an analysis, not a heuristic); this wrapper gives it the same
//! `*_delinquent_set` call shape as [`crate::okn`] and [`crate::bdh`]
//! so the experiment tables can treat all predictors uniformly.

use dl_analysis::reuse::{self, CacheGeometry, ReusePrediction};
use dl_analysis::ProgramAnalysis;
use dl_mips::program::Program;

/// Predicts per-load miss ratios against `geometry` and returns the
/// loads whose prediction reaches `threshold`, sorted by instruction
/// index.
#[must_use]
pub fn reuse_delinquent_set(
    program: &Program,
    analysis: &ProgramAnalysis,
    geometry: &CacheGeometry,
    threshold: f64,
) -> Vec<usize> {
    reuse::delinquent_set(&reuse_predictions(program, analysis, geometry), threshold)
}

/// The raw per-load predictions (for callers that also want the miss
/// ratios, classes, and trip counts behind the set).
#[must_use]
pub fn reuse_predictions(
    program: &Program,
    analysis: &ProgramAnalysis,
    geometry: &CacheGeometry,
) -> Vec<ReusePrediction> {
    reuse::predict_program(program, analysis, geometry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_analysis::extract::{analyze_program, AnalysisConfig};
    use dl_mips::parse::parse_asm;

    #[test]
    fn flags_the_streaming_load_only() {
        let p = parse_asm(
            "main:\n\
             \tlw $t3, 4($sp)\n\
             \tli $t0, 0\n\
             \tli $t1, 16384\n\
             .Lh:\n\
             \tlw $t2, 0($t0)\n\
             \taddiu $t0, $t0, 4\n\
             \tbne $t0, $t1, .Lh\n\
             \tjr $ra\n",
        )
        .unwrap();
        let analysis = analyze_program(&p, &AnalysisConfig::default());
        let geometry = CacheGeometry::new(8 * 1024, 32, 4);
        let set = reuse_delinquent_set(&p, &analysis, &geometry, 0.10);
        assert_eq!(set, vec![3]);
        let preds = reuse_predictions(&p, &analysis, &geometry);
        assert_eq!(preds.len(), analysis.loads.len());
    }
}
