//! Property test: routing every predictor through the shared
//! [`AnalysisCtx`] pass manager produces exactly the set the
//! pre-refactor direct-call path produces, on arbitrary random
//! programs and profiles. The ctx may cache and share passes however
//! it likes — it must never change an answer.

use dl_analysis::extract::{analyze_program, AnalysisConfig};
use dl_analysis::reuse::REUSE_DELTA;
use dl_analysis::{AnalysisCtx, CacheGeometry};
use dl_baselines::{bdh_delinquent_set, okn_delinquent_set, reuse_delinquent_set};
use dl_baselines::{Bdh, Okn, ProfilePredictor, ReusePredictor};
use dl_core::combine::{combine_hybrid, HybridMode};
use dl_core::{Heuristic, Hybrid, Predictor};
use dl_mips::parse::parse_asm;
use dl_mips::program::Program;
use dl_testkit::{cases, progen, Rng};

/// A random program from `dl_testkit::progen`: half call-free
/// control-flow soup, half call-bearing (direct calls, calls in
/// counted loops, 2-deep call chains) — the full input space the
/// predictors and the interprocedural profile engine disagree over.
fn arb_program(rng: &mut Rng) -> Program {
    parse_asm(&progen::arb_program(rng)).expect("generated asm parses")
}

#[test]
fn every_predictor_matches_its_direct_path() {
    cases(60, 0xC7E0, |rng| {
        let program = arb_program(rng);
        let exec: Vec<u64> = (0..program.insts.len())
            .map(|_| rng.below(100_000))
            .collect();
        let geometry = CacheGeometry::new(8 * 1024, 32, 4);

        // The pre-refactor path: every analysis built from scratch.
        let analysis = analyze_program(&program, &AnalysisConfig::default());
        let h = Heuristic::default();
        let direct_heur = h.classify(&analysis, &exec);
        let direct_okn = okn_delinquent_set(&analysis);
        let direct_bdh = bdh_delinquent_set(&program, &analysis);
        let direct_reuse = reuse_delinquent_set(&program, &analysis, &geometry, REUSE_DELTA);

        // The ctx path: one pass manager shared by all predictors.
        let ctx = AnalysisCtx::new(program).with_profile(&exec);
        let reuse = ReusePredictor::new(geometry);
        assert_eq!(h.predict(&ctx), direct_heur, "heuristic diverged");
        assert_eq!(Okn.predict(&ctx), direct_okn, "okn diverged");
        assert_eq!(Bdh.predict(&ctx), direct_bdh, "bdh diverged");
        assert_eq!(reuse.predict(&ctx), direct_reuse, "reuse diverged");
        assert_eq!(
            Hybrid::new(h.clone(), reuse, HybridMode::Intersect).predict(&ctx),
            combine_hybrid(&direct_heur, &direct_reuse, HybridMode::Intersect),
            "hybrid-intersect diverged"
        );
        assert_eq!(
            Hybrid::new(h, reuse, HybridMode::Union).predict(&ctx),
            combine_hybrid(&direct_heur, &direct_reuse, HybridMode::Union),
            "hybrid-union diverged"
        );

        // The profile predictor has no pre-refactor direct path; its
        // equivalence property is determinism across independent pass
        // managers (OnceLock caching must never change an answer) and
        // the abstention contract: flagged loads are in-loop loads.
        let profile = ProfilePredictor::new(geometry);
        let flagged = profile.predict(&ctx);
        let fresh = AnalysisCtx::new(ctx.program().clone());
        assert_eq!(
            profile.predict(&fresh),
            flagged,
            "profile diverged across pass managers"
        );
        for &i in &flagged {
            let lp = fresh
                .reuse_profiles()
                .loads
                .iter()
                .find(|l| l.index == i)
                .expect("flagged load is profiled");
            assert!(lp.in_loop, "flagged load {i} has no repeat context");
        }
    });
}
