//! Property test: routing every predictor through the shared
//! [`AnalysisCtx`] pass manager produces exactly the set the
//! pre-refactor direct-call path produces, on arbitrary random
//! programs and profiles. The ctx may cache and share passes however
//! it likes — it must never change an answer.

use dl_analysis::extract::{analyze_program, AnalysisConfig};
use dl_analysis::reuse::REUSE_DELTA;
use dl_analysis::{AnalysisCtx, CacheGeometry};
use dl_baselines::{bdh_delinquent_set, okn_delinquent_set, reuse_delinquent_set};
use dl_baselines::{Bdh, Okn, ReusePredictor};
use dl_core::combine::{combine_hybrid, HybridMode};
use dl_core::{Heuristic, Hybrid, Predictor};
use dl_mips::parse::parse_asm;
use dl_mips::program::Program;
use dl_testkit::{cases, Rng};

/// A random multi-function program rich in loads: stack reloads,
/// register-based (possibly chased) dereferences, global accesses,
/// pointer arithmetic, and arbitrary control flow — the full input
/// space the predictors disagree over.
fn arb_program(rng: &mut Rng) -> Program {
    let nfuncs = 1 + rng.index(3);
    let mut s = String::new();
    for fi in 0..nfuncs {
        if fi == 0 {
            s.push_str("main:\n");
        } else {
            s.push_str(&format!("f{fi}:\n"));
        }
        let nblocks = 1 + rng.index(4);
        for b in 0..nblocks {
            s.push_str(&format!(".L{fi}_{b}:\n"));
            for _ in 0..1 + rng.index(5) {
                let (d, a, c) = (rng.index(8), rng.index(8), rng.index(8));
                match rng.index(8) {
                    0 => s.push_str(&format!("\tlw $t{d}, {}($sp)\n", 4 * rng.index(16))),
                    1 => s.push_str(&format!("\tlw $t{d}, {}($t{a})\n", 4 * rng.index(8))),
                    2 => s.push_str(&format!("\tlw $t{d}, {}($gp)\n", 4 * rng.index(16))),
                    3 => s.push_str(&format!(
                        "\taddiu $t{d}, $t{a}, {}\n",
                        rng.range_i32(-8, 64)
                    )),
                    4 => s.push_str(&format!("\tsll $t{d}, $t{a}, {}\n", 1 + rng.index(3))),
                    5 => s.push_str(&format!("\tli $t{d}, {}\n", rng.index(4096))),
                    6 => s.push_str(&format!("\tsw $t{d}, {}($sp)\n", 4 * rng.index(16))),
                    _ => s.push_str(&format!("\taddu $t{d}, $t{a}, $t{c}\n")),
                }
            }
            let target = rng.index(nblocks);
            match rng.index(3) {
                0 => {}
                1 => s.push_str(&format!("\tj .L{fi}_{target}\n")),
                _ => s.push_str(&format!(
                    "\tbne $t{}, $zero, .L{fi}_{target}\n",
                    rng.index(8)
                )),
            }
        }
        s.push_str("\tjr $ra\n");
    }
    parse_asm(&s).expect("generated asm parses")
}

#[test]
fn every_predictor_matches_its_direct_path() {
    cases(60, 0xC7E0, |rng| {
        let program = arb_program(rng);
        let exec: Vec<u64> = (0..program.insts.len())
            .map(|_| rng.below(100_000))
            .collect();
        let geometry = CacheGeometry::new(8 * 1024, 32, 4);

        // The pre-refactor path: every analysis built from scratch.
        let analysis = analyze_program(&program, &AnalysisConfig::default());
        let h = Heuristic::default();
        let direct_heur = h.classify(&analysis, &exec);
        let direct_okn = okn_delinquent_set(&analysis);
        let direct_bdh = bdh_delinquent_set(&program, &analysis);
        let direct_reuse = reuse_delinquent_set(&program, &analysis, &geometry, REUSE_DELTA);

        // The ctx path: one pass manager shared by all predictors.
        let ctx = AnalysisCtx::new(program).with_profile(&exec);
        let reuse = ReusePredictor::new(geometry);
        assert_eq!(h.predict(&ctx), direct_heur, "heuristic diverged");
        assert_eq!(Okn.predict(&ctx), direct_okn, "okn diverged");
        assert_eq!(Bdh.predict(&ctx), direct_bdh, "bdh diverged");
        assert_eq!(reuse.predict(&ctx), direct_reuse, "reuse diverged");
        assert_eq!(
            Hybrid::new(h.clone(), reuse, HybridMode::Intersect).predict(&ctx),
            combine_hybrid(&direct_heur, &direct_reuse, HybridMode::Intersect),
            "hybrid-intersect diverged"
        );
        assert_eq!(
            Hybrid::new(h, reuse, HybridMode::Union).predict(&ctx),
            combine_hybrid(&direct_heur, &direct_reuse, HybridMode::Union),
            "hybrid-union diverged"
        );
    });
}
