//! # dl-core
//!
//! The paper's primary contribution: a *static heuristic* that
//! classifies load instructions as possibly delinquent from the
//! structure of their address patterns plus coarse execution-frequency
//! information.
//!
//! ## Pipeline
//!
//! 1. `dl-analysis` extracts each load's address patterns.
//! 2. [`classes`] tests each pattern's membership in the nine
//!    *aggregate classes* AG1–AG9 (derived from decision criteria
//!    H1–H5).
//! 3. [`heuristic::Heuristic`] computes the score
//!    `φ(i) = max_{j ∈ A_i} Σ_k W(k)·d(j,k)` and flags load `i` as
//!    possibly delinquent when `φ(i) > δ` (default δ = 0.10).
//! 4. [`training`] re-derives the class weights from simulation data
//!    using the paper's `m_j`/`n_j`/strength-index machinery (§7), and
//!    [`heuristic::Weights::paper`] carries the published Table 5
//!    values.
//! 5. [`combine`] sharpens a basic-block-profiling set with the
//!    heuristic (§9, the ε-factor scheme).
//!
//! # Example
//!
//! ```
//! use dl_mips::parse::parse_asm;
//! use dl_analysis::extract::{analyze_program, AnalysisConfig};
//! use dl_core::heuristic::Heuristic;
//!
//! // A two-level pointer chase: scores well above δ.
//! let p = parse_asm(
//!     "main:\n\
//!      \tlw $t0, 16($sp)\n\
//!      \tlw $t1, 8($t0)\n\
//!      \tlw $t2, 12($t1)\n\
//!      \tjr $ra\n",
//! ).unwrap();
//! let analysis = analyze_program(&p, &AnalysisConfig::default());
//! let h = Heuristic::default();
//! // Pretend every load executes often enough not to be filtered.
//! let exec = vec![10_000u64; p.insts.len()];
//! let delinquent = h.classify(&analysis, &exec);
//! assert!(delinquent.contains(&2));
//! ```

#![warn(missing_docs)]

pub mod classes;
pub mod combine;
pub mod heuristic;
pub mod predictor;
pub mod training;

pub use classes::{AgClass, H1Class};
pub use heuristic::{Heuristic, Weights};
pub use predictor::{DelinquencySet, Hybrid, Predictor};
