//! Weight training (paper §7.1–§7.2): deriving class natures and
//! weights from memory-profiling data over a training benchmark set.
//!
//! For a class `F` in benchmark `j` under cache configuration `C`:
//!
//! * miss probability `m_j(F,C) = M(F,C) / Σ_{i∈F} E(i)`
//! * miss share `n_j(F,C) = M(F,C) / M(P(I),C)`
//! * strength index `r = m_j / n_j`
//!
//! A benchmark is *relevant* to `F` unless both `m_j` and `n_j` fall
//! below thresholds. A class is **positive** when `r ≥ 1/20` on every
//! relevant benchmark, **negative** when `n_j < 0.5%` everywhere, and
//! **neutral** otherwise. Positive weights are
//! `W(F) = (1/|R_F|) Σ_{j∈R_F} m_j/n_j`; negative classes get minus the
//! trimmed mean of the positive weights (halved for the milder AG8).

use dl_analysis::extract::LoadInfo;

use crate::classes::{frequency_class, pattern_classes, AgClass, H1Class};
use crate::heuristic::Weights;

/// One benchmark's worth of training data: the static analysis plus
/// the dynamic measurements from a profiling run.
#[derive(Debug, Clone, Copy)]
pub struct TrainingRun<'a> {
    /// Benchmark name (for reports).
    pub name: &'a str,
    /// Per-load analysis records.
    pub loads: &'a [LoadInfo],
    /// Per-instruction execution counts (`E(i)`).
    pub exec_counts: &'a [u64],
    /// Per-instruction load miss counts (`M(i, C)`).
    pub load_misses: &'a [u64],
    /// Total load misses of the run (`M(P(I), C)`).
    pub total_load_misses: u64,
}

/// Thresholds steering class-nature decisions (paper §7.1; the paper
/// states the rules but not the exact relevance cutoffs — these
/// defaults reproduce its Table 4 classifications).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingParams {
    /// A benchmark is irrelevant to a class when **both** `m_j` and
    /// `n_j` are below this (fraction, not percent).
    pub relevance_threshold: f64,
    /// Positive classes need strength `r = m/n ≥` this on all relevant
    /// benchmarks (paper: 1/20).
    pub min_strength: f64,
    /// Negative classes have `n_j <` this on **all** benchmarks
    /// (paper: 0.50%).
    pub negative_share: f64,
}

impl Default for TrainingParams {
    fn default() -> Self {
        TrainingParams {
            relevance_threshold: 0.01,
            min_strength: 1.0 / 20.0,
            negative_share: 0.005,
        }
    }
}

/// The nature of a class (paper §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassNature {
    /// Evidence of delinquency; carries positive weight.
    Positive,
    /// Evidence against; carries negative weight.
    Negative,
    /// No consistent signal; weight zero.
    Neutral,
}

/// Per-benchmark statistics of one class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassBenchStats {
    /// Benchmark name.
    pub bench: String,
    /// Whether any load of the benchmark belongs to the class.
    pub found: bool,
    /// `m_j(F, C)` as a fraction.
    pub m: f64,
    /// `n_j(F, C)` as a fraction.
    pub n: f64,
    /// Whether the benchmark is relevant to the class.
    pub relevant: bool,
}

/// The trained summary of one class across all training benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedClass {
    /// Class label (e.g. `"AG3"` or `"H1.5"`).
    pub name: String,
    /// Feature description.
    pub feature: String,
    /// Per-benchmark statistics.
    pub stats: Vec<ClassBenchStats>,
    /// Decided nature.
    pub nature: ClassNature,
    /// Trained weight (`None` for neutral classes and for negative
    /// classes, whose weight is assigned globally afterwards).
    pub weight: Option<f64>,
}

impl TrainedClass {
    /// Number of benchmarks in which the class was found at all.
    #[must_use]
    pub fn found_in(&self) -> usize {
        self.stats.iter().filter(|s| s.found).count()
    }

    /// Number of benchmarks relevant to the class.
    #[must_use]
    pub fn relevant_in(&self) -> usize {
        self.stats.iter().filter(|s| s.relevant).count()
    }
}

/// Membership test: does this load (with this execution count) belong
/// to the class?
pub type MemberFn = Box<dyn Fn(&LoadInfo, u64) -> bool>;

/// A class definition for training: a name plus a membership test over
/// a load record (and its execution count).
pub struct ClassDef {
    /// Class label.
    pub name: String,
    /// Feature description.
    pub feature: String,
    /// Membership test.
    pub member: MemberFn,
}

impl std::fmt::Debug for ClassDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassDef")
            .field("name", &self.name)
            .field("feature", &self.feature)
            .finish_non_exhaustive()
    }
}

/// The fifteen fine-grained H1 classes (Table 3): membership when any
/// address pattern of the load has the class's exact `(sp, gp)`
/// occurrence counts.
#[must_use]
pub fn h1_class_defs() -> Vec<ClassDef> {
    H1Class::all()
        .map(|c| ClassDef {
            name: c.to_string(),
            feature: c.feature().to_owned(),
            member: Box::new(move |l: &LoadInfo, _| {
                l.patterns.iter().any(|p| H1Class::of_pattern(p) == c)
            }),
        })
        .collect()
}

/// The nine aggregate classes (Table 5) as trainable class definitions.
#[must_use]
pub fn aggregate_class_defs() -> Vec<ClassDef> {
    AgClass::ALL
        .iter()
        .map(|&c| ClassDef {
            name: c.to_string(),
            feature: c.feature().to_owned(),
            member: Box::new(move |l: &LoadInfo, exec: u64| match c {
                AgClass::Ag8 | AgClass::Ag9 => frequency_class(exec) == Some(c),
                _ => l.patterns.iter().any(|p| pattern_classes(p).contains(&c)),
            }),
        })
        .collect()
}

/// Computes `(m_j, n_j, found)` of one class on one benchmark.
#[must_use]
pub fn class_stats(class: &ClassDef, run: &TrainingRun<'_>) -> (f64, f64, bool) {
    let mut misses: u64 = 0;
    let mut execs: u64 = 0;
    let mut found = false;
    for load in run.loads {
        let e = run.exec_counts.get(load.index).copied().unwrap_or(0);
        if (class.member)(load, e) {
            found = true;
            misses += run.load_misses.get(load.index).copied().unwrap_or(0);
            execs += e;
        }
    }
    let m = if execs == 0 {
        0.0
    } else {
        misses as f64 / execs as f64
    };
    let n = if run.total_load_misses == 0 {
        0.0
    } else {
        misses as f64 / run.total_load_misses as f64
    };
    (m, n, found)
}

/// Trains one class across all benchmarks: nature decision plus weight
/// (for positive classes).
#[must_use]
pub fn train_class(
    class: &ClassDef,
    runs: &[TrainingRun<'_>],
    params: &TrainingParams,
) -> TrainedClass {
    let mut stats = Vec::with_capacity(runs.len());
    for run in runs {
        let (m, n, found) = class_stats(class, run);
        let relevant =
            found && (m >= params.relevance_threshold || n >= params.relevance_threshold);
        stats.push(ClassBenchStats {
            bench: run.name.to_owned(),
            found,
            m,
            n,
            relevant,
        });
    }
    let relevant: Vec<&ClassBenchStats> = stats.iter().filter(|s| s.relevant).collect();
    let all_small_share = stats.iter().all(|s| s.n < params.negative_share);
    let nature = if all_small_share {
        ClassNature::Negative
    } else if !relevant.is_empty()
        && relevant
            .iter()
            .all(|s| s.n > 0.0 && s.m / s.n >= params.min_strength)
    {
        ClassNature::Positive
    } else {
        ClassNature::Neutral
    };
    let weight = if nature == ClassNature::Positive {
        let sum: f64 = relevant.iter().map(|s| s.m / s.n).sum();
        Some(sum / relevant.len() as f64)
    } else {
        None
    };
    TrainedClass {
        name: class.name.clone(),
        feature: class.feature.clone(),
        stats,
        nature,
        weight,
    }
}

/// Trains the full aggregate-class weight table (regenerates Table 5):
/// positive classes get their trained weights; AG8/AG9 get the paper's
/// negative-weight rule — minus the mean of the positive weights
/// excluding the highest and lowest (halved for AG8).
#[must_use]
pub fn train_weights(runs: &[TrainingRun<'_>], params: &TrainingParams) -> Weights {
    let defs = aggregate_class_defs();
    let trained: Vec<TrainedClass> = defs.iter().map(|d| train_class(d, runs, params)).collect();
    let mut positive: Vec<f64> = trained
        .iter()
        .take(7) // structural classes AG1–AG7
        .filter_map(|t| t.weight)
        .collect();
    positive.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
    let trimmed: Vec<f64> = if positive.len() > 2 {
        positive[1..positive.len() - 1].to_vec()
    } else {
        positive.clone()
    };
    let neg_base = if trimmed.is_empty() {
        0.40
    } else {
        trimmed.iter().sum::<f64>() / trimmed.len() as f64
    };
    let mut w = Weights::from_array([0.0; 9]);
    for (i, t) in trained.iter().enumerate().take(7) {
        if let Some(weight) = t.weight {
            w.set(AgClass::ALL[i], weight);
        }
    }
    w.set(AgClass::Ag8, -neg_base / 2.0);
    w.set(AgClass::Ag9, -neg_base);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_analysis::Ap;
    use dl_mips::reg::BaseReg;

    fn sp() -> Ap {
        Ap::Base(BaseReg::Sp)
    }

    /// Builds a synthetic benchmark: loads alternate between a
    /// "hot-missing" pointer-chase shape and a benign stack scalar.
    struct Synth {
        loads: Vec<LoadInfo>,
        exec: Vec<u64>,
        miss: Vec<u64>,
        total: u64,
    }

    fn synth(n_chase: usize, n_plain: usize, chase_missrate_pct: u64) -> Synth {
        let mut loads = Vec::new();
        let mut exec = Vec::new();
        let mut miss = Vec::new();
        let mut total = 0;
        for i in 0..n_chase + n_plain {
            let chase = i < n_chase;
            let pattern = if chase {
                Ap::deref(Ap::deref(Ap::add(sp(), Ap::Const(8))))
            } else {
                Ap::add(sp(), Ap::Const(8))
            };
            loads.push(LoadInfo {
                index: i,
                func: "f".into(),
                patterns: vec![pattern],
                truncated: false,
            });
            let e = 10_000u64;
            let m = if chase {
                e * chase_missrate_pct / 100
            } else {
                5
            };
            exec.push(e);
            miss.push(m);
            total += m;
        }
        Synth {
            loads,
            exec,
            miss,
            total,
        }
    }

    fn run_of<'a>(name: &'a str, s: &'a Synth) -> TrainingRun<'a> {
        TrainingRun {
            name,
            loads: &s.loads,
            exec_counts: &s.exec,
            load_misses: &s.miss,
            total_load_misses: s.total,
        }
    }

    #[test]
    fn class_stats_computes_m_and_n() {
        let s = synth(2, 2, 50);
        let defs = aggregate_class_defs();
        let ag5 = &defs[AgClass::Ag5.index()];
        let (m, n, found) = class_stats(ag5, &run_of("b", &s));
        assert!(found);
        // 2 chase loads, each 10k execs, 5k misses.
        assert!((m - 0.5).abs() < 1e-9);
        assert!((n - 10_000.0 / 10_010.0).abs() < 1e-6);
    }

    #[test]
    fn chase_class_trains_positive() {
        let s1 = synth(2, 10, 40);
        let s2 = synth(3, 10, 60);
        let runs = [run_of("b1", &s1), run_of("b2", &s2)];
        let defs = aggregate_class_defs();
        let t = train_class(
            &defs[AgClass::Ag5.index()],
            &runs,
            &TrainingParams::default(),
        );
        assert_eq!(t.nature, ClassNature::Positive);
        assert!(t.weight.expect("positive has weight") > 0.0);
        assert_eq!(t.found_in(), 2);
        assert_eq!(t.relevant_in(), 2);
    }

    #[test]
    fn absent_class_trains_negative() {
        let s1 = synth(2, 10, 40);
        let runs = [run_of("b1", &s1)];
        let defs = aggregate_class_defs();
        // No recurrences anywhere: AG7 accounts for ~0% of misses.
        let t = train_class(
            &defs[AgClass::Ag7.index()],
            &runs,
            &TrainingParams::default(),
        );
        assert_eq!(t.nature, ClassNature::Negative);
        assert_eq!(t.weight, None);
    }

    #[test]
    fn weak_class_trains_neutral() {
        // A class that covers a big share of misses but with weak
        // strength (m/n < 1/20): plain loads in a benchmark where they
        // dominate misses but execute enormously often.
        let mut s = synth(0, 4, 0);
        // All misses come from plain loads, but miss probability is tiny.
        for m in &mut s.miss {
            *m = 60;
        }
        s.total = 240;
        for e in &mut s.exec {
            *e = 10_000_000;
        }
        let runs = [run_of("b1", &s)];
        let defs = aggregate_class_defs();
        // The plain stack-scalar loads have zero deref; use a custom
        // class matching them.
        let plain = ClassDef {
            name: "plain".into(),
            feature: "no deref".into(),
            member: Box::new(|l, _| l.max_deref_nesting() == 0),
        };
        let t = train_class(&plain, &runs, &TrainingParams::default());
        // n = 1.0 (all misses) but m = 240/40M — strength far below 1/20.
        assert_eq!(t.nature, ClassNature::Neutral);
        let _ = defs;
    }

    #[test]
    fn trained_weights_have_expected_signs() {
        let s1 = synth(2, 10, 40);
        let s2 = synth(3, 8, 60);
        let runs = [run_of("b1", &s1), run_of("b2", &s2)];
        let w = train_weights(&runs, &TrainingParams::default());
        assert!(w.get(AgClass::Ag5) > 0.0);
        assert!(w.get(AgClass::Ag8) < 0.0);
        assert!(w.get(AgClass::Ag9) < 0.0);
        // AG8 is half of AG9 in magnitude.
        assert!((w.get(AgClass::Ag9) - 2.0 * w.get(AgClass::Ag8)).abs() < 1e-9);
    }

    #[test]
    fn h1_defs_cover_all_fifteen() {
        let defs = h1_class_defs();
        assert_eq!(defs.len(), 15);
        assert_eq!(defs[4].name, "H1.5");
        assert_eq!(defs[4].feature, "sp=1, gp=1");
    }

    #[test]
    fn paper_weight_example_formula() {
        // Reproduce the W(F5) computation from §7.2: the mean of m/n
        // over the five relevant benchmarks ≈ 0.47.
        let ratios: [f64; 5] = [
            4.34 / 48.19,
            6.27 / 25.14,
            30.44 / 67.17,
            6.83 / 6.72,
            8.07 / 13.17,
        ];
        let w: f64 = ratios.iter().sum::<f64>() / 5.0;
        assert!((w - 0.47).abs() < 0.02, "computed {w}");
    }
}
