//! Combining the heuristic with other delinquency evidence.
//!
//! Two combiners live here. The paper's (§9): given the profiling set
//! `Δ_P` (loads in the hottest blocks) and the heuristic set `Δ_H`,
//! the combined scheme reports `(Δ_P ∩ Δ_H) ∪ Δ_ε`, where `Δ_ε` is
//! the top-scoring ε-fraction of `Δ_d = Δ_H − (Δ_P ∩ Δ_H)` — the
//! heuristic's picks outside the hotspots. ε = 0 gives the pure
//! intersection, which the paper shows pinpoints ~1.3% of loads
//! covering ~82% of misses.
//!
//! Beyond the paper: the static reuse-distance estimator
//! (`dl-analysis`'s `reuse` module) is a second, independent static
//! predictor, and [`combine_hybrid`] merges the two purely static sets
//! — intersecting for precision or uniting for coverage — with
//! [`reuse_scores`] exposing the predicted miss ratios in the same
//! `(index, score)` shape as [`crate::Heuristic::score_all`].

use std::collections::BTreeSet;

use dl_analysis::reuse::ReusePrediction;

/// Combines profiling and heuristic sets with the given ε-factor.
///
/// * `profiling_set` — `Δ_P`, instruction indices from hot-block
///   profiling.
/// * `heuristic_scored` — every load as `(index, φ(i))` (from
///   [`crate::Heuristic::score_all`]).
/// * `heuristic_set` — `Δ_H`, the indices the heuristic flags.
/// * `epsilon` — fraction of the non-hotspot heuristic picks to add
///   back, highest φ first.
///
/// Returns the combined set, sorted by instruction index.
///
/// # Panics
///
/// Panics if `epsilon` is negative or not finite.
///
/// # Example
///
/// ```
/// use dl_core::combine::combine_with_profiling;
/// let profiling = vec![1, 2, 3];
/// let scored = vec![(1, 0.5), (4, 0.9), (5, 0.2), (6, 0.8)];
/// let heuristic = vec![1, 4, 5, 6];
/// // ε=0: intersection only.
/// assert_eq!(combine_with_profiling(&profiling, &scored, &heuristic, 0.0), vec![1]);
/// // ε=0.34 of the 3 leftovers = 1 load: the best-scoring leftover (4).
/// assert_eq!(combine_with_profiling(&profiling, &scored, &heuristic, 0.34), vec![1, 4]);
/// ```
#[must_use]
pub fn combine_with_profiling(
    profiling_set: &[usize],
    heuristic_scored: &[(usize, f64)],
    heuristic_set: &[usize],
    epsilon: f64,
) -> Vec<usize> {
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "epsilon must be a finite non-negative fraction"
    );
    let p: BTreeSet<usize> = profiling_set.iter().copied().collect();
    let h: BTreeSet<usize> = heuristic_set.iter().copied().collect();
    let mut combined: BTreeSet<usize> = p.intersection(&h).copied().collect();
    // Δ_d: heuristic picks outside the intersection, by descending φ.
    let mut delta_d: Vec<(usize, f64)> = heuristic_scored
        .iter()
        .filter(|(i, _)| h.contains(i) && !combined.contains(i))
        .copied()
        .collect();
    delta_d.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are finite")
            .then(a.0.cmp(&b.0))
    });
    let take = (epsilon * delta_d.len() as f64).floor() as usize;
    combined.extend(delta_d.iter().take(take).map(|(i, _)| *i));
    combined.into_iter().collect()
}

/// How [`combine_hybrid`] merges the heuristic and reuse sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridMode {
    /// Flag only loads both predictors agree on (precision-oriented:
    /// π can only shrink).
    Intersect,
    /// Flag loads either predictor picks (coverage-oriented: ρ can
    /// only grow).
    Union,
}

/// The reuse predictor's verdicts as `(index, predicted miss ratio)`
/// pairs — the same shape as [`crate::Heuristic::score_all`], so the
/// two scorers are interchangeable downstream.
#[must_use]
pub fn reuse_scores(predictions: &[ReusePrediction]) -> Vec<(usize, f64)> {
    predictions
        .iter()
        .map(|p| (p.index, p.miss_ratio))
        .collect()
}

/// Merges the heuristic set `Δ_H` and the reuse set `Δ_R` — two
/// independent static predictors — per `mode`. Returns instruction
/// indices sorted ascending.
///
/// # Example
///
/// ```
/// use dl_core::combine::{combine_hybrid, HybridMode};
/// let h = vec![1, 4, 6];
/// let r = vec![4, 6, 9];
/// assert_eq!(combine_hybrid(&h, &r, HybridMode::Intersect), vec![4, 6]);
/// assert_eq!(combine_hybrid(&h, &r, HybridMode::Union), vec![1, 4, 6, 9]);
/// ```
#[must_use]
pub fn combine_hybrid(
    heuristic_set: &[usize],
    reuse_set: &[usize],
    mode: HybridMode,
) -> Vec<usize> {
    let h: BTreeSet<usize> = heuristic_set.iter().copied().collect();
    let r: BTreeSet<usize> = reuse_set.iter().copied().collect();
    match mode {
        HybridMode::Intersect => h.intersection(&r).copied().collect(),
        HybridMode::Union => h.union(&r).copied().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored() -> Vec<(usize, f64)> {
        vec![
            (0, 0.1),
            (1, 1.5),
            (2, 0.8),
            (3, 0.3),
            (4, 2.0),
            (5, 0.05),
            (6, 0.9),
        ]
    }

    #[test]
    fn epsilon_zero_is_intersection() {
        let out = combine_with_profiling(&[1, 2, 3], &scored(), &[1, 2, 4, 6], 0.0);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn epsilon_one_adds_all_leftovers() {
        let out = combine_with_profiling(&[1, 2, 3], &scored(), &[1, 2, 4, 6], 1.0);
        assert_eq!(out, vec![1, 2, 4, 6]);
    }

    #[test]
    fn leftovers_added_by_descending_score() {
        // Leftovers are 4 (2.0) and 6 (0.9); ε=0.5 of 2 = 1 pick: 4.
        let out = combine_with_profiling(&[1, 2, 3], &scored(), &[1, 2, 4, 6], 0.5);
        assert_eq!(out, vec![1, 2, 4]);
    }

    #[test]
    fn empty_profiling_set_keeps_epsilon_fraction() {
        let out = combine_with_profiling(&[], &scored(), &[1, 4, 6], 0.4);
        // floor(0.4 * 3) = 1: best score is 4.
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn empty_heuristic_set_is_empty() {
        let out = combine_with_profiling(&[1, 2], &scored(), &[], 1.0);
        assert!(out.is_empty());
    }

    #[test]
    fn ties_break_by_index() {
        let s = vec![(7, 0.5), (3, 0.5), (9, 0.5)];
        let out = combine_with_profiling(&[], &s, &[7, 3, 9], 0.34);
        assert_eq!(out, vec![3]);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_panics() {
        let _ = combine_with_profiling(&[], &scored(), &[1], -0.1);
    }

    #[test]
    fn hybrid_set_operations() {
        assert_eq!(
            combine_hybrid(&[5, 1, 3], &[3, 5, 7], HybridMode::Intersect),
            vec![3, 5]
        );
        assert_eq!(
            combine_hybrid(&[5, 1, 3], &[3, 5, 7], HybridMode::Union),
            vec![1, 3, 5, 7]
        );
        assert!(combine_hybrid(&[], &[1], HybridMode::Intersect).is_empty());
        assert_eq!(combine_hybrid(&[], &[1], HybridMode::Union), vec![1]);
    }

    #[test]
    fn reuse_scores_mirror_predictions() {
        use dl_analysis::indvar::AddressClass;
        let preds = vec![ReusePrediction {
            index: 7,
            class: AddressClass::Strided(4),
            loop_depth: 1,
            trip: 64.0,
            trip_exact: true,
            footprint: 256.0,
            miss_ratio: 0.125,
        }];
        assert_eq!(reuse_scores(&preds), vec![(7, 0.125)]);
    }
}
