//! The heuristic function φ and the delinquency decision (paper §7.3).

use dl_analysis::extract::{LoadInfo, ProgramAnalysis};

use crate::classes::{frequency_class, pattern_classes, AgClass};

/// Weights of the nine aggregate classes.
///
/// # Example
///
/// ```
/// use dl_core::{AgClass, Weights};
/// let w = Weights::paper();
/// assert_eq!(w.get(AgClass::Ag6), 1.72);
/// assert_eq!(w.get(AgClass::Ag9), -0.40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    values: [f64; 9],
}

impl Weights {
    /// The published weights (paper Table 5).
    #[must_use]
    pub fn paper() -> Self {
        Weights {
            values: [0.28, 0.33, 0.47, 0.16, 0.67, 1.72, 0.10, -0.20, -0.40],
        }
    }

    /// Builds weights from an `[AG1, …, AG9]` array.
    #[must_use]
    pub fn from_array(values: [f64; 9]) -> Self {
        Weights { values }
    }

    /// The weight of one class.
    #[must_use]
    pub fn get(&self, class: AgClass) -> f64 {
        self.values[class.index()]
    }

    /// Sets the weight of one class.
    pub fn set(&mut self, class: AgClass, weight: f64) {
        self.values[class.index()] = weight;
    }

    /// The raw `[AG1, …, AG9]` array.
    #[must_use]
    pub fn as_array(&self) -> [f64; 9] {
        self.values
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::paper()
    }
}

/// The paper's default delinquency threshold δ.
pub const DEFAULT_DELTA: f64 = 0.10;

/// The delinquency classifier: weights, threshold δ, and whether the
/// execution-frequency classes (AG8/AG9) participate.
///
/// Table 11 evaluates both modes: with AG8/AG9 (needs a basic-block
/// profile or a static frequency estimate) and without (purely static).
#[derive(Debug, Clone, PartialEq)]
pub struct Heuristic {
    weights: Weights,
    delta: f64,
    use_frequency: bool,
}

impl Heuristic {
    /// The paper's configuration: published weights, δ = 0.10,
    /// frequency classes enabled.
    #[must_use]
    pub fn new() -> Self {
        Heuristic {
            weights: Weights::paper(),
            delta: DEFAULT_DELTA,
            use_frequency: true,
        }
    }

    /// Replaces the weights.
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Replaces the threshold δ (Table 13 varies this).
    #[must_use]
    pub fn with_threshold(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Disables AG8/AG9 — the purely static variant of Table 11
    /// ("without AG8 and AG9").
    #[must_use]
    pub fn without_frequency_classes(mut self) -> Self {
        self.use_frequency = false;
        self
    }

    /// The active threshold δ.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.delta
    }

    /// The active weights.
    #[must_use]
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Computes `φ(i) = max_{j ∈ A_i} Σ_k W(k) · d(j, k)` for one load.
    ///
    /// `exec_count` is the load's dynamic execution count `E(i)` (used
    /// only by AG8/AG9; pass anything ≥ 1000 for the purely static
    /// variant).
    #[must_use]
    pub fn score(&self, load: &LoadInfo, exec_count: u64) -> f64 {
        let freq_term = if self.use_frequency {
            frequency_class(exec_count)
                .map(|c| self.weights.get(c))
                .unwrap_or(0.0)
        } else {
            0.0
        };
        load.patterns
            .iter()
            .map(|ap| {
                let structural: f64 = pattern_classes(ap)
                    .into_iter()
                    .map(|c| self.weights.get(c))
                    .sum();
                structural + freq_term
            })
            .fold(f64::NEG_INFINITY, f64::max)
            .max(f64::NEG_INFINITY)
    }

    /// Returns `true` if the load is classified possibly delinquent
    /// (`φ(i) > δ`).
    #[must_use]
    pub fn is_delinquent(&self, load: &LoadInfo, exec_count: u64) -> bool {
        self.score(load, exec_count) > self.delta
    }

    /// Classifies every load of a program: returns the instruction
    /// indices of the possibly-delinquent set Δ, in program order.
    ///
    /// `exec_counts` is indexed by instruction index (as produced by
    /// `dl-sim`); loads beyond its length are treated as hot.
    ///
    /// # Example
    ///
    /// See the [crate-level example](crate).
    #[must_use]
    pub fn classify(&self, analysis: &ProgramAnalysis, exec_counts: &[u64]) -> Vec<usize> {
        analysis
            .loads
            .iter()
            .filter(|l| {
                let e = exec_counts.get(l.index).copied().unwrap_or(u64::MAX);
                self.is_delinquent(l, e)
            })
            .map(|l| l.index)
            .collect()
    }

    /// Scores every load, returning `(index, φ)` pairs in program
    /// order. Used by the ε-combination, which ranks non-hotspot loads
    /// by score.
    #[must_use]
    pub fn score_all(&self, analysis: &ProgramAnalysis, exec_counts: &[u64]) -> Vec<(usize, f64)> {
        analysis
            .loads
            .iter()
            .map(|l| {
                let e = exec_counts.get(l.index).copied().unwrap_or(u64::MAX);
                (l.index, self.score(l, e))
            })
            .collect()
    }
}

impl Default for Heuristic {
    fn default() -> Self {
        Heuristic::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_analysis::Ap;
    use dl_mips::reg::BaseReg;

    fn load_with(patterns: Vec<Ap>) -> LoadInfo {
        LoadInfo {
            index: 0,
            func: "f".into(),
            patterns,
            truncated: false,
        }
    }

    fn sp() -> Ap {
        Ap::Base(BaseReg::Sp)
    }

    #[test]
    fn simple_stack_scalar_scores_zero() {
        let l = load_with(vec![Ap::add(sp(), Ap::Const(16))]);
        let h = Heuristic::new();
        assert_eq!(h.score(&l, 1_000_000), 0.0);
        assert!(!h.is_delinquent(&l, 1_000_000));
    }

    #[test]
    fn deep_chase_scores_high() {
        // Three levels of dereferencing: AG6 alone is 1.72.
        let l3 = Ap::deref(Ap::deref(Ap::deref(Ap::add(sp(), Ap::Const(4)))));
        let l = load_with(vec![l3]);
        let h = Heuristic::new();
        assert!(h.score(&l, 1_000_000) >= 1.72);
        assert!(h.is_delinquent(&l, 1_000_000));
    }

    #[test]
    fn phi_is_max_over_patterns() {
        let weak = Ap::add(sp(), Ap::Const(4)); // 0.0
        let strong = Ap::deref(Ap::deref(Ap::add(sp(), Ap::Const(4)))); // AG5 = 0.67
        let l = load_with(vec![weak, strong]);
        let h = Heuristic::new();
        assert!((h.score(&l, 1_000_000) - 0.67).abs() < 1e-9);
    }

    #[test]
    fn frequency_penalty_filters_cold_loads() {
        // AG4 (0.16) alone is above δ=0.10 when hot...
        let l = load_with(vec![Ap::deref(Ap::add(sp(), Ap::Const(4)))]);
        let h = Heuristic::new();
        assert!(h.is_delinquent(&l, 10_000));
        // ...but an AG9 (rare, -0.40) load drops below.
        assert!(!h.is_delinquent(&l, 50));
        // AG8 (seldom, -0.20) also drops it below.
        assert!(!h.is_delinquent(&l, 500));
    }

    #[test]
    fn without_frequency_ignores_exec_counts() {
        let l = load_with(vec![Ap::deref(Ap::add(sp(), Ap::Const(4)))]);
        let h = Heuristic::new().without_frequency_classes();
        assert!(h.is_delinquent(&l, 1));
    }

    #[test]
    fn threshold_tuning() {
        let l = load_with(vec![Ap::deref(Ap::add(sp(), Ap::Const(4)))]); // 0.16
        let lenient = Heuristic::new().with_threshold(0.10);
        let strict = Heuristic::new().with_threshold(0.20);
        assert!(lenient.is_delinquent(&l, 1_000_000));
        assert!(!strict.is_delinquent(&l, 1_000_000));
    }

    #[test]
    fn additive_scoring_combines_classes() {
        // sp twice + shift + one deref + recurrence:
        // AG2 + AG3 + AG4 + AG7 = 0.33 + 0.47 + 0.16 + 0.10 = 1.06
        let idx = Ap::Shl(
            Box::new(Ap::add(Ap::Rec, Ap::Const(1))),
            Box::new(Ap::Const(2)),
        );
        let ap = Ap::add(Ap::add(Ap::deref(Ap::add(sp(), Ap::Const(4))), idx), sp());
        let l = load_with(vec![ap]);
        let h = Heuristic::new();
        let s = h.score(&l, 1_000_000);
        assert!((s - 1.06).abs() < 1e-9, "score was {s}");
    }

    #[test]
    fn custom_weights() {
        let mut w = Weights::paper();
        w.set(AgClass::Ag4, 0.5);
        assert_eq!(w.get(AgClass::Ag4), 0.5);
        let l = load_with(vec![Ap::deref(Ap::add(sp(), Ap::Const(4)))]);
        let h = Heuristic::new().with_weights(w);
        assert!((h.score(&l, 1_000_000) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn classify_orders_by_index() {
        use dl_analysis::extract::ProgramAnalysis;
        let mk = |index: usize, hot: bool| LoadInfo {
            index,
            func: "f".into(),
            patterns: vec![if hot {
                Ap::deref(Ap::deref(Ap::add(sp(), Ap::Const(4))))
            } else {
                Ap::add(sp(), Ap::Const(4))
            }],
            truncated: false,
        };
        let analysis = ProgramAnalysis {
            loads: vec![mk(2, true), mk(5, false), mk(9, true)],
        };
        let h = Heuristic::new();
        let exec = vec![1_000_000u64; 10];
        assert_eq!(h.classify(&analysis, &exec), vec![2, 9]);
    }
}
