//! The uniform interface every delinquency predictor implements.
//!
//! The paper's heuristic, the BDH and OKN baselines (`dl-baselines`),
//! the reuse-distance estimator, and the set-combining hybrids all
//! answer the same question — *which static loads will miss?* — from
//! the same post-compilation analyses. [`Predictor`] pins that down:
//! one method, taking the shared pass manager
//! ([`dl_analysis::ctx::AnalysisCtx`]) instead of raw programs, so a
//! new predictor is one `impl` and every experiment driver (tables,
//! `dlc analyze`, the manifest) picks it up without new plumbing, and
//! no predictor can accidentally rebuild an analysis another one
//! already paid for.

use dl_analysis::ctx::AnalysisCtx;

use crate::combine::{combine_hybrid, HybridMode};
use crate::heuristic::Heuristic;

/// The indices of the loads a predictor flags as delinquent, sorted
/// ascending by instruction index.
pub type DelinquencySet = Vec<usize>;

/// A static delinquent-load predictor.
pub trait Predictor {
    /// Short stable identifier, suitable for table rows and manifests.
    fn name(&self) -> &'static str;

    /// The loads this predictor flags, given the shared analyses of
    /// one program. Implementations must read every analysis through
    /// `ctx` (never rebuild one) so the pass caches do their job.
    fn predict(&self, ctx: &AnalysisCtx) -> DelinquencySet;
}

impl Predictor for Heuristic {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    /// The paper's classifier over the ctx's patterns. Uses the ctx's
    /// attached profile when present; without one every load counts as
    /// hot (the heuristic's `u64::MAX` convention for missing counts).
    fn predict(&self, ctx: &AnalysisCtx) -> DelinquencySet {
        self.classify(ctx.analysis(), ctx.profile().unwrap_or(&[]))
    }
}

/// Combines two predictors' sets per [`HybridMode`] — ∩ for precision,
/// ∪ for coverage. The two legs share the ctx, so the hybrid costs no
/// more analysis than its more demanding leg.
///
/// # Example
///
/// ```
/// use dl_mips::parse::parse_asm;
/// use dl_analysis::ctx::AnalysisCtx;
/// use dl_core::combine::HybridMode;
/// use dl_core::predictor::{Hybrid, Predictor};
/// use dl_core::Heuristic;
///
/// let ctx = AnalysisCtx::new(
///     parse_asm("main:\n\tlw $t0, 16($sp)\n\tlw $t1, 8($t0)\n\tjr $ra\n").unwrap(),
/// );
/// let both = Hybrid::new(Heuristic::default(), Heuristic::default(), HybridMode::Intersect);
/// assert_eq!(both.predict(&ctx), Heuristic::default().predict(&ctx));
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid<A, B> {
    left: A,
    right: B,
    mode: HybridMode,
}

impl<A: Predictor, B: Predictor> Hybrid<A, B> {
    /// A hybrid of `left` and `right` combined per `mode`.
    #[must_use]
    pub fn new(left: A, right: B, mode: HybridMode) -> Self {
        Hybrid { left, right, mode }
    }
}

impl<A: Predictor, B: Predictor> Predictor for Hybrid<A, B> {
    fn name(&self) -> &'static str {
        match self.mode {
            HybridMode::Intersect => "hybrid-intersect",
            HybridMode::Union => "hybrid-union",
        }
    }

    fn predict(&self, ctx: &AnalysisCtx) -> DelinquencySet {
        combine_hybrid(&self.left.predict(ctx), &self.right.predict(ctx), self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn ctx() -> AnalysisCtx {
        // A pointer chase the heuristic flags.
        AnalysisCtx::new(
            parse_asm(
                "main:\n\
                 \tlw $t0, 16($sp)\n\
                 \tlw $t1, 8($t0)\n\
                 \tlw $t2, 12($t1)\n\
                 \tjr $ra\n",
            )
            .unwrap(),
        )
    }

    #[test]
    fn heuristic_predict_matches_classify() {
        let ctx = ctx();
        let h = Heuristic::default();
        let direct = h.classify(ctx.analysis(), &[]);
        assert_eq!(h.predict(&ctx), direct);
        assert!(!h.predict(&ctx).is_empty());
        assert_eq!(h.name(), "heuristic");
    }

    #[test]
    fn heuristic_predict_uses_attached_profile() {
        let ctx = ctx();
        let h = Heuristic::default();
        // A cold profile suppresses the frequency classes exactly like
        // passing the counts directly.
        let cold = vec![1u64; ctx.program().insts.len()];
        let via_ctx = h.predict(&ctx.with_profile(&cold));
        let direct = h.classify(ctx.analysis(), &cold);
        assert_eq!(via_ctx, direct);
    }

    #[test]
    fn hybrid_modes_combine_and_name() {
        let ctx = ctx();
        let h = Heuristic::default;
        let inter = Hybrid::new(h(), h().with_threshold(9.0), HybridMode::Intersect);
        let union = Hybrid::new(h(), h().with_threshold(9.0), HybridMode::Union);
        // A sky-high threshold empties one leg: ∩ empties, ∪ keeps.
        assert!(inter.predict(&ctx).is_empty());
        assert_eq!(union.predict(&ctx), h().predict(&ctx));
        assert_eq!(inter.name(), "hybrid-intersect");
        assert_eq!(union.name(), "hybrid-union");
    }
}
