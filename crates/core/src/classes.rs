//! Class membership: the aggregate classes AG1–AG9 (paper §7.3) and the
//! fine-grained H1 register-usage classes (paper Table 3).

use dl_analysis::pattern::Ap;
use dl_mips::reg::BaseReg;

/// The nine aggregate classes of the paper's heuristic (Table 5).
///
/// AG1–AG7 are structural (testable on a single address pattern);
/// AG8/AG9 are execution-frequency classes (testable on a load's
/// dynamic execution count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AgClass {
    /// `sp` and `gp` both used at least once (from H1).
    Ag1,
    /// Only `sp` among the basic registers, used two or more times
    /// (from H1).
    Ag2,
    /// Multiplication or shift present (from H2).
    Ag3,
    /// One level of dereferencing (from H3).
    Ag4,
    /// Two levels of dereferencing (from H3).
    Ag5,
    /// Three or more levels of dereferencing (from H3).
    Ag6,
    /// Recurrence present (from H4).
    Ag7,
    /// Seldom executed: 100–1000 dynamic executions (from H5).
    Ag8,
    /// Rarely executed: fewer than 100 dynamic executions (from H5).
    Ag9,
}

impl AgClass {
    /// All nine classes, in order.
    pub const ALL: [AgClass; 9] = [
        AgClass::Ag1,
        AgClass::Ag2,
        AgClass::Ag3,
        AgClass::Ag4,
        AgClass::Ag5,
        AgClass::Ag6,
        AgClass::Ag7,
        AgClass::Ag8,
        AgClass::Ag9,
    ];

    /// Zero-based position (AG1 = 0).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The paper's name for the class.
    #[must_use]
    pub fn name(self) -> &'static str {
        [
            "AG1", "AG2", "AG3", "AG4", "AG5", "AG6", "AG7", "AG8", "AG9",
        ][self.index()]
    }

    /// Short description of the class feature (mirrors Table 5).
    #[must_use]
    pub fn feature(self) -> &'static str {
        [
            "sp, gp",
            "sp two or more times, alone",
            "multiplication / shifts",
            "dereferenced once",
            "dereferenced twice",
            "dereferenced thrice",
            "recurrent",
            "seldom executed",
            "rarely executed",
        ][self.index()]
    }
}

impl std::fmt::Display for AgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution-count boundaries of the H5 frequency classes.
pub mod frequency {
    /// Below this many executions a load is "rarely executed" (AG9).
    pub const RARE_BELOW: u64 = 100;
    /// Below this many executions (and at least [`RARE_BELOW`]) a load
    /// is "seldom executed" (AG8).
    pub const SELDOM_BELOW: u64 = 1000;
}

/// Structural classes (AG1–AG7) a single address pattern belongs to.
///
/// # Example
///
/// ```
/// use dl_analysis::Ap;
/// use dl_core::classes::{pattern_classes, AgClass};
/// use dl_mips::reg::BaseReg;
///
/// // (sp+4) + ((sp+8) << 2): array indexing through stack slots.
/// let ap = Ap::add(
///     Ap::deref(Ap::add(Ap::Base(BaseReg::Sp), Ap::Const(4))),
///     Ap::shl(Ap::deref(Ap::add(Ap::Base(BaseReg::Sp), Ap::Const(8))), Ap::Const(2)),
/// );
/// let cls = pattern_classes(&ap);
/// assert!(cls.contains(&AgClass::Ag2)); // sp twice, alone
/// assert!(cls.contains(&AgClass::Ag3)); // shift
/// assert!(cls.contains(&AgClass::Ag4)); // one deref level
/// ```
#[must_use]
pub fn pattern_classes(ap: &Ap) -> Vec<AgClass> {
    let mut out = Vec::new();
    let sp = ap.count_base(BaseReg::Sp);
    let gp = ap.count_base(BaseReg::Gp);
    let param = ap.count_base(BaseReg::Param);
    let ret = ap.count_base(BaseReg::Ret);
    if sp >= 1 && gp >= 1 {
        out.push(AgClass::Ag1);
    }
    if sp >= 2 && gp == 0 && param == 0 && ret == 0 {
        out.push(AgClass::Ag2);
    }
    if ap.has_mul_or_shift() {
        out.push(AgClass::Ag3);
    }
    match ap.deref_nesting() {
        0 => {}
        1 => out.push(AgClass::Ag4),
        2 => out.push(AgClass::Ag5),
        _ => out.push(AgClass::Ag6),
    }
    if ap.has_recurrence() {
        out.push(AgClass::Ag7);
    }
    out
}

/// The execution-frequency class (AG8/AG9) of a load executed
/// `exec_count` times, if any.
#[must_use]
pub fn frequency_class(exec_count: u64) -> Option<AgClass> {
    if exec_count < frequency::RARE_BELOW {
        Some(AgClass::Ag9)
    } else if exec_count < frequency::SELDOM_BELOW {
        Some(AgClass::Ag8)
    } else {
        None
    }
}

/// One of the fifteen fine-grained H1 register-usage classes
/// (paper Table 3), identified by the exact occurrence counts of `sp`
/// and `gp` in an address pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct H1Class(u8);

impl H1Class {
    /// Classifies a `(sp, gp)` occurrence pair per Table 3.
    #[must_use]
    pub fn of_counts(sp: u32, gp: u32) -> H1Class {
        let n = match (sp, gp) {
            (0, 1) => 1,
            (0, 2) => 2,
            (0, 3) => 3,
            (1, 0) => 4,
            (1, 1) => 5,
            (1, 2) => 6,
            (2, 0) => 7,
            (2, 1) => 8,
            (3, 0) => 9,
            (3, 1) => 10,
            (4, 0) => 11,
            (4, 3) => 12,
            (5, 0) => 13,
            (6, 3) => 14,
            _ => 15,
        };
        H1Class(n)
    }

    /// Classifies an address pattern.
    #[must_use]
    pub fn of_pattern(ap: &Ap) -> H1Class {
        H1Class::of_counts(ap.count_base(BaseReg::Sp), ap.count_base(BaseReg::Gp))
    }

    /// The Table 3 class number (1–15).
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// All fifteen classes.
    pub fn all() -> impl Iterator<Item = H1Class> {
        (1..=15).map(H1Class)
    }

    /// The feature column of Table 3.
    #[must_use]
    pub fn feature(self) -> &'static str {
        [
            "gp=1",
            "gp=2",
            "gp=3",
            "sp=1",
            "sp=1, gp=1",
            "sp=1, gp=2",
            "sp=2",
            "sp=2, gp=1",
            "sp=3",
            "sp=3, gp=1",
            "sp=4",
            "sp=4, gp=3",
            "sp=5",
            "sp=6, gp=3",
            "any others",
        ][self.0 as usize - 1]
    }
}

impl std::fmt::Display for H1Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H1.{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_analysis::Ap;

    fn sp() -> Ap {
        Ap::Base(BaseReg::Sp)
    }
    fn gp() -> Ap {
        Ap::Base(BaseReg::Gp)
    }

    #[test]
    fn ag1_needs_both_sp_and_gp() {
        let both = Ap::add(sp(), gp());
        assert!(pattern_classes(&both).contains(&AgClass::Ag1));
        let only_sp = Ap::add(sp(), Ap::Const(4));
        assert!(!pattern_classes(&only_sp).contains(&AgClass::Ag1));
    }

    #[test]
    fn ag2_needs_sp_twice_alone() {
        let twice = Ap::add(Ap::deref(Ap::add(sp(), Ap::Const(4))), sp());
        assert!(pattern_classes(&twice).contains(&AgClass::Ag2));
        let once = Ap::add(sp(), Ap::Const(4));
        assert!(!pattern_classes(&once).contains(&AgClass::Ag2));
        // sp twice but gp present: AG1, not AG2.
        let mixed = Ap::add(Ap::add(sp(), sp()), gp());
        let cls = pattern_classes(&mixed);
        assert!(cls.contains(&AgClass::Ag1));
        assert!(!cls.contains(&AgClass::Ag2));
    }

    #[test]
    fn deref_levels_map_to_ag4_5_6() {
        let l0 = Ap::add(sp(), Ap::Const(4));
        let l1 = Ap::deref(l0.clone());
        let l2 = Ap::deref(Ap::add(l1.clone(), Ap::Const(8)));
        let l3 = Ap::deref(Ap::add(l2.clone(), Ap::Const(8)));
        let l4 = Ap::deref(l3.clone());
        let has = |ap: &Ap, c: AgClass| pattern_classes(ap).contains(&c);
        assert!(!has(&l0, AgClass::Ag4));
        assert!(has(&l1, AgClass::Ag4));
        assert!(has(&l2, AgClass::Ag5));
        assert!(has(&l3, AgClass::Ag6));
        // Four or more levels clamp to AG6.
        assert!(has(&l4, AgClass::Ag6));
        assert!(!has(&l4, AgClass::Ag5));
    }

    #[test]
    fn ag7_recurrence() {
        let rec = Ap::add(Ap::Rec, Ap::Const(4));
        assert!(pattern_classes(&rec).contains(&AgClass::Ag7));
    }

    #[test]
    fn frequency_classes() {
        assert_eq!(frequency_class(0), Some(AgClass::Ag9));
        assert_eq!(frequency_class(99), Some(AgClass::Ag9));
        assert_eq!(frequency_class(100), Some(AgClass::Ag8));
        assert_eq!(frequency_class(999), Some(AgClass::Ag8));
        assert_eq!(frequency_class(1000), None);
        assert_eq!(frequency_class(1_000_000), None);
    }

    #[test]
    fn h1_class_numbers() {
        assert_eq!(H1Class::of_counts(1, 1).number(), 5);
        assert_eq!(H1Class::of_counts(2, 0).number(), 7);
        assert_eq!(H1Class::of_counts(0, 0).number(), 15);
        assert_eq!(H1Class::of_counts(7, 2).number(), 15);
        assert_eq!(H1Class::of_counts(6, 3).number(), 14);
    }

    #[test]
    fn h1_of_pattern() {
        let ap = Ap::add(Ap::deref(Ap::add(sp(), Ap::Const(4))), gp());
        assert_eq!(H1Class::of_pattern(&ap).number(), 5);
    }

    #[test]
    fn class_metadata() {
        assert_eq!(AgClass::Ag3.name(), "AG3");
        assert_eq!(AgClass::Ag6.index(), 5);
        assert_eq!(AgClass::ALL.len(), 9);
        assert_eq!(H1Class::all().count(), 15);
        assert_eq!(H1Class::of_counts(0, 2).feature(), "gp=2");
    }
}
