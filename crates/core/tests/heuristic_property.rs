//! Property tests over the heuristic: threshold monotonicity, weight
//! monotonicity, and classification consistency.

use dl_analysis::extract::{LoadInfo, ProgramAnalysis};
use dl_analysis::Ap;
use dl_core::{AgClass, Heuristic, Weights};
use dl_mips::reg::BaseReg;
use dl_testkit::{cases, Rng};

fn arb_pattern_depth(rng: &mut Rng, depth: usize) -> Ap {
    if depth == 0 || rng.chance(0.35) {
        return match rng.index(5) {
            0 => Ap::Const(rng.range_i64(-64, 64)),
            1 => Ap::Base(BaseReg::Sp),
            2 => Ap::Base(BaseReg::Gp),
            3 => Ap::Base(BaseReg::Param),
            _ => Ap::Rec,
        };
    }
    match rng.index(3) {
        0 => Ap::Add(
            Box::new(arb_pattern_depth(rng, depth - 1)),
            Box::new(arb_pattern_depth(rng, depth - 1)),
        ),
        1 => Ap::Shl(
            Box::new(arb_pattern_depth(rng, depth - 1)),
            Box::new(arb_pattern_depth(rng, depth - 1)),
        ),
        _ => Ap::Deref(Box::new(arb_pattern_depth(rng, depth - 1))),
    }
}

fn arb_pattern(rng: &mut Rng) -> Ap {
    arb_pattern_depth(rng, 3)
}

fn arb_load(rng: &mut Rng, index: usize) -> LoadInfo {
    LoadInfo {
        index,
        func: "f".into(),
        patterns: rng.vec_of(1, 4, arb_pattern),
        truncated: false,
    }
}

fn arb_analysis(rng: &mut Rng) -> (ProgramAnalysis, Vec<u64>) {
    let n = 1 + rng.index(11);
    let loads: Vec<LoadInfo> = (0..n).map(|i| arb_load(rng, i * 3)).collect();
    let max_index = loads.last().map_or(0, |l| l.index);
    let mut exec_counts = vec![0u64; max_index + 1];
    for l in &loads {
        exec_counts[l.index] = rng.range_u64(0, 2_000_000);
    }
    (ProgramAnalysis { loads }, exec_counts)
}

/// Raising δ never adds loads: Δ(δ₂) ⊆ Δ(δ₁) for δ₁ ≤ δ₂.
#[test]
fn threshold_monotonicity() {
    cases(256, 0x4e01, |rng| {
        let (analysis, execs) = arb_analysis(rng);
        let d1 = rng.range_f64(0.0, 0.5);
        let d2 = rng.range_f64(0.0, 0.5);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let loose: std::collections::BTreeSet<usize> = Heuristic::default()
            .with_threshold(lo)
            .classify(&analysis, &execs)
            .into_iter()
            .collect();
        let strict = Heuristic::default()
            .with_threshold(hi)
            .classify(&analysis, &execs);
        for i in strict {
            assert!(
                loose.contains(&i),
                "load {i} flagged at δ={hi} but not δ={lo}"
            );
        }
    });
}

/// Increasing any single class weight never decreases any φ score.
#[test]
fn weight_monotonicity() {
    cases(256, 0x4e02, |rng| {
        let (analysis, execs) = arb_analysis(rng);
        let class = *rng.pick(&AgClass::ALL);
        let bump = rng.range_f64(0.0, 1.0);
        let base = Heuristic::default();
        let mut w = Weights::paper();
        w.set(class, w.get(class) + bump);
        let bumped = Heuristic::default().with_weights(w);
        for load in &analysis.loads {
            let e = execs[load.index];
            assert!(bumped.score(load, e) >= base.score(load, e) - 1e-12);
        }
    });
}

/// φ is the max over patterns: adding a pattern can only raise it.
#[test]
fn adding_a_pattern_never_lowers_phi() {
    cases(256, 0x4e03, |rng| {
        let load = arb_load(rng, 0);
        let extra = arb_pattern(rng);
        let execs = rng.range_u64(1000, 1_000_000);
        let h = Heuristic::default();
        let before = h.score(&load, execs);
        let mut bigger = load;
        bigger.patterns.push(extra);
        assert!(h.score(&bigger, execs) >= before - 1e-12);
    });
}

/// The static-only variant is insensitive to execution counts.
#[test]
fn static_variant_ignores_execution_counts() {
    cases(256, 0x4e04, |rng| {
        let load = arb_load(rng, 0);
        let e1 = rng.range_u64(0, 10_000_000);
        let e2 = rng.range_u64(0, 10_000_000);
        let h = Heuristic::default().without_frequency_classes();
        assert_eq!(h.score(&load, e1), h.score(&load, e2));
    });
}

/// classify() is exactly {i : φ(i) > δ}.
#[test]
fn classify_agrees_with_scores() {
    cases(256, 0x4e05, |rng| {
        let (analysis, execs) = arb_analysis(rng);
        let h = Heuristic::default();
        let flagged: std::collections::BTreeSet<usize> =
            h.classify(&analysis, &execs).into_iter().collect();
        for load in &analysis.loads {
            let e = execs[load.index];
            assert_eq!(
                flagged.contains(&load.index),
                h.score(load, e) > h.threshold()
            );
        }
    });
}

/// Frequency classes only ever filter (never add) relative to the
/// static-only variant.
#[test]
fn frequency_classes_only_filter() {
    cases(256, 0x4e06, |rng| {
        let (analysis, execs) = arb_analysis(rng);
        let with: Vec<usize> = Heuristic::default().classify(&analysis, &execs);
        let without: std::collections::BTreeSet<usize> = Heuristic::default()
            .without_frequency_classes()
            .classify(&analysis, &execs)
            .into_iter()
            .collect();
        for i in with {
            assert!(without.contains(&i));
        }
    });
}
