//! Property tests over the heuristic: threshold monotonicity, weight
//! monotonicity, and classification consistency.

use proptest::prelude::*;

use dl_analysis::extract::{LoadInfo, ProgramAnalysis};
use dl_analysis::Ap;
use dl_core::{AgClass, Heuristic, Weights};
use dl_mips::reg::BaseReg;

fn arb_pattern() -> impl Strategy<Value = Ap> {
    let leaf = prop_oneof![
        (-64i64..64).prop_map(Ap::Const),
        Just(Ap::Base(BaseReg::Sp)),
        Just(Ap::Base(BaseReg::Gp)),
        Just(Ap::Base(BaseReg::Param)),
        Just(Ap::Rec),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ap::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ap::Shl(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Ap::Deref(Box::new(a))),
        ]
    })
}

fn arb_load(index: usize) -> impl Strategy<Value = LoadInfo> {
    prop::collection::vec(arb_pattern(), 1..4).prop_map(move |patterns| LoadInfo {
        index,
        func: "f".into(),
        patterns,
        truncated: false,
    })
}

fn arb_analysis() -> impl Strategy<Value = (ProgramAnalysis, Vec<u64>)> {
    prop::collection::vec(any::<prop::sample::Index>(), 1..12).prop_flat_map(|idxs| {
        let n = idxs.len();
        let loads: Vec<_> = (0..n).map(|i| arb_load(i * 3)).collect();
        let execs = prop::collection::vec(0u64..2_000_000, n);
        (loads, execs).prop_map(|(loads, execs)| {
            let max_index = loads.last().map_or(0, |l| l.index);
            let mut exec_counts = vec![0u64; max_index + 1];
            for (l, e) in loads.iter().zip(&execs) {
                exec_counts[l.index] = *e;
            }
            (ProgramAnalysis { loads }, exec_counts)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raising δ never adds loads: Δ(δ₂) ⊆ Δ(δ₁) for δ₁ ≤ δ₂.
    #[test]
    fn threshold_monotonicity((analysis, execs) in arb_analysis(),
                              d1 in 0.0f64..0.5, d2 in 0.0f64..0.5) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let loose: std::collections::BTreeSet<usize> =
            Heuristic::default().with_threshold(lo).classify(&analysis, &execs)
                .into_iter().collect();
        let strict = Heuristic::default().with_threshold(hi).classify(&analysis, &execs);
        for i in strict {
            prop_assert!(loose.contains(&i), "load {i} flagged at δ={hi} but not δ={lo}");
        }
    }

    /// Increasing any single class weight never decreases any φ score.
    #[test]
    fn weight_monotonicity((analysis, execs) in arb_analysis(),
                           class_idx in 0usize..9, bump in 0.0f64..1.0) {
        let base = Heuristic::default();
        let mut w = Weights::paper();
        let class = AgClass::ALL[class_idx];
        w.set(class, w.get(class) + bump);
        let bumped = Heuristic::default().with_weights(w);
        for load in &analysis.loads {
            let e = execs[load.index];
            prop_assert!(bumped.score(load, e) >= base.score(load, e) - 1e-12);
        }
    }

    /// φ is the max over patterns: adding a pattern can only raise it.
    #[test]
    fn adding_a_pattern_never_lowers_phi(load in arb_load(0), extra in arb_pattern(),
                                         execs in 1000u64..1_000_000) {
        let h = Heuristic::default();
        let before = h.score(&load, execs);
        let mut bigger = load;
        bigger.patterns.push(extra);
        prop_assert!(h.score(&bigger, execs) >= before - 1e-12);
    }

    /// The static-only variant is insensitive to execution counts.
    #[test]
    fn static_variant_ignores_execution_counts(load in arb_load(0),
                                               e1 in 0u64..10_000_000,
                                               e2 in 0u64..10_000_000) {
        let h = Heuristic::default().without_frequency_classes();
        prop_assert_eq!(h.score(&load, e1), h.score(&load, e2));
    }

    /// classify() is exactly {i : φ(i) > δ}.
    #[test]
    fn classify_agrees_with_scores((analysis, execs) in arb_analysis()) {
        let h = Heuristic::default();
        let flagged: std::collections::BTreeSet<usize> =
            h.classify(&analysis, &execs).into_iter().collect();
        for load in &analysis.loads {
            let e = execs[load.index];
            prop_assert_eq!(
                flagged.contains(&load.index),
                h.score(load, e) > h.threshold()
            );
        }
    }

    /// Frequency classes only ever filter (never add) relative to the
    /// static-only variant.
    #[test]
    fn frequency_classes_only_filter((analysis, execs) in arb_analysis()) {
        let with: Vec<usize> = Heuristic::default().classify(&analysis, &execs);
        let without: std::collections::BTreeSet<usize> = Heuristic::default()
            .without_frequency_classes()
            .classify(&analysis, &execs)
            .into_iter()
            .collect();
        for i in with {
            prop_assert!(without.contains(&i));
        }
    }
}
