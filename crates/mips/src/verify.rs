//! Assembly well-formedness verification.
//!
//! The pipeline used to accept any `Program` the compiler produced;
//! malformed codegen (a branch to a stale label, a read of a register
//! no path defines, a clobbered stack pointer) would surface only as
//! baffling simulator behaviour many layers later. This pass checks
//! the static contract a well-formed program obeys:
//!
//! 1. **Targets resolve** — every branch/jump target is a real
//!    instruction; conditional branches stay inside their function
//!    (the CFG layer treats escaping branch edges as absent, so such
//!    a branch silently corrupts every downstream analysis); `jal`
//!    lands on a function entry; `j` stays in-function or tail-calls
//!    a function entry.
//! 2. **Reads are defined** — no instruction reads a register that no
//!    instruction of the function ever writes, unless the calling
//!    convention provides it at entry (`$zero`, `$sp`, `$gp`, `$fp`,
//!    `$ra`, arguments `$a0–$a3`, callee-saved `$s0–$s7`). Calls
//!    define the return registers. The check is flow-insensitive, so
//!    it only reports registers that *cannot* be defined on any path
//!    — no false positives from branching definitions.
//! 3. **Stack discipline** — `$sp` is only ever adjusted by
//!    `addiu $sp, $sp, imm` (never loaded or computed), and a
//!    function's first adjustment in program order allocates
//!    (negative), not deallocates.
//!
//! Debug builds of the experiment pipeline run this on every compiled
//! benchmark; release builds skip it.

use std::fmt;

use crate::inst::Inst;
use crate::program::Program;
use crate::reg::Reg;

/// One well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Instruction index the violation is at (`None` for
    /// function-level findings).
    pub inst: Option<usize>,
    /// Name of the function containing it.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(i) => write!(f, "[{}+{i}] {}", self.func, self.message),
            None => write!(f, "[{}] {}", self.func, self.message),
        }
    }
}

/// Registers whose values the o32 calling convention provides at
/// function entry: reading them before writing is legitimate.
const ENTRY_REGS: [Reg; 17] = [
    Reg::Zero,
    Reg::Sp,
    Reg::Gp,
    Reg::Fp,
    Reg::Ra,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
];

/// Verifies every function of `program`; returns all violations found.
///
/// # Errors
///
/// Returns the non-empty violation list when the program is malformed.
pub fn verify_program(program: &Program) -> Result<(), Vec<Violation>> {
    let n = program.insts.len();
    let func_starts: Vec<usize> = program.symbols.funcs().iter().map(|f| f.start).collect();
    let mut violations = Vec::new();
    for f in program.symbols.funcs() {
        if f.start >= f.end || f.end > n {
            continue; // empty or malformed symbol ranges are not codegen's fault
        }
        verify_func(
            program,
            &f.name,
            f.start,
            f.end,
            &func_starts,
            &mut violations,
        );
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn verify_func(
    program: &Program,
    name: &str,
    lo: usize,
    hi: usize,
    func_starts: &[usize],
    out: &mut Vec<Violation>,
) {
    let n = program.insts.len();
    let mut report = |inst: Option<usize>, message: String| {
        out.push(Violation {
            inst,
            func: name.to_owned(),
            message,
        });
    };

    // Pass 1: every register any instruction of the function defines.
    let mut defined = [false; 32];
    for r in ENTRY_REGS {
        defined[r as usize] = true;
    }
    for idx in lo..hi {
        let inst = &program.insts[idx];
        if let Some(r) = inst.def() {
            defined[r as usize] = true;
        }
        if inst.is_call() {
            defined[Reg::V0 as usize] = true;
            defined[Reg::V1 as usize] = true;
        }
        if matches!(inst, Inst::Syscall) {
            defined[Reg::V0 as usize] = true;
        }
    }

    // Pass 2: per-instruction checks.
    let mut first_sp_adjust: Option<i16> = None;
    for idx in lo..hi {
        let inst = &program.insts[idx];
        // (1) Targets resolve.
        if let Some(t) = inst.target() {
            let ti = t.index();
            if ti >= n {
                report(
                    Some(idx - lo),
                    format!(
                        "{} targets instruction {ti}, program has {n}",
                        inst.mnemonic()
                    ),
                );
            } else {
                let local = (lo..hi).contains(&ti);
                let entry = func_starts.binary_search(&ti).is_ok();
                match inst {
                    Inst::Jal { .. } if !entry => {
                        report(
                            Some(idx - lo),
                            format!("jal targets {ti}, not a function entry"),
                        );
                    }
                    Inst::J { .. } if !local && !entry => {
                        report(
                            Some(idx - lo),
                            format!("j escapes the function to {ti}, not a function entry"),
                        );
                    }
                    _ if inst.is_branch() && !local => {
                        report(
                            Some(idx - lo),
                            format!(
                                "{} branches outside its function (to {ti})",
                                inst.mnemonic()
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        // (2) Reads of never-defined registers.
        for r in inst.uses() {
            if !defined[r as usize] {
                report(
                    Some(idx - lo),
                    format!(
                        "{} reads {r}, which nothing in the function defines",
                        inst.mnemonic()
                    ),
                );
            }
        }
        // (3) Stack-pointer discipline.
        if inst.def() == Some(Reg::Sp) {
            match *inst {
                Inst::Addiu {
                    rt: Reg::Sp,
                    rs: Reg::Sp,
                    imm,
                } => {
                    if first_sp_adjust.is_none() {
                        first_sp_adjust = Some(imm);
                    }
                }
                _ => report(
                    Some(idx - lo),
                    format!(
                        "$sp written by {}, not `addiu $sp, $sp, imm`",
                        inst.mnemonic()
                    ),
                ),
            }
        }
    }
    if let Some(imm) = first_sp_adjust {
        if imm > 0 {
            report(
                None,
                format!("first $sp adjustment (+{imm}) deallocates before any allocation"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_asm;

    fn verify(src: &str) -> Result<(), Vec<Violation>> {
        verify_program(&parse_asm(src).unwrap())
    }

    #[test]
    fn well_formed_program_passes() {
        verify(
            "main:\n\
             \taddiu $sp, $sp, -16\n\
             \tsw $s0, 0($sp)\n\
             \tli $t0, 4\n\
             .Lh:\n\
             \tlw $t1, 0($gp)\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lh\n\
             \tjal helper\n\
             \taddu $t2, $v0, $zero\n\
             \tlw $s0, 0($sp)\n\
             \taddiu $sp, $sp, 16\n\
             \tjr $ra\n\
             helper:\n\
             \tli $v0, 1\n\
             \tjr $ra\n",
        )
        .unwrap();
    }

    #[test]
    fn read_of_never_defined_temp_is_flagged() {
        let err = verify(
            "main:\n\
             \taddu $t0, $t1, $t2\n\
             \tjr $ra\n",
        )
        .unwrap_err();
        assert_eq!(err.len(), 2, "both $t1 and $t2 are undefined: {err:?}");
        assert!(err[0].message.contains("reads"));
        assert!(err[0].to_string().contains("main"));
    }

    #[test]
    fn convention_registers_are_fine_to_read() {
        verify(
            "main:\n\
             \tlw $t0, 0($a0)\n\
             \tsw $s3, 4($sp)\n\
             \taddu $t1, $gp, $a1\n\
             \tjr $ra\n",
        )
        .unwrap();
    }

    #[test]
    fn call_defines_return_registers() {
        verify(
            "main:\n\
             \tjal f\n\
             \taddu $t0, $v0, $v1\n\
             \tjr $ra\n\
             f:\n\
             \tli $v0, 1\n\
             \tjr $ra\n",
        )
        .unwrap();
    }

    #[test]
    fn branch_escaping_function_is_flagged() {
        let err = verify(
            "main:\n\
             \tbgtz $a0, .Lx\n\
             \tjr $ra\n\
             f:\n\
             .Lx:\n\
             \tjr $ra\n",
        )
        .unwrap_err();
        assert!(err.iter().any(|v| v.message.contains("branches outside")));
    }

    #[test]
    fn tail_call_jump_to_entry_is_fine() {
        verify(
            "main:\n\
             \tj f\n\
             f:\n\
             \tjr $ra\n",
        )
        .unwrap();
    }

    #[test]
    fn sp_computed_by_addu_is_flagged() {
        let err = verify(
            "main:\n\
             \taddu $sp, $sp, $a0\n\
             \tjr $ra\n",
        )
        .unwrap_err();
        assert!(err.iter().any(|v| v.message.contains("$sp written by")));
    }

    #[test]
    fn deallocation_first_is_flagged() {
        let err = verify(
            "main:\n\
             \taddiu $sp, $sp, 16\n\
             \tjr $ra\n",
        )
        .unwrap_err();
        assert!(err.iter().any(|v| v.message.contains("deallocates")));
    }
}
