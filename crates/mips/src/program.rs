//! The [`Program`] container: instructions, symbol table, and the
//! initial data segment image.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::Inst;
use crate::layout;

/// A function symbol: a named, contiguous range of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSym {
    /// Function name.
    pub name: String,
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
}

impl FuncSym {
    /// Returns `true` if instruction `index` belongs to this function.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        (self.start..self.end).contains(&index)
    }
}

/// A global data symbol in the static data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSym {
    /// Symbol name.
    pub name: String,
    /// Absolute address (within the data segment).
    pub addr: u32,
    /// Size in bytes.
    pub size: u32,
}

/// Function and data symbols for a [`Program`].
///
/// Plays the role of the executable's symbol table, which the paper's
/// static BDH implementation consults for type/offset information.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    funcs: Vec<FuncSym>,
    globals: Vec<GlobalSym>,
    by_name: BTreeMap<String, usize>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function symbol. Functions must be added in program order
    /// with non-overlapping ranges.
    ///
    /// # Panics
    ///
    /// Panics if the name is already present or the range overlaps the
    /// previous function.
    pub fn add_func(&mut self, name: impl Into<String>, start: usize, end: usize) {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate function symbol `{name}`"
        );
        if let Some(prev) = self.funcs.last() {
            assert!(
                start >= prev.end,
                "function `{name}` overlaps `{}`",
                prev.name
            );
        }
        self.by_name.insert(name.clone(), self.funcs.len());
        self.funcs.push(FuncSym { name, start, end });
    }

    /// Adds a global data symbol.
    pub fn add_global(&mut self, name: impl Into<String>, addr: u32, size: u32) {
        self.globals.push(GlobalSym {
            name: name.into(),
            addr,
            size,
        });
    }

    /// All function symbols, in program order.
    #[must_use]
    pub fn funcs(&self) -> &[FuncSym] {
        &self.funcs
    }

    /// All global symbols.
    #[must_use]
    pub fn globals(&self) -> &[GlobalSym] {
        &self.globals
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn func(&self, name: &str) -> Option<&FuncSym> {
        self.by_name.get(name).map(|&i| &self.funcs[i])
    }

    /// Finds the function containing instruction `index`.
    #[must_use]
    pub fn func_at(&self, index: usize) -> Option<&FuncSym> {
        // Functions are sorted by range; binary-search the start points.
        let pos = self.funcs.partition_point(|f| f.start <= index);
        pos.checked_sub(1)
            .map(|p| &self.funcs[p])
            .filter(|f| f.contains(index))
    }

    /// Looks up a global by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&GlobalSym> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Finds the global containing address `addr`, if any.
    #[must_use]
    pub fn global_at(&self, addr: u32) -> Option<&GlobalSym> {
        self.globals
            .iter()
            .find(|g| addr >= g.addr && addr < g.addr + g.size.max(1))
    }
}

/// A complete executable program: text, symbols, and the initial data
/// image.
///
/// # Example
///
/// ```
/// use dl_mips::{AsmBuilder, Inst, Reg};
/// let mut b = AsmBuilder::new();
/// b.begin_func("main");
/// b.push(Inst::Jr { rs: Reg::Ra });
/// b.end_func();
/// let p = b.finish("main").unwrap();
/// assert_eq!(p.symbols.func("main").unwrap().start, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The instruction stream (index `i` lives at `pc_of_index(i)`).
    pub insts: Vec<Inst>,
    /// Function and global symbols.
    pub symbols: SymbolTable,
    /// Initial contents of the data segment, loaded at
    /// [`layout::DATA_BASE`].
    pub data: Vec<u8>,
    /// Instruction index where execution starts.
    pub entry: usize,
}

impl Program {
    /// Total number of static load instructions (the paper's Λ).
    #[must_use]
    pub fn static_load_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_load()).count()
    }

    /// Indices of all static load instructions.
    #[must_use]
    pub fn load_sites(&self) -> Vec<usize> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_load())
            .map(|(idx, _)| idx)
            .collect()
    }

    /// The program counter of instruction `index`.
    #[must_use]
    pub fn pc(&self, index: usize) -> u32 {
        layout::pc_of_index(index)
    }

    /// Renders the program as assembly text (the `objdump`-style view
    /// that the analysis conceptually consumes). Parseable back with
    /// [`crate::parse::parse_asm`].
    #[must_use]
    pub fn to_asm(&self) -> String {
        let mut out = String::new();
        if let Some(f) = self.symbols.func_at(self.entry) {
            out.push_str(&format!("\t.entry {}\n", f.name));
        }
        out.push_str("\t.text\n");
        // Collect label targets so we can emit local labels.
        let mut is_target = vec![false; self.insts.len() + 1];
        for inst in &self.insts {
            if let Some(t) = inst.target() {
                if t.index() <= self.insts.len() {
                    is_target[t.index()] = true;
                }
            }
        }
        for (idx, inst) in self.insts.iter().enumerate() {
            if let Some(f) = self.symbols.funcs().iter().find(|f| f.start == idx) {
                out.push_str(&format!("{}:\n", f.name));
            }
            if is_target[idx] {
                out.push_str(&format!(".L{idx}:\n"));
            }
            out.push_str(&format!("\t{inst}\n"));
        }
        if is_target[self.insts.len()] {
            out.push_str(&format!(".L{}:\n", self.insts.len()));
        }
        if !self.symbols.globals().is_empty() {
            out.push_str("\t.data\n");
            for g in self.symbols.globals() {
                out.push_str(&format!("\t.global {} {:#x} {}\n", g.name, g.addr, g.size));
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_asm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Label;
    use crate::reg::Reg;

    fn sample() -> Program {
        let insts = vec![
            Inst::Addiu {
                rt: Reg::T0,
                rs: Reg::Zero,
                imm: 5,
            },
            Inst::Lw {
                rt: Reg::T1,
                base: Reg::Sp,
                off: 4,
            },
            Inst::Bne {
                rs: Reg::T0,
                rt: Reg::Zero,
                target: Label(1),
            },
            Inst::Jr { rs: Reg::Ra },
            Inst::Lw {
                rt: Reg::V0,
                base: Reg::Gp,
                off: 0,
            },
            Inst::Jr { rs: Reg::Ra },
        ];
        let mut symbols = SymbolTable::new();
        symbols.add_func("main", 0, 4);
        symbols.add_func("helper", 4, 6);
        symbols.add_global("table", layout::DATA_BASE, 64);
        Program {
            insts,
            symbols,
            data: vec![0; 64],
            entry: 0,
        }
    }

    #[test]
    fn load_counting() {
        let p = sample();
        assert_eq!(p.static_load_count(), 2);
        assert_eq!(p.load_sites(), vec![1, 4]);
    }

    #[test]
    fn func_lookup() {
        let p = sample();
        assert_eq!(p.symbols.func("main").unwrap().start, 0);
        assert_eq!(p.symbols.func_at(3).unwrap().name, "main");
        assert_eq!(p.symbols.func_at(4).unwrap().name, "helper");
        assert_eq!(p.symbols.func_at(5).unwrap().name, "helper");
        assert!(p.symbols.func_at(6).is_none());
    }

    #[test]
    fn global_lookup() {
        let p = sample();
        assert_eq!(p.symbols.global("table").unwrap().size, 64);
        assert_eq!(
            p.symbols.global_at(layout::DATA_BASE + 63).unwrap().name,
            "table"
        );
        assert!(p.symbols.global_at(layout::DATA_BASE + 64).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate function symbol")]
    fn duplicate_function_panics() {
        let mut s = SymbolTable::new();
        s.add_func("f", 0, 1);
        s.add_func("f", 1, 2);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_function_panics() {
        let mut s = SymbolTable::new();
        s.add_func("f", 0, 4);
        s.add_func("g", 2, 6);
    }

    #[test]
    fn asm_text_contains_labels_and_symbols() {
        let p = sample();
        let asm = p.to_asm();
        assert!(asm.contains("main:"));
        assert!(asm.contains("helper:"));
        assert!(asm.contains(".L1:"));
        assert!(asm.contains("lw $t1, 4($sp)"));
        assert!(asm.contains(".global table"));
    }
}
