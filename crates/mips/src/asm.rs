//! [`AsmBuilder`]: a programmatic assembler with symbolic labels,
//! function bookkeeping, and data-segment allocation.
//!
//! The MiniC code generator and hand-written test programs use this to
//! construct [`Program`]s. Labels handed out by [`AsmBuilder::new_label`]
//! are symbolic until [`AsmBuilder::finish`] patches every branch/jump
//! target to a concrete instruction index.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::{Inst, Label};
use crate::layout;
use crate::program::{Program, SymbolTable};
use crate::reg::Reg;

/// Errors produced when finalizing an [`AsmBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`AsmBuilder::bind`].
    UnboundLabel(u32),
    /// A call referenced a function that was never defined.
    UndefinedFunction(String),
    /// The requested entry function does not exist.
    NoEntry(String),
    /// `begin_func`/`end_func` were not properly paired.
    UnclosedFunction(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(id) => write!(f, "label {id} was never bound"),
            AsmError::UndefinedFunction(n) => write!(f, "call to undefined function `{n}`"),
            AsmError::NoEntry(n) => write!(f, "entry function `{n}` not found"),
            AsmError::UnclosedFunction(n) => write!(f, "function `{n}` was never closed"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Incrementally builds a [`Program`].
///
/// # Example
///
/// ```
/// use dl_mips::{asm::AsmBuilder, inst::Inst, reg::Reg};
///
/// let mut b = AsmBuilder::new();
/// b.begin_func("main");
/// let done = b.new_label();
/// b.li(Reg::T0, 3);
/// b.push(Inst::Blez { rs: Reg::T0, target: done });
/// b.push(Inst::Addiu { rt: Reg::T0, rs: Reg::T0, imm: -1 });
/// b.bind(done);
/// b.push(Inst::Jr { rs: Reg::Ra });
/// b.end_func();
/// let p = b.finish("main").unwrap();
/// assert!(p.insts.len() >= 3);
/// ```
#[derive(Debug, Default)]
pub struct AsmBuilder {
    insts: Vec<Inst>,
    // Symbolic label id -> bound instruction index.
    bindings: BTreeMap<u32, usize>,
    next_label: u32,
    // Instruction indices whose `target` is a symbolic label id.
    label_fixups: Vec<usize>,
    // Call sites awaiting function resolution.
    call_fixups: Vec<(usize, String)>,
    funcs: Vec<(String, usize, usize)>,
    open_func: Option<(String, usize)>,
    data: Vec<u8>,
    globals: Vec<(String, u32, u32)>,
}

impl AsmBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Starts a new function named `name`.
    ///
    /// # Panics
    ///
    /// Panics if another function is still open.
    pub fn begin_func(&mut self, name: impl Into<String>) {
        let name = name.into();
        assert!(
            self.open_func.is_none(),
            "begin_func(`{name}`) while another function is open"
        );
        self.open_func = Some((name, self.insts.len()));
    }

    /// Closes the currently open function.
    ///
    /// # Panics
    ///
    /// Panics if no function is open.
    pub fn end_func(&mut self) {
        let (name, start) = self.open_func.take().expect("end_func without begin_func");
        self.funcs.push((name, start, self.insts.len()));
    }

    /// Allocates a fresh, unbound symbolic label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.bindings.insert(label.0, self.insts.len());
        assert!(prev.is_none(), "label {label} bound twice");
    }

    /// Emits one instruction, returning its index. Branch/jump targets
    /// inside `inst` must be labels from [`Self::new_label`]; use
    /// [`Self::call`] for direct calls.
    pub fn push(&mut self, inst: Inst) -> usize {
        let idx = self.insts.len();
        if inst.target().is_some() {
            self.label_fixups.push(idx);
        }
        self.insts.push(inst);
        idx
    }

    /// Emits a `jal` to the named function (resolved at finish time).
    pub fn call(&mut self, func: impl Into<String>) -> usize {
        let idx = self.insts.len();
        self.insts.push(Inst::Jal { target: Label(0) });
        self.call_fixups.push((idx, func.into()));
        idx
    }

    /// Emits the shortest sequence loading the 32-bit constant `value`
    /// into `rt` (`addiu`, `lui`, or `lui`+`ori`).
    pub fn li(&mut self, rt: Reg, value: i32) {
        if let Ok(imm) = i16::try_from(value) {
            self.push(Inst::Addiu {
                rt,
                rs: Reg::Zero,
                imm,
            });
        } else {
            let v = value as u32;
            let hi = (v >> 16) as u16;
            let lo = (v & 0xffff) as u16;
            self.push(Inst::Lui { rt, imm: hi });
            if lo != 0 {
                self.push(Inst::Ori {
                    rt,
                    rs: rt,
                    imm: lo,
                });
            }
        }
    }

    /// Emits `move rt, rs` (as `addu rt, rs, $zero`).
    pub fn mv(&mut self, rt: Reg, rs: Reg) {
        self.push(Inst::Addu {
            rd: rt,
            rs,
            rt: Reg::Zero,
        });
    }

    /// Emits code computing the address of a global into `rt`,
    /// preferring `$gp`-relative addressing when the offset fits in a
    /// signed 16-bit immediate (as gcc does for small data).
    pub fn la(&mut self, rt: Reg, addr: u32) {
        let gp_off = addr as i64 - i64::from(layout::GP_VALUE);
        if let Ok(imm) = i16::try_from(gp_off) {
            self.push(Inst::Addiu {
                rt,
                rs: Reg::Gp,
                imm,
            });
        } else {
            self.li(rt, addr as i32);
        }
    }

    /// Reserves `size` bytes of zeroed global data (aligned to `align`),
    /// records the symbol, and returns its absolute address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_global(&mut self, name: impl Into<String>, size: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let pad = (align - (self.data.len() as u32 % align)) % align;
        self.data.extend(std::iter::repeat_n(0, pad as usize));
        let addr = layout::DATA_BASE + self.data.len() as u32;
        self.data.extend(std::iter::repeat_n(0, size as usize));
        self.globals.push((name.into(), addr, size));
        addr
    }

    /// Reserves and initializes a global array of words, returning its
    /// address.
    pub fn global_words(&mut self, name: impl Into<String>, words: &[i32]) -> u32 {
        let addr = self.alloc_global(name, (words.len() * 4) as u32, 4);
        let start = (addr - layout::DATA_BASE) as usize;
        for (i, w) in words.iter().enumerate() {
            self.data[start + 4 * i..start + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Writes a 32-bit word into already-allocated global data.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the allocated data segment or
    /// misaligned.
    pub fn poke_word(&mut self, addr: u32, value: i32) {
        assert!(addr.is_multiple_of(4), "poke_word at misaligned {addr:#x}");
        let off = (addr - layout::DATA_BASE) as usize;
        self.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Writes one byte into already-allocated global data.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the allocated data segment.
    pub fn poke_byte(&mut self, addr: u32, value: u8) {
        let off = (addr - layout::DATA_BASE) as usize;
        self.data[off] = value;
    }

    /// Finalizes the program with `entry` as the start function.
    ///
    /// # Errors
    ///
    /// Returns an error if a referenced label is unbound, a called
    /// function is undefined, a function is still open, or the entry
    /// function does not exist.
    pub fn finish(mut self, entry: &str) -> Result<Program, AsmError> {
        if let Some((name, _)) = &self.open_func {
            return Err(AsmError::UnclosedFunction(name.clone()));
        }
        // Patch symbolic labels to instruction indices.
        for &idx in &self.label_fixups {
            let sym = self.insts[idx].target().expect("fixup on non-branch");
            let bound = *self
                .bindings
                .get(&sym.0)
                .ok_or(AsmError::UnboundLabel(sym.0))?;
            self.insts[idx].set_target(Label(bound as u32));
        }
        // Patch calls to function entry points.
        for (idx, name) in &self.call_fixups {
            let func = self
                .funcs
                .iter()
                .find(|(n, _, _)| n == name)
                .ok_or_else(|| AsmError::UndefinedFunction(name.clone()))?;
            self.insts[*idx].set_target(Label(func.1 as u32));
        }
        let mut symbols = SymbolTable::new();
        let mut funcs = self.funcs.clone();
        funcs.sort_by_key(|(_, s, _)| *s);
        for (name, start, end) in funcs {
            symbols.add_func(name, start, end);
        }
        for (name, addr, size) in self.globals {
            symbols.add_global(name, addr, size);
        }
        let entry_idx = symbols
            .func(entry)
            .ok_or_else(|| AsmError::NoEntry(entry.to_owned()))?
            .start;
        Ok(Program {
            insts: self.insts,
            symbols,
            data: self.data,
            entry: entry_idx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_patching() {
        let mut b = AsmBuilder::new();
        b.begin_func("main");
        let top = b.new_label();
        b.bind(top);
        b.push(Inst::Addiu {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: -1,
        });
        b.push(Inst::Bgtz {
            rs: Reg::T0,
            target: top,
        });
        b.push(Inst::Jr { rs: Reg::Ra });
        b.end_func();
        let p = b.finish("main").unwrap();
        assert_eq!(p.insts[1].target(), Some(Label(0)));
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = AsmBuilder::new();
        b.begin_func("main");
        let l = b.new_label();
        b.push(Inst::J { target: l });
        b.end_func();
        assert_eq!(b.finish("main"), Err(AsmError::UnboundLabel(0)));
    }

    #[test]
    fn call_patching() {
        let mut b = AsmBuilder::new();
        b.begin_func("main");
        b.call("helper");
        b.push(Inst::Jr { rs: Reg::Ra });
        b.end_func();
        b.begin_func("helper");
        b.push(Inst::Jr { rs: Reg::Ra });
        b.end_func();
        let p = b.finish("main").unwrap();
        assert_eq!(p.insts[0].target(), Some(Label(2)));
    }

    #[test]
    fn undefined_call_is_error() {
        let mut b = AsmBuilder::new();
        b.begin_func("main");
        b.call("ghost");
        b.end_func();
        assert_eq!(
            b.finish("main"),
            Err(AsmError::UndefinedFunction("ghost".into()))
        );
    }

    #[test]
    fn li_small_and_large() {
        let mut b = AsmBuilder::new();
        b.begin_func("main");
        b.li(Reg::T0, 42);
        b.li(Reg::T1, 0x12345678);
        b.li(Reg::T2, 0x70000); // lo half is zero after shift? 0x70000 = hi 7, lo 0
        b.end_func();
        let p = b.finish("main").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Addiu {
                rt: Reg::T0,
                rs: Reg::Zero,
                imm: 42
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Lui {
                rt: Reg::T1,
                imm: 0x1234
            }
        );
        assert_eq!(
            p.insts[2],
            Inst::Ori {
                rt: Reg::T1,
                rs: Reg::T1,
                imm: 0x5678
            }
        );
        assert_eq!(
            p.insts[3],
            Inst::Lui {
                rt: Reg::T2,
                imm: 7
            }
        );
        assert_eq!(p.insts.len(), 4);
    }

    #[test]
    fn la_uses_gp_when_close() {
        let mut b = AsmBuilder::new();
        let addr = b.alloc_global("g", 16, 4);
        b.begin_func("main");
        b.la(Reg::T0, addr);
        b.end_func();
        let p = b.finish("main").unwrap();
        match p.insts[0] {
            Inst::Addiu { rs: Reg::Gp, .. } => {}
            other => panic!("expected gp-relative la, got {other}"),
        }
    }

    #[test]
    fn global_alignment_and_init() {
        let mut b = AsmBuilder::new();
        b.alloc_global("pad", 3, 1);
        let addr = b.global_words("tbl", &[1, -2, 3]);
        assert_eq!(addr % 4, 0);
        b.begin_func("main");
        b.push(Inst::Jr { rs: Reg::Ra });
        b.end_func();
        let p = b.finish("main").unwrap();
        let start = (addr - layout::DATA_BASE) as usize;
        assert_eq!(
            i32::from_le_bytes(p.data[start + 4..start + 8].try_into().unwrap()),
            -2
        );
        assert_eq!(p.symbols.global("tbl").unwrap().size, 12);
    }

    #[test]
    fn unclosed_function_is_error() {
        let mut b = AsmBuilder::new();
        b.begin_func("main");
        assert!(matches!(
            b.finish("main"),
            Err(AsmError::UnclosedFunction(_))
        ));
    }

    #[test]
    fn missing_entry_is_error() {
        let mut b = AsmBuilder::new();
        b.begin_func("f");
        b.push(Inst::Jr { rs: Reg::Ra });
        b.end_func();
        assert_eq!(b.finish("main"), Err(AsmError::NoEntry("main".into())));
    }
}
