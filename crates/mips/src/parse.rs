//! A parser for the textual assembly format produced by
//! [`crate::Program::to_asm`], also suitable for hand-written programs
//! in tests and examples.
//!
//! This is the "disassembler" entry point of the paper's pipeline: the
//! analysis can start from assembly text exactly as the original system
//! starts from `objdump` output.
//!
//! # Syntax
//!
//! ```text
//!         .entry main          # optional; defaults to first function
//!         .text
//! main:                        # function label (no leading dot)
//!         addiu $sp, $sp, -16
//! .Lloop:                      # local label (leading dot)
//!         lw    $t0, 4($sp)
//!         bgtz  $t0, .Lloop
//!         jr    $ra
//!         .data
//! table:  .word 1, 2, 3        # named, initialized global
//! buf:    .space 400           # named, zeroed global
//!         .global sym 0x10000000 64   # pre-placed symbol (to_asm form)
//! ```
//!
//! Comments run from `#` to end of line.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::{Inst, Label};
use crate::layout;
use crate::program::{Program, SymbolTable};
use crate::reg::Reg;

/// A parse failure, with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

#[derive(PartialEq)]
enum Section {
    Text,
    Data,
}

/// Parses assembly text into a [`Program`].
///
/// The entry point is the function named by a `.entry` directive, or
/// the first function if there is none.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax, unknown mnemonics or
/// registers, out-of-range immediates, duplicate or undefined labels.
///
/// # Example
///
/// ```
/// let p = dl_mips::parse::parse_asm(
///     "main:\n  addiu $t0, $zero, 7\n  jr $ra\n",
/// ).unwrap();
/// assert_eq!(p.insts.len(), 2);
/// assert_eq!(p.symbols.func("main").unwrap().start, 0);
/// ```
pub fn parse_asm(text: &str) -> Result<Program, ParseError> {
    let mut insts: Vec<Inst> = Vec::new();
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new(); // (inst idx, label, line)
    let mut funcs: Vec<(String, usize)> = Vec::new();
    let mut data: Vec<u8> = Vec::new();
    let mut globals: Vec<(String, u32, u32)> = Vec::new();
    // Pending data label waiting for its first directive to size it.
    let mut pending_data_label: Option<(String, u32)> = None;
    let mut entry_name: Option<String> = None;
    let mut section = Section::Text;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw;
        if let Some(pos) = s.find('#') {
            s = &s[..pos];
        }
        let mut s = s.trim();
        if s.is_empty() {
            continue;
        }
        // Labels (possibly followed by more on the same line).
        while let Some(colon) = s.find(':') {
            let (name, rest) = s.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_label_name(name) {
                break;
            }
            match section {
                Section::Text => {
                    if labels.insert(name.to_owned(), insts.len()).is_some() {
                        return Err(err(line, format!("duplicate label `{name}`")));
                    }
                    if !name.starts_with('.') {
                        funcs.push((name.to_owned(), insts.len()));
                    }
                }
                Section::Data => {
                    close_pending(&mut pending_data_label, &mut globals, &data);
                    pending_data_label =
                        Some((name.to_owned(), layout::DATA_BASE + data.len() as u32));
                }
            }
            s = rest[1..].trim();
        }
        if s.is_empty() {
            continue;
        }
        if let Some(directive) = s.strip_prefix('.') {
            let mut parts = directive.split_whitespace();
            let kind = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            match kind {
                "text" => section = Section::Text,
                "data" => {
                    section = Section::Data;
                }
                "entry" => {
                    entry_name = Some(
                        rest.first()
                            .ok_or_else(|| err(line, ".entry requires a name"))?
                            .to_string(),
                    );
                }
                "word" => {
                    let args = rest.join(" ");
                    for v in args.split(',') {
                        let v = v.trim();
                        if v.is_empty() {
                            continue;
                        }
                        let n = parse_int(v)
                            .ok_or_else(|| err(line, format!("bad .word operand `{v}`")))?;
                        data.extend_from_slice(&(n as i32).to_le_bytes());
                    }
                }
                "space" => {
                    let n = rest
                        .first()
                        .and_then(|v| parse_int(v))
                        .ok_or_else(|| err(line, ".space requires a size"))?;
                    data.extend(std::iter::repeat_n(0, n as usize));
                }
                "align" => {
                    let a = rest
                        .first()
                        .and_then(|v| parse_int(v))
                        .ok_or_else(|| err(line, ".align requires a power"))?
                        as u32;
                    let align = 1u32 << a;
                    while !(data.len() as u32).is_multiple_of(align) {
                        data.push(0);
                    }
                }
                "global" => {
                    // `.global name addr size` — pre-placed symbol from to_asm.
                    if rest.len() != 3 {
                        return Err(err(line, ".global requires name, addr, size"));
                    }
                    let addr =
                        parse_int(rest[1]).ok_or_else(|| err(line, "bad .global addr"))? as u32;
                    let size =
                        parse_int(rest[2]).ok_or_else(|| err(line, "bad .global size"))? as u32;
                    let end = (addr + size).saturating_sub(layout::DATA_BASE) as usize;
                    if data.len() < end {
                        data.resize(end, 0);
                    }
                    globals.push((rest[0].to_owned(), addr, size));
                }
                "globl" => { /* accepted and ignored, like gas */ }
                other => return Err(err(line, format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        if section == Section::Data {
            return Err(err(line, "instruction in .data section"));
        }
        let inst = parse_inst(s, line, insts.len(), &mut fixups)?;
        insts.push(inst);
    }
    close_pending(&mut pending_data_label, &mut globals, &data);

    // Resolve label fixups.
    for (idx, name, line) in fixups {
        let target = *labels
            .get(&name)
            .ok_or_else(|| err(line, format!("undefined label `{name}`")))?;
        insts[idx].set_target(Label(target as u32));
    }
    // Build symbol table: each function runs to the start of the next.
    let mut symbols = SymbolTable::new();
    funcs.sort_by_key(|&(_, s)| s);
    for (i, (name, start)) in funcs.iter().enumerate() {
        let end = funcs.get(i + 1).map_or(insts.len(), |&(_, s)| s);
        symbols.add_func(name.clone(), *start, end);
    }
    for (name, addr, size) in globals {
        symbols.add_global(name, addr, size);
    }
    let entry = match &entry_name {
        Some(n) => {
            symbols
                .func(n)
                .ok_or_else(|| err(0, format!("entry function `{n}` not found")))?
                .start
        }
        None => symbols.funcs().first().map_or(0, |f| f.start),
    };
    Ok(Program {
        insts,
        symbols,
        data,
        entry,
    })
}

fn close_pending(
    pending: &mut Option<(String, u32)>,
    globals: &mut Vec<(String, u32, u32)>,
    data: &[u8],
) {
    if let Some((name, addr)) = pending.take() {
        let size = (layout::DATA_BASE + data.len() as u32).saturating_sub(addr);
        globals.push((name, addr, size));
    }
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    s.trim()
        .parse::<Reg>()
        .map_err(|e| err(line, e.to_string()))
}

fn parse_i16(s: &str, line: usize) -> Result<i16, ParseError> {
    let v = parse_int(s).ok_or_else(|| err(line, format!("bad immediate `{s}`")))?;
    i16::try_from(v).map_err(|_| err(line, format!("immediate `{s}` out of i16 range")))
}

fn parse_u16(s: &str, line: usize) -> Result<u16, ParseError> {
    let v = parse_int(s).ok_or_else(|| err(line, format!("bad immediate `{s}`")))?;
    u16::try_from(v).map_err(|_| err(line, format!("immediate `{s}` out of u16 range")))
}

/// Parses `off(reg)` memory operands.
fn parse_mem(s: &str, line: usize) -> Result<(Reg, i16), ParseError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("bad memory operand `{s}`")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, format!("bad memory operand `{s}`")))?;
    let off = if s[..open].trim().is_empty() {
        0
    } else {
        parse_i16(&s[..open], line)?
    };
    let base = parse_reg(&s[open + 1..close], line)?;
    Ok((base, off))
}

fn parse_inst(
    s: &str,
    line: usize,
    idx: usize,
    fixups: &mut Vec<(usize, String, usize)>,
) -> Result<Inst, ParseError> {
    let (mnem, rest) = match s.find(char::is_whitespace) {
        Some(p) => (&s[..p], s[p..].trim()),
        None => (s, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnem}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let mut deferred = |name: &str| {
        fixups.push((idx, name.to_owned(), line));
        Label(u32::MAX)
    };
    macro_rules! mem {
        ($variant:ident) => {{
            want(2)?;
            let rt = parse_reg(ops[0], line)?;
            let (base, off) = parse_mem(ops[1], line)?;
            Inst::$variant { rt, base, off }
        }};
    }
    macro_rules! rrr {
        ($variant:ident) => {{
            want(3)?;
            Inst::$variant {
                rd: parse_reg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
                rt: parse_reg(ops[2], line)?,
            }
        }};
    }
    macro_rules! rri {
        ($variant:ident, $p:ident) => {{
            want(3)?;
            Inst::$variant {
                rt: parse_reg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
                imm: $p(ops[2], line)?,
            }
        }};
    }
    macro_rules! shift_imm {
        ($variant:ident) => {{
            want(3)?;
            let shamt = parse_int(ops[2])
                .filter(|&v| (0..32).contains(&v))
                .ok_or_else(|| err(line, "shift amount must be 0..=31"))? as u8;
            Inst::$variant {
                rd: parse_reg(ops[0], line)?,
                rt: parse_reg(ops[1], line)?,
                shamt,
            }
        }};
    }
    macro_rules! shift_var {
        ($variant:ident) => {{
            want(3)?;
            Inst::$variant {
                rd: parse_reg(ops[0], line)?,
                rt: parse_reg(ops[1], line)?,
                rs: parse_reg(ops[2], line)?,
            }
        }};
    }
    macro_rules! branch2 {
        ($variant:ident) => {{
            want(3)?;
            Inst::$variant {
                rs: parse_reg(ops[0], line)?,
                rt: parse_reg(ops[1], line)?,
                target: deferred(ops[2]),
            }
        }};
    }
    macro_rules! branch1 {
        ($variant:ident) => {{
            want(2)?;
            Inst::$variant {
                rs: parse_reg(ops[0], line)?,
                target: deferred(ops[1]),
            }
        }};
    }
    let inst = match mnem {
        "lw" => mem!(Lw),
        "lb" => mem!(Lb),
        "lbu" => mem!(Lbu),
        "lh" => mem!(Lh),
        "lhu" => mem!(Lhu),
        "sw" => mem!(Sw),
        "sb" => mem!(Sb),
        "sh" => mem!(Sh),
        "lui" => {
            want(2)?;
            Inst::Lui {
                rt: parse_reg(ops[0], line)?,
                imm: parse_u16(ops[1], line)?,
            }
        }
        "addu" | "add" => rrr!(Addu),
        "subu" | "sub" => rrr!(Subu),
        "mul" => rrr!(Mul),
        "div" => rrr!(Div),
        "rem" => rrr!(Rem),
        "and" => rrr!(And),
        "or" => rrr!(Or),
        "xor" => rrr!(Xor),
        "nor" => rrr!(Nor),
        "slt" => rrr!(Slt),
        "sltu" => rrr!(Sltu),
        "addiu" | "addi" => rri!(Addiu, parse_i16),
        "andi" => rri!(Andi, parse_u16),
        "ori" => rri!(Ori, parse_u16),
        "xori" => rri!(Xori, parse_u16),
        "slti" => rri!(Slti, parse_i16),
        "sltiu" => rri!(Sltiu, parse_i16),
        "sll" => shift_imm!(Sll),
        "srl" => shift_imm!(Srl),
        "sra" => shift_imm!(Sra),
        "sllv" => shift_var!(Sllv),
        "srlv" => shift_var!(Srlv),
        "srav" => shift_var!(Srav),
        "beq" => branch2!(Beq),
        "bne" => branch2!(Bne),
        "blez" => branch1!(Blez),
        "bgtz" => branch1!(Bgtz),
        "bltz" => branch1!(Bltz),
        "bgez" => branch1!(Bgez),
        "j" => {
            want(1)?;
            Inst::J {
                target: deferred(ops[0]),
            }
        }
        "jal" => {
            want(1)?;
            Inst::Jal {
                target: deferred(ops[0]),
            }
        }
        "jr" => {
            want(1)?;
            Inst::Jr {
                rs: parse_reg(ops[0], line)?,
            }
        }
        "jalr" => {
            want(2)?;
            Inst::Jalr {
                rd: parse_reg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
            }
        }
        "move" => {
            want(2)?;
            Inst::Addu {
                rd: parse_reg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
                rt: Reg::Zero,
            }
        }
        "li" => {
            want(2)?;
            let rt = parse_reg(ops[0], line)?;
            let imm = parse_i16(ops[1], line)?;
            Inst::Addiu {
                rt,
                rs: Reg::Zero,
                imm,
            }
        }
        "syscall" => {
            want(0)?;
            Inst::Syscall
        }
        "nop" => {
            want(0)?;
            Inst::Nop
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_function() {
        let p = parse_asm(
            "main:\n\
             \taddiu $sp, $sp, -16\n\
             \tsw $ra, 12($sp)\n\
             \tlw $t0, 0($gp)\n\
             \tjr $ra\n",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 4);
        assert_eq!(p.symbols.func("main").unwrap().end, 4);
        assert_eq!(p.static_load_count(), 1);
    }

    #[test]
    fn parse_branches_and_labels() {
        let p = parse_asm(
            "main:\n\
             \tli $t0, 10\n\
             .Lloop:\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lloop\n\
             \tjr $ra\n",
        )
        .unwrap();
        assert_eq!(p.insts[2].target(), Some(Label(1)));
    }

    #[test]
    fn parse_forward_reference() {
        let p = parse_asm(
            "main:\n\
             \tbeq $t0, $t1, .Lout\n\
             \tnop\n\
             .Lout:\n\
             \tjr $ra\n",
        )
        .unwrap();
        assert_eq!(p.insts[0].target(), Some(Label(2)));
    }

    #[test]
    fn undefined_label_is_error() {
        let e = parse_asm("main:\n\tj .Lnowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = parse_asm("main:\n\tnop\nmain:\n\tnop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn data_section_words_and_space() {
        let p = parse_asm(
            "\t.data\n\
             tbl:\t.word 1, 2, -3\n\
             buf:\t.space 8\n\
             \t.text\n\
             main:\n\
             \tjr $ra\n",
        )
        .unwrap();
        let tbl = p.symbols.global("tbl").unwrap();
        assert_eq!(tbl.size, 12);
        let buf = p.symbols.global("buf").unwrap();
        assert_eq!(buf.size, 8);
        assert_eq!(buf.addr, tbl.addr + 12);
        let off = (tbl.addr - layout::DATA_BASE) as usize;
        assert_eq!(
            i32::from_le_bytes(p.data[off + 8..off + 12].try_into().unwrap()),
            -3
        );
    }

    #[test]
    fn entry_directive() {
        let p = parse_asm(
            "\t.entry helper\n\
             main:\n\tjr $ra\n\
             helper:\n\tjr $ra\n",
        )
        .unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = parse_asm(
            "# leading comment\n\
             main:  # trailing\n\
             \n\
             \tnop # another\n\
             \tjr $ra\n",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 2);
    }

    #[test]
    fn round_trip_through_to_asm() {
        let src = "main:\n\
                   \taddiu $sp, $sp, -32\n\
                   \tsw $ra, 28($sp)\n\
                   .Lloop:\n\
                   \tlw $t0, 8($sp)\n\
                   \tsll $t1, $t0, 2\n\
                   \taddu $t1, $t1, $gp\n\
                   \tlw $t2, 0($t1)\n\
                   \tbgtz $t2, .Lloop\n\
                   \tlw $ra, 28($sp)\n\
                   \taddiu $sp, $sp, 32\n\
                   \tjr $ra\n";
        let p1 = parse_asm(src).unwrap();
        let p2 = parse_asm(&p1.to_asm()).unwrap();
        assert_eq!(p1.insts, p2.insts);
        assert_eq!(
            p1.symbols.func("main").unwrap(),
            p2.symbols.func("main").unwrap()
        );
        assert_eq!(p1.entry, p2.entry);
    }

    #[test]
    fn pseudo_ops() {
        let p = parse_asm("main:\n\tmove $t0, $t1\n\tli $t2, -5\n").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Addu {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::Zero
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Addiu {
                rt: Reg::T2,
                rs: Reg::Zero,
                imm: -5
            }
        );
    }

    #[test]
    fn memory_operand_forms() {
        let p = parse_asm("main:\n\tlw $t0, ($sp)\n\tlw $t1, -4($fp)\n").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Lw {
                rt: Reg::T0,
                base: Reg::Sp,
                off: 0
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Lw {
                rt: Reg::T1,
                base: Reg::Fp,
                off: -4
            }
        );
    }

    #[test]
    fn bad_mnemonic_and_operands() {
        assert!(parse_asm("main:\n\tfrobnicate $t0\n").is_err());
        assert!(parse_asm("main:\n\tlw $t0\n").is_err());
        assert!(parse_asm("main:\n\taddiu $t0, $t1, 99999\n").is_err());
        assert!(parse_asm("main:\n\tsll $t0, $t1, 40\n").is_err());
    }
}
