//! Binary encoding and decoding of the instruction set.
//!
//! Instructions encode to 32-bit machine words following the classic
//! MIPS I/MIPS32 formats (R/I/J-type, REGIMM branches, SPECIAL2 `mul`).
//! This is the layer that makes a [`Program`] an *executable image*:
//! [`encode_program`] produces the text-segment words and
//! [`decode_program`] disassembles them back — the `objdump` step of
//! the paper's pipeline, for real this time.
//!
//! Two pseudo-instructions have no single-word MIPS encoding and use
//! documented extension slots in SPECIAL2: `div rd,rs,rt` (funct
//! `0x3a`) and `rem rd,rs,rt` (funct `0x3b`) — real MIPS would expand
//! them to `div` + `mflo`/`mfhi` pairs.
//!
//! # Example
//!
//! ```
//! use dl_mips::parse::parse_asm;
//! use dl_mips::encode::{encode_program, decode_program};
//!
//! let p = parse_asm("main:\n\tlw $t0, 8($sp)\n\taddu $t1, $t0, $t0\n\tjr $ra\n").unwrap();
//! let words = encode_program(&p).unwrap();
//! assert_eq!(words.len(), 3);
//! assert_eq!(words[0], 0x8FA8_0008); // lw $t0, 8($sp)
//! let back = decode_program(&words).unwrap();
//! assert_eq!(back, p.insts);
//! ```

use std::fmt;

use crate::inst::{Inst, Label};
use crate::layout::TEXT_BASE;
use crate::program::Program;
use crate::reg::Reg;

/// An encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A branch target is too far for a 16-bit word offset.
    BranchOutOfRange {
        /// Instruction index of the branch.
        at: usize,
        /// Target instruction index.
        target: usize,
    },
    /// A jump target leaves the 256 MiB jump region.
    JumpOutOfRange {
        /// Instruction index of the jump.
        at: usize,
        /// Target instruction index.
        target: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::BranchOutOfRange { at, target } => {
                write!(f, "branch at {at} to {target} exceeds 16-bit offset")
            }
            EncodeError::JumpOutOfRange { at, target } => {
                write!(f, "jump at {at} to {target} leaves the jump region")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Word index of the undecodable instruction.
    pub at: usize,
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot decode word {:#010x} at index {}",
            self.word, self.at
        )
    }
}

impl std::error::Error for DecodeError {}

const SPECIAL: u32 = 0x00;
const REGIMM: u32 = 0x01;
const SPECIAL2: u32 = 0x1c;

fn r_type(funct: u32, rd: Reg, rs: Reg, rt: Reg, shamt: u32) -> u32 {
    (SPECIAL << 26)
        | (u32::from(rs.number()) << 21)
        | (u32::from(rt.number()) << 16)
        | (u32::from(rd.number()) << 11)
        | (shamt << 6)
        | funct
}

fn special2(funct: u32, rd: Reg, rs: Reg, rt: Reg) -> u32 {
    (SPECIAL2 << 26)
        | (u32::from(rs.number()) << 21)
        | (u32::from(rt.number()) << 16)
        | (u32::from(rd.number()) << 11)
        | funct
}

fn i_type(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | (u32::from(rs.number()) << 21) | (u32::from(rt.number()) << 16) | u32::from(imm)
}

/// Encodes a single instruction located at instruction index `at`.
///
/// # Errors
///
/// Fails when a branch or jump target does not fit its field.
pub fn encode_inst(inst: &Inst, at: usize) -> Result<u32, EncodeError> {
    use Inst::*;
    let branch_off = |target: Label| -> Result<u16, EncodeError> {
        let delta = target.index() as i64 - (at as i64 + 1);
        i16::try_from(delta)
            .map(|v| v as u16)
            .map_err(|_| EncodeError::BranchOutOfRange {
                at,
                target: target.index(),
            })
    };
    let jump_index = |target: Label| -> Result<u32, EncodeError> {
        // The 26-bit field holds the word address within the current
        // 256 MiB region; with TEXT_BASE in the low region the word
        // address must simply fit in 26 bits.
        let word_addr = u64::from(TEXT_BASE) / 4 + target.index() as u64;
        if word_addr <= 0x03ff_ffff {
            Ok(word_addr as u32)
        } else {
            Err(EncodeError::JumpOutOfRange {
                at,
                target: target.index(),
            })
        }
    };
    Ok(match *inst {
        Lb { rt, base, off } => i_type(0x20, base, rt, off as u16),
        Lh { rt, base, off } => i_type(0x21, base, rt, off as u16),
        Lw { rt, base, off } => i_type(0x23, base, rt, off as u16),
        Lbu { rt, base, off } => i_type(0x24, base, rt, off as u16),
        Lhu { rt, base, off } => i_type(0x25, base, rt, off as u16),
        Sb { rt, base, off } => i_type(0x28, base, rt, off as u16),
        Sh { rt, base, off } => i_type(0x29, base, rt, off as u16),
        Sw { rt, base, off } => i_type(0x2b, base, rt, off as u16),
        Lui { rt, imm } => i_type(0x0f, Reg::Zero, rt, imm),
        Addiu { rt, rs, imm } => i_type(0x09, rs, rt, imm as u16),
        Slti { rt, rs, imm } => i_type(0x0a, rs, rt, imm as u16),
        Sltiu { rt, rs, imm } => i_type(0x0b, rs, rt, imm as u16),
        Andi { rt, rs, imm } => i_type(0x0c, rs, rt, imm),
        Ori { rt, rs, imm } => i_type(0x0d, rs, rt, imm),
        Xori { rt, rs, imm } => i_type(0x0e, rs, rt, imm),
        Addu { rd, rs, rt } => r_type(0x21, rd, rs, rt, 0),
        Subu { rd, rs, rt } => r_type(0x23, rd, rs, rt, 0),
        And { rd, rs, rt } => r_type(0x24, rd, rs, rt, 0),
        Or { rd, rs, rt } => r_type(0x25, rd, rs, rt, 0),
        Xor { rd, rs, rt } => r_type(0x26, rd, rs, rt, 0),
        Nor { rd, rs, rt } => r_type(0x27, rd, rs, rt, 0),
        Slt { rd, rs, rt } => r_type(0x2a, rd, rs, rt, 0),
        Sltu { rd, rs, rt } => r_type(0x2b, rd, rs, rt, 0),
        Sll { rd, rt, shamt } => r_type(0x00, rd, Reg::Zero, rt, u32::from(shamt)),
        Srl { rd, rt, shamt } => r_type(0x02, rd, Reg::Zero, rt, u32::from(shamt)),
        Sra { rd, rt, shamt } => r_type(0x03, rd, Reg::Zero, rt, u32::from(shamt)),
        Sllv { rd, rt, rs } => r_type(0x04, rd, rs, rt, 0),
        Srlv { rd, rt, rs } => r_type(0x06, rd, rs, rt, 0),
        Srav { rd, rt, rs } => r_type(0x07, rd, rs, rt, 0),
        Jr { rs } => r_type(0x08, Reg::Zero, rs, Reg::Zero, 0),
        Jalr { rd, rs } => r_type(0x09, rd, rs, Reg::Zero, 0),
        Syscall => (SPECIAL << 26) | 0x0c,
        Mul { rd, rs, rt } => special2(0x02, rd, rs, rt),
        Div { rd, rs, rt } => special2(0x3a, rd, rs, rt),
        Rem { rd, rs, rt } => special2(0x3b, rd, rs, rt),
        Beq { rs, rt, target } => i_type(0x04, rs, rt, branch_off(target)?),
        Bne { rs, rt, target } => i_type(0x05, rs, rt, branch_off(target)?),
        Blez { rs, target } => i_type(0x06, rs, Reg::Zero, branch_off(target)?),
        Bgtz { rs, target } => i_type(0x07, rs, Reg::Zero, branch_off(target)?),
        Bltz { rs, target } => i_type(REGIMM, rs, Reg::Zero, branch_off(target)?),
        Bgez { rs, target } => i_type(REGIMM, rs, Reg::At, branch_off(target)?),
        J { target } => (0x02 << 26) | jump_index(target)?,
        Jal { target } => (0x03 << 26) | jump_index(target)?,
        Nop => 0,
    })
}

/// Decodes a single word at instruction index `at`.
///
/// # Errors
///
/// Fails on opcodes/functs outside the implemented subset.
pub fn decode_inst(word: u32, at: usize) -> Result<Inst, DecodeError> {
    use Inst::*;
    let err = || DecodeError { at, word };
    let op = word >> 26;
    let rs = Reg::from_number(((word >> 21) & 31) as u8).ok_or_else(err)?;
    let rt = Reg::from_number(((word >> 16) & 31) as u8).ok_or_else(err)?;
    let rd = Reg::from_number(((word >> 11) & 31) as u8).ok_or_else(err)?;
    let shamt = ((word >> 6) & 31) as u8;
    let imm = (word & 0xffff) as u16;
    let simm = imm as i16;
    // A branch whose target would land before instruction 0 cannot
    // come from the encoder; reject it.
    let branch_target = |at: usize| -> Result<Label, DecodeError> {
        let idx = at as i64 + 1 + i64::from(simm);
        u32::try_from(idx)
            .map(Label)
            .map_err(|_| DecodeError { at, word })
    };
    // Fields that must be zero for a well-formed encoding (reserved in
    // real MIPS); rejecting them keeps decode a partial inverse of
    // encode.
    let rs_zero = (word >> 21) & 31 == 0;
    let rt_zero = (word >> 16) & 31 == 0;
    let rd_zero = (word >> 11) & 31 == 0;
    let shamt_zero = (word >> 6) & 31 == 0;
    Ok(match op {
        SPECIAL => match word & 0x3f {
            _ if word == 0 => Nop,
            0x00 if rs_zero => Sll { rd, rt, shamt },
            0x02 if rs_zero => Srl { rd, rt, shamt },
            0x03 if rs_zero => Sra { rd, rt, shamt },
            0x04 if shamt_zero => Sllv { rd, rt, rs },
            0x06 if shamt_zero => Srlv { rd, rt, rs },
            0x07 if shamt_zero => Srav { rd, rt, rs },
            0x08 if rt_zero && rd_zero && shamt_zero => Jr { rs },
            0x09 if rt_zero && shamt_zero => Jalr { rd, rs },
            0x0c if word == (SPECIAL << 26) | 0x0c => Syscall,
            0x21 if shamt_zero => Addu { rd, rs, rt },
            0x23 if shamt_zero => Subu { rd, rs, rt },
            0x24 if shamt_zero => And { rd, rs, rt },
            0x25 if shamt_zero => Or { rd, rs, rt },
            0x26 if shamt_zero => Xor { rd, rs, rt },
            0x27 if shamt_zero => Nor { rd, rs, rt },
            0x2a if shamt_zero => Slt { rd, rs, rt },
            0x2b if shamt_zero => Sltu { rd, rs, rt },
            _ => return Err(err()),
        },
        REGIMM => match (word >> 16) & 31 {
            0 => Bltz {
                rs,
                target: branch_target(at)?,
            },
            1 => Bgez {
                rs,
                target: branch_target(at)?,
            },
            _ => return Err(err()),
        },
        SPECIAL2 => match word & 0x3f {
            0x02 if shamt_zero => Mul { rd, rs, rt },
            0x3a if shamt_zero => Div { rd, rs, rt },
            0x3b if shamt_zero => Rem { rd, rs, rt },
            _ => return Err(err()),
        },
        0x02 | 0x03 => {
            let word_addr = u64::from(word & 0x03ff_ffff);
            let base_words = u64::from(TEXT_BASE) / 4;
            let index = word_addr.checked_sub(base_words).ok_or_else(err)?;
            let target = Label(index as u32);
            if op == 0x02 {
                J { target }
            } else {
                Jal { target }
            }
        }
        0x04 => Beq {
            rs,
            rt,
            target: branch_target(at)?,
        },
        0x05 => Bne {
            rs,
            rt,
            target: branch_target(at)?,
        },
        0x06 if rt_zero => Blez {
            rs,
            target: branch_target(at)?,
        },
        0x07 if rt_zero => Bgtz {
            rs,
            target: branch_target(at)?,
        },
        0x09 => Addiu { rt, rs, imm: simm },
        0x0a => Slti { rt, rs, imm: simm },
        0x0b => Sltiu { rt, rs, imm: simm },
        0x0c => Andi { rt, rs, imm },
        0x0d => Ori { rt, rs, imm },
        0x0e => Xori { rt, rs, imm },
        0x0f if rs_zero => Lui { rt, imm },
        0x20 => Lb {
            rt,
            base: rs,
            off: simm,
        },
        0x21 => Lh {
            rt,
            base: rs,
            off: simm,
        },
        0x23 => Lw {
            rt,
            base: rs,
            off: simm,
        },
        0x24 => Lbu {
            rt,
            base: rs,
            off: simm,
        },
        0x25 => Lhu {
            rt,
            base: rs,
            off: simm,
        },
        0x28 => Sb {
            rt,
            base: rs,
            off: simm,
        },
        0x29 => Sh {
            rt,
            base: rs,
            off: simm,
        },
        0x2b => Sw {
            rt,
            base: rs,
            off: simm,
        },
        _ => return Err(err()),
    })
}

/// Encodes a program's text segment.
///
/// # Errors
///
/// Propagates the first [`EncodeError`].
pub fn encode_program(program: &Program) -> Result<Vec<u32>, EncodeError> {
    program
        .insts
        .iter()
        .enumerate()
        .map(|(at, inst)| encode_inst(inst, at))
        .collect()
}

/// Decodes a text segment back into instructions.
///
/// # Errors
///
/// Propagates the first [`DecodeError`].
pub fn decode_program(words: &[u32]) -> Result<Vec<Inst>, DecodeError> {
    words
        .iter()
        .enumerate()
        .map(|(at, &w)| decode_inst(w, at))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_asm;

    #[test]
    fn known_encodings_match_mips_reference() {
        // Cross-checked against a MIPS assembler's output.
        let cases = [
            ("lw $t0, 8($sp)", 0x8FA8_0008u32),
            ("sw $ra, 20($sp)", 0xAFBF_0014),
            ("addiu $sp, $sp, -32", 0x27BD_FFE0),
            ("addu $t2, $t0, $t1", 0x0109_5021),
            ("subu $v0, $a0, $a1", 0x0085_1023),
            ("sll $t0, $t1, 2", 0x0009_4080),
            ("lui $at, 0x1000", 0x3C01_1000),
            ("ori $at, $at, 0x8000", 0x3421_8000),
            ("jr $ra", 0x03E0_0008),
            ("syscall", 0x0000_000C),
            ("nop", 0x0000_0000),
            ("slt $v0, $a0, $a1", 0x0085_102A),
        ];
        for (asm, expected) in cases {
            let p = parse_asm(&format!("main:\n\t{asm}\n")).unwrap();
            let got = encode_inst(&p.insts[0], 0).unwrap();
            assert_eq!(got, expected, "{asm}: got {got:#010x}");
        }
    }

    #[test]
    fn branch_offsets_are_relative_to_delay_slot() {
        // beq $t0, $zero, +2 from index 0: offset = target - (at+1) = 1.
        let p = parse_asm("main:\n\tbeq $t0, $zero, .L\n\tnop\n.L:\n\tjr $ra\n").unwrap();
        let w = encode_inst(&p.insts[0], 0).unwrap();
        assert_eq!(w & 0xffff, 1);
        // Backward branch encodes a negative offset.
        let p2 = parse_asm("main:\n.L:\n\tnop\n\tbne $t0, $zero, .L\n").unwrap();
        let w2 = encode_inst(&p2.insts[1], 1).unwrap();
        assert_eq!((w2 & 0xffff) as i16, -2);
    }

    #[test]
    fn program_round_trips_through_binary() {
        let p = parse_asm(
            "main:\n\
             \taddiu $sp, $sp, -32\n\
             \tsw $ra, 28($sp)\n\
             .Lloop:\n\
             \tlw $t0, 8($sp)\n\
             \tsll $t1, $t0, 2\n\
             \taddu $t1, $t1, $gp\n\
             \tlw $t2, 0($t1)\n\
             \tmul $t3, $t2, $t0\n\
             \tdiv $t4, $t3, $t2\n\
             \trem $t5, $t3, $t2\n\
             \tbltz $t5, .Lloop\n\
             \tbgez $t2, .Lout\n\
             \tjal main\n\
             .Lout:\n\
             \tlw $ra, 28($sp)\n\
             \taddiu $sp, $sp, 32\n\
             \tjr $ra\n",
        )
        .unwrap();
        let words = encode_program(&p).unwrap();
        let back = decode_program(&words).unwrap();
        assert_eq!(back, p.insts);
    }

    #[test]
    fn calls_round_trip() {
        let src = "main:\n\tjal f\n\tjr $ra\nf:\n\tlw $v0, 0($gp)\n\tjr $ra\n";
        let p = parse_asm(src).unwrap();
        let words = encode_program(&p).unwrap();
        assert_eq!(decode_program(&words).unwrap(), p.insts);
    }

    #[test]
    fn branch_out_of_range_errors() {
        let b = Inst::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            target: Label(100_000),
        };
        assert!(matches!(
            encode_inst(&b, 0),
            Err(EncodeError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn undecodable_word_errors() {
        // Opcode 0x3f is unused.
        let w = 0xFC00_0000;
        assert!(decode_inst(w, 0).is_err());
        // SPECIAL funct 0x3f unused.
        assert!(decode_inst(0x0000_003F, 0).is_err());
    }

    #[test]
    fn decoded_nop_is_canonical() {
        assert_eq!(decode_inst(0, 5).unwrap(), Inst::Nop);
    }
}
