//! # dl-mips
//!
//! A MIPS-like 32-bit instruction set and program container used as the
//! compilation target and analysis substrate for the delinquent-load
//! reproduction.
//!
//! The paper ("Static Identification of Delinquent Loads", CGO 2004)
//! performs its analysis on the MIPS assembly output of the SimpleScalar
//! GNU C compiler, obtained by disassembling the executable with
//! `objdump`. This crate plays the role of that toolchain layer: it
//! defines the instruction set, the register file (including the *basic
//! registers* `$gp`, `$sp`, parameter registers and return-value
//! registers that the paper's address patterns bottom out in), a
//! [`Program`] container with a symbol table, a textual assembly
//! printer/parser, and an [`asm::AsmBuilder`] used by the MiniC code
//! generator.
//!
//! # Example
//!
//! ```
//! use dl_mips::{asm::AsmBuilder, inst::Inst, reg::Reg};
//!
//! let mut b = AsmBuilder::new();
//! b.begin_func("main");
//! b.push(Inst::Addiu { rt: Reg::Sp, rs: Reg::Sp, imm: -32 });
//! b.push(Inst::Lw { rt: Reg::T0, base: Reg::Sp, off: 8 });
//! b.push(Inst::Jr { rs: Reg::Ra });
//! b.end_func();
//! let program = b.finish("main").unwrap();
//! assert_eq!(program.insts.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod encode;
pub mod inst;
pub mod layout;
pub mod parse;
pub mod program;
pub mod reg;
pub mod verify;

pub use asm::AsmBuilder;
pub use inst::{Inst, Label};
pub use program::{FuncSym, GlobalSym, Program, SymbolTable};
pub use reg::Reg;
pub use verify::{verify_program, Violation};
