//! The MIPS register file and calling conventions.
//!
//! The paper's address patterns are expressed in terms of *basic
//! registers* (`BR → gp | sp | reg_param | reg_ret`); [`Reg::base_reg`]
//! maps each architectural register to that classification.

use std::fmt;
use std::str::FromStr;

/// One of the 32 MIPS general-purpose registers, by conventional name.
///
/// The numeric encoding matches the MIPS o32 convention
/// (`$zero` = 0 … `$ra` = 31).
///
/// # Example
///
/// ```
/// use dl_mips::reg::Reg;
/// assert_eq!(Reg::Sp.number(), 29);
/// assert_eq!("$sp".parse::<Reg>().unwrap(), Reg::Sp);
/// assert_eq!(Reg::Sp.to_string(), "$sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// `$zero` — hard-wired zero.
    Zero = 0,
    /// `$at` — assembler temporary.
    At = 1,
    /// `$v0` — first return-value register.
    V0 = 2,
    /// `$v1` — second return-value register.
    V1 = 3,
    /// `$a0` — first argument register.
    A0 = 4,
    /// `$a1` — second argument register.
    A1 = 5,
    /// `$a2` — third argument register.
    A2 = 6,
    /// `$a3` — fourth argument register.
    A3 = 7,
    /// `$t0` — caller-saved temporary.
    T0 = 8,
    /// `$t1` — caller-saved temporary.
    T1 = 9,
    /// `$t2` — caller-saved temporary.
    T2 = 10,
    /// `$t3` — caller-saved temporary.
    T3 = 11,
    /// `$t4` — caller-saved temporary.
    T4 = 12,
    /// `$t5` — caller-saved temporary.
    T5 = 13,
    /// `$t6` — caller-saved temporary.
    T6 = 14,
    /// `$t7` — caller-saved temporary.
    T7 = 15,
    /// `$s0` — callee-saved register.
    S0 = 16,
    /// `$s1` — callee-saved register.
    S1 = 17,
    /// `$s2` — callee-saved register.
    S2 = 18,
    /// `$s3` — callee-saved register.
    S3 = 19,
    /// `$s4` — callee-saved register.
    S4 = 20,
    /// `$s5` — callee-saved register.
    S5 = 21,
    /// `$s6` — callee-saved register.
    S6 = 22,
    /// `$s7` — callee-saved register.
    S7 = 23,
    /// `$t8` — caller-saved temporary.
    T8 = 24,
    /// `$t9` — caller-saved temporary.
    T9 = 25,
    /// `$k0` — reserved for kernel.
    K0 = 26,
    /// `$k1` — reserved for kernel.
    K1 = 27,
    /// `$gp` — global pointer (base of the global data area).
    Gp = 28,
    /// `$sp` — stack pointer.
    Sp = 29,
    /// `$fp` — frame pointer.
    Fp = 30,
    /// `$ra` — return address.
    Ra = 31,
}

/// The paper's *basic register* classes: the registers an address
/// pattern may bottom out in after intermediate registers have been
/// eliminated (`BR → gp | sp | reg_param | reg_ret`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseReg {
    /// The global pointer `$gp` — globals / static data.
    Gp,
    /// The stack pointer `$sp` (and `$fp`, which frames off the stack).
    Sp,
    /// A parameter register `$a0`–`$a3` — values flowing in from the caller.
    Param,
    /// A return-value register `$v0`/`$v1` — values flowing back from a call
    /// (in particular, `malloc` results).
    Ret,
}

impl Reg {
    /// All 32 registers in numeric order.
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::At,
        Reg::V0,
        Reg::V1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::T7,
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::T8,
        Reg::T9,
        Reg::K0,
        Reg::K1,
        Reg::Gp,
        Reg::Sp,
        Reg::Fp,
        Reg::Ra,
    ];

    /// The caller-saved temporaries available to code generators.
    pub const TEMPS: [Reg; 10] = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::T7,
        Reg::T8,
        Reg::T9,
    ];

    /// The callee-saved registers available to register allocators.
    pub const SAVED: [Reg; 8] = [
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
    ];

    /// The argument-passing registers.
    pub const ARGS: [Reg; 4] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3];

    /// Returns the architectural register number (0–31).
    #[must_use]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Constructs a register from its architectural number.
    ///
    /// Returns `None` if `n >= 32`.
    #[must_use]
    pub fn from_number(n: u8) -> Option<Reg> {
        Reg::ALL.get(n as usize).copied()
    }

    /// The conventional assembly name, without the leading `$`.
    #[must_use]
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self as usize]
    }

    /// Classifies this register as one of the paper's basic registers,
    /// or `None` if it is an intermediate register that address-pattern
    /// construction must substitute away.
    ///
    /// `$fp` is treated as `Sp`-class: it frames off the stack pointer
    /// and addresses the same region.
    #[must_use]
    pub fn base_reg(self) -> Option<BaseReg> {
        match self {
            Reg::Gp => Some(BaseReg::Gp),
            Reg::Sp | Reg::Fp => Some(BaseReg::Sp),
            Reg::A0 | Reg::A1 | Reg::A2 | Reg::A3 => Some(BaseReg::Param),
            Reg::V0 | Reg::V1 => Some(BaseReg::Ret),
            _ => None,
        }
    }

    /// Returns `true` for `$zero`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::Zero
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

impl fmt::Display for BaseReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseReg::Gp => write!(f, "gp"),
            BaseReg::Sp => write!(f, "sp"),
            BaseReg::Param => write!(f, "param"),
            BaseReg::Ret => write!(f, "ret"),
        }
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `$name`, `name`, `$N`, or `N` forms (`$t0`, `t0`, `$8`, `8`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix('$').unwrap_or(s);
        if let Ok(n) = body.parse::<u8>() {
            return Reg::from_number(n).ok_or_else(|| ParseRegError { text: s.to_owned() });
        }
        Reg::ALL
            .iter()
            .copied()
            .find(|r| r.name() == body)
            .ok_or_else(|| ParseRegError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_number(r.number()), Some(r));
        }
        assert_eq!(Reg::from_number(32), None);
    }

    #[test]
    fn name_round_trip() {
        for r in Reg::ALL {
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
            assert_eq!(r.name().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn numeric_parse() {
        assert_eq!("$29".parse::<Reg>().unwrap(), Reg::Sp);
        assert_eq!("28".parse::<Reg>().unwrap(), Reg::Gp);
        assert!("$32".parse::<Reg>().is_err());
        assert!("$bogus".parse::<Reg>().is_err());
    }

    #[test]
    fn basic_register_classification() {
        assert_eq!(Reg::Gp.base_reg(), Some(BaseReg::Gp));
        assert_eq!(Reg::Sp.base_reg(), Some(BaseReg::Sp));
        assert_eq!(Reg::Fp.base_reg(), Some(BaseReg::Sp));
        assert_eq!(Reg::A2.base_reg(), Some(BaseReg::Param));
        assert_eq!(Reg::V0.base_reg(), Some(BaseReg::Ret));
        assert_eq!(Reg::T3.base_reg(), None);
        assert_eq!(Reg::Zero.base_reg(), None);
        assert_eq!(Reg::Ra.base_reg(), None);
    }

    #[test]
    fn display_uses_dollar_names() {
        assert_eq!(Reg::Zero.to_string(), "$zero");
        assert_eq!(Reg::Ra.to_string(), "$ra");
    }
}
