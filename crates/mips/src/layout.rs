//! The memory map shared by the code generator, simulator, and analysis.
//!
//! Matches the conventional SimpleScalar/MIPS segment layout closely
//! enough for the paper's region reasoning (stack vs global vs heap) to
//! carry over.

/// Base address of the text (code) segment. `pc(i) = TEXT_BASE + 4*i`.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Base address of the static data segment (globals).
pub const DATA_BASE: u32 = 0x1000_0000;

/// Value of `$gp` at startup: points 32 KiB into the data segment so
/// that 16-bit signed offsets reach the whole small-data area, per MIPS
/// convention.
pub const GP_VALUE: u32 = DATA_BASE + 0x8000;

/// Base address of the heap; `malloc` bump-allocates upward from here.
pub const HEAP_BASE: u32 = 0x2000_0000;

/// Initial `$sp`: top of the stack, growing downward.
pub const STACK_TOP: u32 = 0x7fff_fff0;

/// Converts an instruction index into its program counter.
#[must_use]
pub fn pc_of_index(index: usize) -> u32 {
    TEXT_BASE + 4 * index as u32
}

/// Converts a program counter back into an instruction index.
///
/// Returns `None` if `pc` is below [`TEXT_BASE`] or misaligned.
#[must_use]
pub fn index_of_pc(pc: u32) -> Option<usize> {
    if pc < TEXT_BASE || !pc.is_multiple_of(4) {
        return None;
    }
    Some(((pc - TEXT_BASE) / 4) as usize)
}

/// The memory region an address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Text segment (code).
    Text,
    /// Static data (globals).
    Global,
    /// Heap (dynamic allocation).
    Heap,
    /// Stack.
    Stack,
}

/// Classifies an address by segment.
#[must_use]
pub fn region_of(addr: u32) -> Region {
    if addr >= HEAP_BASE + 0x1000_0000 {
        Region::Stack
    } else if addr >= HEAP_BASE {
        Region::Heap
    } else if addr >= DATA_BASE {
        Region::Global
    } else {
        Region::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_round_trip() {
        for i in [0usize, 1, 100, 65535] {
            assert_eq!(index_of_pc(pc_of_index(i)), Some(i));
        }
    }

    #[test]
    fn pc_rejects_bad_addresses() {
        assert_eq!(index_of_pc(TEXT_BASE + 2), None);
        assert_eq!(index_of_pc(TEXT_BASE - 4), None);
    }

    #[test]
    fn regions() {
        assert_eq!(region_of(TEXT_BASE), Region::Text);
        assert_eq!(region_of(DATA_BASE + 100), Region::Global);
        assert_eq!(region_of(GP_VALUE), Region::Global);
        assert_eq!(region_of(HEAP_BASE + 8), Region::Heap);
        assert_eq!(region_of(STACK_TOP - 64), Region::Stack);
    }
}
