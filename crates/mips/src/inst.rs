//! The MIPS-like instruction set.
//!
//! Instructions are held unencoded (no binary form): the simulator
//! interprets them directly and the analysis walks them structurally,
//! exactly as the paper walks `objdump` output. Branch and jump targets
//! are resolved instruction indices wrapped in [`Label`].

use std::fmt;

use crate::reg::Reg;

/// A resolved control-flow target: an index into [`crate::Program::insts`].
///
/// # Example
///
/// ```
/// use dl_mips::inst::Label;
/// let l = Label(7);
/// assert_eq!(l.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// The target instruction index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// The width/signedness of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit, sign-extended on load (`lb`/`sb`).
    Byte,
    /// 8-bit, zero-extended on load (`lbu`).
    ByteUnsigned,
    /// 16-bit, sign-extended on load (`lh`/`sh`).
    Half,
    /// 16-bit, zero-extended on load (`lhu`).
    HalfUnsigned,
    /// 32-bit (`lw`/`sw`).
    Word,
}

impl MemWidth {
    /// The number of bytes accessed.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte | MemWidth::ByteUnsigned => 1,
            MemWidth::Half | MemWidth::HalfUnsigned => 2,
            MemWidth::Word => 4,
        }
    }
}

/// A MIPS-like instruction.
///
/// The subset covers everything the MiniC code generator emits and the
/// paper's analysis distinguishes: loads/stores of all widths, `lui`
/// constant synthesis, three-operand ALU ops (with `mul`/`div`/`rem`
/// folded into single instructions rather than HI/LO pairs), immediate
/// ALU ops, shifts, compares, branches, jumps, and `syscall` for the
/// runtime intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields follow MIPS naming (rd/rs/rt/base/off/imm/shamt/target)
pub enum Inst {
    /// Load: `rt <- mem[base + off]`.
    Lw { rt: Reg, base: Reg, off: i16 },
    /// Load byte (sign-extended).
    Lb { rt: Reg, base: Reg, off: i16 },
    /// Load byte (zero-extended).
    Lbu { rt: Reg, base: Reg, off: i16 },
    /// Load half (sign-extended).
    Lh { rt: Reg, base: Reg, off: i16 },
    /// Load half (zero-extended).
    Lhu { rt: Reg, base: Reg, off: i16 },
    /// Store word: `mem[base + off] <- rt`.
    Sw { rt: Reg, base: Reg, off: i16 },
    /// Store byte.
    Sb { rt: Reg, base: Reg, off: i16 },
    /// Store half.
    Sh { rt: Reg, base: Reg, off: i16 },
    /// Load upper immediate: `rt <- imm << 16`.
    Lui { rt: Reg, imm: u16 },

    /// `rd <- rs + rt` (wrapping; no overflow traps, like `addu`).
    Addu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs - rt` (wrapping).
    Subu { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs * rt` (wrapping low 32 bits; pseudo for `mult`+`mflo`).
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs / rt` (signed; pseudo for `div`+`mflo`).
    Div { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs % rt` (signed; pseudo for `div`+`mfhi`).
    Rem { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs & rt`.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs | rt`.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- rs ^ rt`.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- !(rs | rt)`.
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- (rs < rt)` signed.
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rd <- (rs < rt)` unsigned.
    Sltu { rd: Reg, rs: Reg, rt: Reg },

    /// `rt <- rs + imm` (wrapping, sign-extended immediate).
    Addiu { rt: Reg, rs: Reg, imm: i16 },
    /// `rt <- rs & imm` (zero-extended immediate).
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// `rt <- rs | imm` (zero-extended immediate).
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt <- rs ^ imm` (zero-extended immediate).
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// `rt <- (rs < imm)` signed.
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// `rt <- (rs < imm)` unsigned comparison of sign-extended imm.
    Sltiu { rt: Reg, rs: Reg, imm: i16 },

    /// `rd <- rt << shamt`.
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd <- rt >> shamt` (logical).
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd <- rt >> shamt` (arithmetic).
    Sra { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd <- rt << (rs & 31)`.
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    /// `rd <- rt >> (rs & 31)` (logical).
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    /// `rd <- rt >> (rs & 31)` (arithmetic).
    Srav { rd: Reg, rt: Reg, rs: Reg },

    /// Branch if `rs == rt`.
    Beq { rs: Reg, rt: Reg, target: Label },
    /// Branch if `rs != rt`.
    Bne { rs: Reg, rt: Reg, target: Label },
    /// Branch if `rs <= 0` (signed).
    Blez { rs: Reg, target: Label },
    /// Branch if `rs > 0` (signed).
    Bgtz { rs: Reg, target: Label },
    /// Branch if `rs < 0` (signed).
    Bltz { rs: Reg, target: Label },
    /// Branch if `rs >= 0` (signed).
    Bgez { rs: Reg, target: Label },

    /// Unconditional jump.
    J { target: Label },
    /// Jump and link: `ra <- return address; pc <- target`.
    Jal { target: Label },
    /// Jump register (returns, indirect calls).
    Jr { rs: Reg },
    /// Jump and link register.
    Jalr { rd: Reg, rs: Reg },

    /// Environment call; `$v0` selects the service (see `dl-sim`).
    Syscall,
    /// No operation.
    Nop,
}

impl Inst {
    /// Returns the register this instruction writes, if any.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        use Inst::*;
        let d = match *self {
            Lw { rt, .. }
            | Lb { rt, .. }
            | Lbu { rt, .. }
            | Lh { rt, .. }
            | Lhu { rt, .. }
            | Lui { rt, .. } => rt,
            Addu { rd, .. }
            | Subu { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Rem { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Nor { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. } => rd,
            Addiu { rt, .. }
            | Andi { rt, .. }
            | Ori { rt, .. }
            | Xori { rt, .. }
            | Slti { rt, .. }
            | Sltiu { rt, .. } => rt,
            Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Sllv { rd, .. }
            | Srlv { rd, .. }
            | Srav { rd, .. } => rd,
            Jal { .. } => Reg::Ra,
            Jalr { rd, .. } => rd,
            Sw { .. }
            | Sb { .. }
            | Sh { .. }
            | Beq { .. }
            | Bne { .. }
            | Blez { .. }
            | Bgtz { .. }
            | Bltz { .. }
            | Bgez { .. }
            | J { .. }
            | Jr { .. }
            | Syscall
            | Nop => return None,
        };
        // Writes to $zero are architectural no-ops.
        (d != Reg::Zero).then_some(d)
    }

    /// Returns the registers this instruction reads (up to two).
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        use Inst::*;
        match *self {
            Lw { base, .. }
            | Lb { base, .. }
            | Lbu { base, .. }
            | Lh { base, .. }
            | Lhu { base, .. } => vec![base],
            Sw { rt, base, .. } | Sb { rt, base, .. } | Sh { rt, base, .. } => vec![rt, base],
            Lui { .. } => vec![],
            Addu { rs, rt, .. }
            | Subu { rs, rt, .. }
            | Mul { rs, rt, .. }
            | Div { rs, rt, .. }
            | Rem { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. } => vec![rs, rt],
            Addiu { rs, .. }
            | Andi { rs, .. }
            | Ori { rs, .. }
            | Xori { rs, .. }
            | Slti { rs, .. }
            | Sltiu { rs, .. } => vec![rs],
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => vec![rt],
            Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => vec![rt, rs],
            Beq { rs, rt, .. } | Bne { rs, rt, .. } => vec![rs, rt],
            Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => vec![rs],
            Jr { rs } | Jalr { rs, .. } => vec![rs],
            J { .. } | Jal { .. } | Nop => vec![],
            Syscall => vec![Reg::V0, Reg::A0, Reg::A1],
        }
    }

    /// Returns `(dest, base, offset, width)` if this is a load.
    #[must_use]
    pub fn as_load(&self) -> Option<(Reg, Reg, i16, MemWidth)> {
        use Inst::*;
        match *self {
            Lw { rt, base, off } => Some((rt, base, off, MemWidth::Word)),
            Lb { rt, base, off } => Some((rt, base, off, MemWidth::Byte)),
            Lbu { rt, base, off } => Some((rt, base, off, MemWidth::ByteUnsigned)),
            Lh { rt, base, off } => Some((rt, base, off, MemWidth::Half)),
            Lhu { rt, base, off } => Some((rt, base, off, MemWidth::HalfUnsigned)),
            _ => None,
        }
    }

    /// Returns `(src, base, offset, width)` if this is a store.
    #[must_use]
    pub fn as_store(&self) -> Option<(Reg, Reg, i16, MemWidth)> {
        use Inst::*;
        match *self {
            Sw { rt, base, off } => Some((rt, base, off, MemWidth::Word)),
            Sb { rt, base, off } => Some((rt, base, off, MemWidth::Byte)),
            Sh { rt, base, off } => Some((rt, base, off, MemWidth::Half)),
            _ => None,
        }
    }

    /// Returns `true` if this is a load instruction.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.as_load().is_some()
    }

    /// Returns `true` if this is a store instruction.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.as_store().is_some()
    }

    /// Returns the static control-flow target for branches and direct
    /// jumps (`j`/`jal` included).
    #[must_use]
    pub fn target(&self) -> Option<Label> {
        use Inst::*;
        match *self {
            Beq { target, .. }
            | Bne { target, .. }
            | Blez { target, .. }
            | Bgtz { target, .. }
            | Bltz { target, .. }
            | Bgez { target, .. }
            | J { target }
            | Jal { target } => Some(target),
            _ => None,
        }
    }

    /// Returns `true` for conditional branches.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Beq { .. }
                | Inst::Bne { .. }
                | Inst::Blez { .. }
                | Inst::Bgtz { .. }
                | Inst::Bltz { .. }
                | Inst::Bgez { .. }
        )
    }

    /// Returns `true` for instructions that never fall through to the
    /// next instruction (`j`, `jr`).
    ///
    /// Calls (`jal`/`jalr`) are treated as falling through: control
    /// returns to the following instruction, which is how the paper's
    /// intra-procedural CFG treats them.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::J { .. } | Inst::Jr { .. })
    }

    /// Returns `true` for call instructions (`jal`/`jalr`).
    #[must_use]
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. })
    }

    /// Rewrites the branch/jump target, if this instruction has one.
    pub fn set_target(&mut self, new: Label) {
        use Inst::*;
        match self {
            Beq { target, .. }
            | Bne { target, .. }
            | Blez { target, .. }
            | Bgtz { target, .. }
            | Bltz { target, .. }
            | Bgez { target, .. }
            | J { target }
            | Jal { target } => {
                *target = new;
            }
            _ => {}
        }
    }

    /// The assembly mnemonic.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        use Inst::*;
        match self {
            Lw { .. } => "lw",
            Lb { .. } => "lb",
            Lbu { .. } => "lbu",
            Lh { .. } => "lh",
            Lhu { .. } => "lhu",
            Sw { .. } => "sw",
            Sb { .. } => "sb",
            Sh { .. } => "sh",
            Lui { .. } => "lui",
            Addu { .. } => "addu",
            Subu { .. } => "subu",
            Mul { .. } => "mul",
            Div { .. } => "div",
            Rem { .. } => "rem",
            And { .. } => "and",
            Or { .. } => "or",
            Xor { .. } => "xor",
            Nor { .. } => "nor",
            Slt { .. } => "slt",
            Sltu { .. } => "sltu",
            Addiu { .. } => "addiu",
            Andi { .. } => "andi",
            Ori { .. } => "ori",
            Xori { .. } => "xori",
            Slti { .. } => "slti",
            Sltiu { .. } => "sltiu",
            Sll { .. } => "sll",
            Srl { .. } => "srl",
            Sra { .. } => "sra",
            Sllv { .. } => "sllv",
            Srlv { .. } => "srlv",
            Srav { .. } => "srav",
            Beq { .. } => "beq",
            Bne { .. } => "bne",
            Blez { .. } => "blez",
            Bgtz { .. } => "bgtz",
            Bltz { .. } => "bltz",
            Bgez { .. } => "bgez",
            J { .. } => "j",
            Jal { .. } => "jal",
            Jr { .. } => "jr",
            Jalr { .. } => "jalr",
            Syscall => "syscall",
            Nop => "nop",
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        let m = self.mnemonic();
        match *self {
            Lw { rt, base, off }
            | Lb { rt, base, off }
            | Lbu { rt, base, off }
            | Lh { rt, base, off }
            | Lhu { rt, base, off }
            | Sw { rt, base, off }
            | Sb { rt, base, off }
            | Sh { rt, base, off } => {
                write!(f, "{m} {rt}, {off}({base})")
            }
            Lui { rt, imm } => write!(f, "{m} {rt}, {imm:#x}"),
            Addu { rd, rs, rt }
            | Subu { rd, rs, rt }
            | Mul { rd, rs, rt }
            | Div { rd, rs, rt }
            | Rem { rd, rs, rt }
            | And { rd, rs, rt }
            | Or { rd, rs, rt }
            | Xor { rd, rs, rt }
            | Nor { rd, rs, rt }
            | Slt { rd, rs, rt }
            | Sltu { rd, rs, rt } => {
                write!(f, "{m} {rd}, {rs}, {rt}")
            }
            Addiu { rt, rs, imm } | Slti { rt, rs, imm } | Sltiu { rt, rs, imm } => {
                write!(f, "{m} {rt}, {rs}, {imm}")
            }
            Andi { rt, rs, imm } | Ori { rt, rs, imm } | Xori { rt, rs, imm } => {
                write!(f, "{m} {rt}, {rs}, {imm:#x}")
            }
            Sll { rd, rt, shamt } | Srl { rd, rt, shamt } | Sra { rd, rt, shamt } => {
                write!(f, "{m} {rd}, {rt}, {shamt}")
            }
            Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => {
                write!(f, "{m} {rd}, {rt}, {rs}")
            }
            Beq { rs, rt, target } | Bne { rs, rt, target } => {
                write!(f, "{m} {rs}, {rt}, {target}")
            }
            Blez { rs, target }
            | Bgtz { rs, target }
            | Bltz { rs, target }
            | Bgez { rs, target } => write!(f, "{m} {rs}, {target}"),
            J { target } | Jal { target } => write!(f, "{m} {target}"),
            Jr { rs } => write!(f, "{m} {rs}"),
            Jalr { rd, rs } => write!(f, "{m} {rd}, {rs}"),
            Syscall | Nop => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Lw {
            rt: Reg::T0,
            base: Reg::Sp,
            off: 8,
        };
        assert_eq!(i.def(), Some(Reg::T0));
        assert_eq!(i.uses(), vec![Reg::Sp]);
        assert!(i.is_load());
        assert!(!i.is_store());

        let s = Inst::Sw {
            rt: Reg::T1,
            base: Reg::Gp,
            off: -4,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg::T1, Reg::Gp]);
        assert!(s.is_store());
    }

    #[test]
    fn writes_to_zero_are_not_defs() {
        let i = Inst::Addu {
            rd: Reg::Zero,
            rs: Reg::T0,
            rt: Reg::T1,
        };
        assert_eq!(i.def(), None);
    }

    #[test]
    fn jal_defines_ra() {
        let i = Inst::Jal { target: Label(3) };
        assert_eq!(i.def(), Some(Reg::Ra));
        assert!(i.is_call());
        assert_eq!(i.target(), Some(Label(3)));
    }

    #[test]
    fn branch_classification() {
        let b = Inst::Bne {
            rs: Reg::T0,
            rt: Reg::Zero,
            target: Label(10),
        };
        assert!(b.is_branch());
        assert!(!b.is_terminator());
        assert_eq!(b.target(), Some(Label(10)));

        let j = Inst::J { target: Label(0) };
        assert!(!j.is_branch());
        assert!(j.is_terminator());

        let jr = Inst::Jr { rs: Reg::Ra };
        assert!(jr.is_terminator());
        assert_eq!(jr.target(), None);
    }

    #[test]
    fn set_target_rewrites() {
        let mut b = Inst::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            target: Label(1),
        };
        b.set_target(Label(42));
        assert_eq!(b.target(), Some(Label(42)));
    }

    #[test]
    fn display_formats() {
        let i = Inst::Lw {
            rt: Reg::T0,
            base: Reg::Sp,
            off: 45,
        };
        assert_eq!(i.to_string(), "lw $t0, 45($sp)");
        let b = Inst::Beq {
            rs: Reg::T0,
            rt: Reg::Zero,
            target: Label(9),
        };
        assert_eq!(b.to_string(), "beq $t0, $zero, .L9");
        assert_eq!(Inst::Nop.to_string(), "nop");
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::HalfUnsigned.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }
}
