//! Property tests: any well-formed instruction stream survives the
//! assembly print → parse round trip exactly.

use proptest::prelude::*;

use dl_mips::inst::{Inst, Label};
use dl_mips::parse::parse_asm;
use dl_mips::program::{Program, SymbolTable};
use dl_mips::reg::Reg;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::from_number(n).expect("in range"))
}

/// Instructions without control flow (targets are patched separately).
fn arb_plain_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, base, off)| Inst::Lw { rt, base, off }),
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, base, off)| Inst::Lb { rt, base, off }),
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, base, off)| Inst::Sw { rt, base, off }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Inst::Lui { rt, imm }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, rs, rt)| Inst::Addu { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, rs, rt)| Inst::Subu { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, rs, rt)| Inst::Mul { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, rs, rt)| Inst::Nor { rd, rs, rt }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, rs, rt)| Inst::Sltu { rd, rs, rt }),
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, rs, imm)| Inst::Addiu { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>())
            .prop_map(|(rt, rs, imm)| Inst::Ori { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(rt, rs, imm)| Inst::Slti { rt, rs, imm }),
        (arb_reg(), arb_reg(), 0u8..32)
            .prop_map(|(rd, rt, shamt)| Inst::Sll { rd, rt, shamt }),
        (arb_reg(), arb_reg(), 0u8..32)
            .prop_map(|(rd, rt, shamt)| Inst::Sra { rd, rt, shamt }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, rt, rs)| Inst::Srlv { rd, rt, rs }),
        arb_reg().prop_map(|rs| Inst::Jr { rs }),
        Just(Inst::Syscall),
        Just(Inst::Nop),
    ]
}

/// A program: plain instructions with a few branches patched to valid
/// in-range targets.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_plain_inst(), 1..40),
        prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..6),
    )
        .prop_map(|(mut insts, branches)| {
            let n = insts.len();
            for (at, target) in branches {
                let at = at.index(n);
                let target = Label(target.index(n) as u32);
                insts[at] = Inst::Bne {
                    rs: Reg::T0,
                    rt: Reg::Zero,
                    target,
                };
            }
            let mut symbols = SymbolTable::new();
            symbols.add_func("main", 0, n);
            Program {
                insts,
                symbols,
                data: Vec::new(),
                entry: 0,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn asm_round_trip_is_exact(program in arb_program()) {
        let text = program.to_asm();
        let reparsed = parse_asm(&text).expect("printer output parses");
        prop_assert_eq!(&program.insts, &reparsed.insts);
        prop_assert_eq!(program.entry, reparsed.entry);
    }

    #[test]
    fn def_is_never_in_uses_unless_reused(inst in arb_plain_inst()) {
        // `def()` never reports $zero, and `uses()` never panics.
        if let Some(d) = inst.def() {
            prop_assert_ne!(d, Reg::Zero);
        }
        let _ = inst.uses();
    }

    #[test]
    fn display_parse_single_inst(inst in arb_plain_inst()) {
        // Single-instruction round trip through the parser.
        let src = format!("main:\n\t{inst}\n");
        let p = parse_asm(&src).expect("single instruction parses");
        prop_assert_eq!(p.insts[0], inst);
    }
}

mod binary {
    use super::*;
    use dl_mips::encode::{decode_program, encode_inst, encode_program};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Binary encode → decode is the identity (modulo the canonical
        /// all-zero word, which is `nop` by definition).
        #[test]
        fn binary_round_trip(program in arb_program()) {
            let words = encode_program(&program).expect("in-range targets");
            let back = decode_program(&words).expect("own output decodes");
            for (i, (orig, dec)) in program.insts.iter().zip(&back).enumerate() {
                if words[i] == 0 {
                    prop_assert_eq!(*dec, Inst::Nop);
                } else {
                    prop_assert_eq!(orig, dec, "word {:#010x} at {}", words[i], i);
                }
            }
        }

        /// Distinct instructions never collide on the same word (except
        /// through the nop canonicalization).
        #[test]
        fn encoding_is_injective(a in arb_plain_inst(), b in arb_plain_inst()) {
            let wa = encode_inst(&a, 0).expect("plain instructions encode");
            let wb = encode_inst(&b, 0).expect("plain instructions encode");
            if wa == wb && wa != 0 {
                prop_assert_eq!(a, b);
            }
        }
    }
}

mod decoder_fuzz {
    use super::*;
    use dl_mips::encode::{decode_inst, encode_inst};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2048))]

        /// Arbitrary words never panic the decoder, and everything it
        /// accepts re-encodes to the same word (decode is a partial
        /// inverse of encode).
        #[test]
        fn arbitrary_words_decode_safely(word in any::<u32>(), at in 0usize..1000) {
            if let Ok(inst) = decode_inst(word, at) {
                let re = encode_inst(&inst, at).expect("decoded instructions re-encode");
                // The zero word is canonical nop; everything else is exact.
                if word != 0 {
                    prop_assert_eq!(re, word, "{:?}", inst);
                }
            }
        }
    }
}
