//! Property tests: any well-formed instruction stream survives the
//! assembly print → parse round trip exactly.

use dl_mips::inst::{Inst, Label};
use dl_mips::parse::parse_asm;
use dl_mips::program::{Program, SymbolTable};
use dl_mips::reg::Reg;
use dl_testkit::{cases, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::from_number(rng.range_i32(0, 32) as u8).expect("in range")
}

fn arb_i16(rng: &mut Rng) -> i16 {
    rng.range_i32(i32::from(i16::MIN), i32::from(i16::MAX) + 1) as i16
}

fn arb_u16(rng: &mut Rng) -> u16 {
    rng.range_u32(0, 0x1_0000) as u16
}

/// Instructions without control flow (targets are patched separately).
fn arb_plain_inst(rng: &mut Rng) -> Inst {
    match rng.index(18) {
        0 => Inst::Lw {
            rt: arb_reg(rng),
            base: arb_reg(rng),
            off: arb_i16(rng),
        },
        1 => Inst::Lb {
            rt: arb_reg(rng),
            base: arb_reg(rng),
            off: arb_i16(rng),
        },
        2 => Inst::Sw {
            rt: arb_reg(rng),
            base: arb_reg(rng),
            off: arb_i16(rng),
        },
        3 => Inst::Lui {
            rt: arb_reg(rng),
            imm: arb_u16(rng),
        },
        4 => Inst::Addu {
            rd: arb_reg(rng),
            rs: arb_reg(rng),
            rt: arb_reg(rng),
        },
        5 => Inst::Subu {
            rd: arb_reg(rng),
            rs: arb_reg(rng),
            rt: arb_reg(rng),
        },
        6 => Inst::Mul {
            rd: arb_reg(rng),
            rs: arb_reg(rng),
            rt: arb_reg(rng),
        },
        7 => Inst::Nor {
            rd: arb_reg(rng),
            rs: arb_reg(rng),
            rt: arb_reg(rng),
        },
        8 => Inst::Sltu {
            rd: arb_reg(rng),
            rs: arb_reg(rng),
            rt: arb_reg(rng),
        },
        9 => Inst::Addiu {
            rt: arb_reg(rng),
            rs: arb_reg(rng),
            imm: arb_i16(rng),
        },
        10 => Inst::Ori {
            rt: arb_reg(rng),
            rs: arb_reg(rng),
            imm: arb_u16(rng),
        },
        11 => Inst::Slti {
            rt: arb_reg(rng),
            rs: arb_reg(rng),
            imm: arb_i16(rng),
        },
        12 => Inst::Sll {
            rd: arb_reg(rng),
            rt: arb_reg(rng),
            shamt: rng.range_i32(0, 32) as u8,
        },
        13 => Inst::Sra {
            rd: arb_reg(rng),
            rt: arb_reg(rng),
            shamt: rng.range_i32(0, 32) as u8,
        },
        14 => Inst::Srlv {
            rd: arb_reg(rng),
            rt: arb_reg(rng),
            rs: arb_reg(rng),
        },
        15 => Inst::Jr { rs: arb_reg(rng) },
        16 => Inst::Syscall,
        _ => Inst::Nop,
    }
}

/// A program: plain instructions with a few branches patched to valid
/// in-range targets.
fn arb_program(rng: &mut Rng) -> Program {
    let mut insts = rng.vec_of(1, 40, arb_plain_inst);
    let n = insts.len();
    for _ in 0..rng.index(6) {
        let at = rng.index(n);
        let target = Label(rng.index(n) as u32);
        insts[at] = Inst::Bne {
            rs: Reg::T0,
            rt: Reg::Zero,
            target,
        };
    }
    let mut symbols = SymbolTable::new();
    symbols.add_func("main", 0, n);
    Program {
        insts,
        symbols,
        data: Vec::new(),
        entry: 0,
    }
}

#[test]
fn asm_round_trip_is_exact() {
    cases(256, 0x31351, |rng| {
        let program = arb_program(rng);
        let text = program.to_asm();
        let reparsed = parse_asm(&text).expect("printer output parses");
        assert_eq!(&program.insts, &reparsed.insts);
        assert_eq!(program.entry, reparsed.entry);
    });
}

#[test]
fn def_is_never_in_uses_unless_reused() {
    cases(256, 0x31352, |rng| {
        let inst = arb_plain_inst(rng);
        // `def()` never reports $zero, and `uses()` never panics.
        if let Some(d) = inst.def() {
            assert_ne!(d, Reg::Zero);
        }
        let _ = inst.uses();
    });
}

#[test]
fn display_parse_single_inst() {
    cases(256, 0x31353, |rng| {
        let inst = arb_plain_inst(rng);
        // Single-instruction round trip through the parser.
        let src = format!("main:\n\t{inst}\n");
        let p = parse_asm(&src).expect("single instruction parses");
        assert_eq!(p.insts[0], inst);
    });
}

mod binary {
    use super::*;
    use dl_mips::encode::{decode_program, encode_inst, encode_program};

    /// Binary encode → decode is the identity (modulo the canonical
    /// all-zero word, which is `nop` by definition).
    #[test]
    fn binary_round_trip() {
        cases(256, 0x31354, |rng| {
            let program = arb_program(rng);
            let words = encode_program(&program).expect("in-range targets");
            let back = decode_program(&words).expect("own output decodes");
            for (i, (orig, dec)) in program.insts.iter().zip(&back).enumerate() {
                if words[i] == 0 {
                    assert_eq!(*dec, Inst::Nop);
                } else {
                    assert_eq!(orig, dec, "word {:#010x} at {}", words[i], i);
                }
            }
        });
    }

    /// Distinct instructions never collide on the same word (except
    /// through the nop canonicalization).
    #[test]
    fn encoding_is_injective() {
        cases(256, 0x31355, |rng| {
            let a = arb_plain_inst(rng);
            let b = arb_plain_inst(rng);
            let wa = encode_inst(&a, 0).expect("plain instructions encode");
            let wb = encode_inst(&b, 0).expect("plain instructions encode");
            if wa == wb && wa != 0 {
                assert_eq!(a, b);
            }
        });
    }
}

mod decoder_fuzz {
    use super::*;
    use dl_mips::encode::{decode_inst, encode_inst};

    /// Arbitrary words never panic the decoder, and everything it
    /// accepts re-encodes to the same word (decode is a partial
    /// inverse of encode).
    #[test]
    fn arbitrary_words_decode_safely() {
        cases(2048, 0x31356, |rng| {
            let word = rng.next_u32();
            let at = rng.index(1000);
            if let Ok(inst) = decode_inst(word, at) {
                let re = encode_inst(&inst, at).expect("decoded instructions re-encode");
                // The zero word is canonical nop; everything else is exact.
                if word != 0 {
                    assert_eq!(re, word, "{inst:?}");
                }
            }
        });
    }
}
