//! # dl-workloads
//!
//! Eighteen synthetic benchmarks written in MiniC, one per SPEC program
//! used in the paper's evaluation. Each is engineered to exhibit the
//! documented memory-behaviour class of its SPEC counterpart —
//! pointer-chasing for `181.mcf` and `022.li`, stencil streaming for
//! `101.tomcatv`, hash-table compression for `129.compress`/`164.gzip`,
//! struct-heavy object traversal for `147.vortex`, sparse gathers for
//! `183.equake`, and so on — scaled to run in a few million simulated
//! instructions instead of SPEC's 10⁸–10¹².
//!
//! The paper trains its heuristic on eleven benchmarks and holds out
//! seven (`022.li`, `072.sc`, `101.tomcatv`, `124.m88ksim`, `126.gcc`,
//! `132.ijpeg`, `300.twolf`) as a generalization test (its Table 10);
//! [`Benchmark::training`] carries that split. Each benchmark has two
//! input sets (Table 6): programs read their parameters with the
//! `read()` intrinsic.
//!
//! # Example
//!
//! ```
//! use dl_workloads::{by_name, training_set, test_set};
//!
//! assert_eq!(training_set().len(), 11);
//! assert_eq!(test_set().len(), 7);
//! let mcf = by_name("181.mcf").unwrap();
//! assert!(mcf.training);
//! assert!(!mcf.input1.is_empty());
//! ```

#![warn(missing_docs)]

use dl_minic::{compile, CompileError, OptLevel};

/// The cold library source linked into every benchmark.
const COLD_LIB: &str = include_str!("../programs/_coldlib.mc");
use dl_mips::program::Program;

/// One synthetic benchmark: MiniC source plus its two input sets.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// SPEC-style name (e.g. `"181.mcf"`).
    pub name: &'static str,
    /// What the synthetic program models.
    pub description: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    /// "Input 1" — the training/reference input (paper Table 6).
    pub input1: Vec<i32>,
    /// "Input 2" — the alternative input used in the stability test.
    pub input2: Vec<i32>,
    /// `true` for the eleven training benchmarks.
    pub training: bool,
}

impl Benchmark {
    /// Compiles the benchmark at the given optimization level.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] — which for the bundled benchmarks
    /// indicates a bug, covered by tests.
    pub fn compile(&self, opt: OptLevel) -> Result<Program, CompileError> {
        compile(&self.full_source(), opt)
    }

    /// The complete translation unit: two renamed copies of the cold
    /// library (see `programs/_coldlib.mc`), the `cold_boot` wrapper
    /// every program calls once, and the benchmark source itself.
    #[must_use]
    pub fn full_source(&self) -> String {
        let mut s = String::with_capacity(COLD_LIB.len() * 2 + self.source.len() + 128);
        s.push_str(COLD_LIB);
        s.push_str(&COLD_LIB.replace("cold_", "coldx_"));
        s.push_str("int cold_boot(int s) { return cold_entry(s) + coldx_entry(s + 3); }\n");
        s.push_str(self.source);
        s
    }

    /// The input vector for input set 1 or 2.
    ///
    /// # Panics
    ///
    /// Panics if `which` is not 1 or 2.
    #[must_use]
    pub fn input(&self, which: u8) -> &[i32] {
        match which {
            1 => &self.input1,
            2 => &self.input2,
            _ => panic!("input set must be 1 or 2"),
        }
    }
}

macro_rules! bench {
    ($name:literal, $file:literal, $desc:literal, $training:literal,
     in1: [$($i1:expr),* $(,)?], in2: [$($i2:expr),* $(,)?]) => {
        Benchmark {
            name: $name,
            description: $desc,
            source: include_str!(concat!("../programs/", $file)),
            input1: vec![$($i1),*],
            input2: vec![$($i2),*],
            training: $training,
        }
    };
}

/// All eighteen benchmarks, in the paper's Table 1 order.
#[must_use]
pub fn all() -> Vec<Benchmark> {
    vec![
        bench!("008.espresso", "espresso.mc",
               "boolean minimization: cube tables, bitwise set operations",
               true, in1: [1024, 24, 1], in2: [640, 32, 2]),
        bench!("022.li", "li.mc",
               "lisp interpreter: cons-cell lists, shuffled pointer chasing",
               false, in1: [12000, 18, 5], in2: [9000, 12, 9]),
        bench!("072.sc", "sc.mc",
               "spreadsheet: cell grid with dependency recomputation",
               false, in1: [72, 60, 6], in2: [56, 44, 8]),
        bench!("099.go", "go.mc",
               "game playing: board scans, pattern lookup tables",
               true, in1: [40, 9, 3], in2: [60, 11, 5]),
        bench!("101.tomcatv", "tomcatv.mc",
               "mesh generation: 2-D stencil sweeps over large arrays",
               false, in1: [110, 8], in2: [90, 6]),
        bench!("124.m88ksim", "m88ksim.mc",
               "CPU simulator: fetch/decode/execute over a code image",
               false, in1: [40000, 7], in2: [28000, 11]),
        bench!("126.gcc", "gcc.mc",
               "compiler: IR lists, symbol hashing, per-function passes",
               false, in1: [160, 28, 4], in2: [120, 20, 7]),
        bench!("129.compress", "compress.mc",
               "LZW compression: large hash table, scattered probes",
               true, in1: [60000, 4], in2: [40000, 5]),
        bench!("132.ijpeg", "ijpeg.mc",
               "image codec: blocked 2-D transforms with quantization",
               false, in1: [40, 6], in2: [28, 8]),
        bench!("147.vortex", "vortex.mc",
               "object database: wide structs, indexed object tables",
               true, in1: [2600, 9], in2: [1800, 12]),
        bench!("164.gzip", "gzip.mc",
               "LZ77 compression: sliding window, hash chains",
               true, in1: [50000, 5], in2: [36000, 7]),
        bench!("175.vpr", "vpr.mc",
               "FPGA placement: grid arrays, random swap annealing",
               true, in1: [52, 26000, 3], in2: [40, 18000, 6]),
        bench!("179.art", "art.mc",
               "neural network: streaming weight-matrix products",
               true, in1: [56, 9000, 10], in2: [44, 7000, 12]),
        bench!("181.mcf", "mcf.mc",
               "network simplex: node/arc structs, pointer walking",
               true, in1: [2800, 5600, 6], in2: [2000, 4000, 9]),
        bench!("183.equake", "equake.mc",
               "earthquake FEM: sparse matrix-vector gathers",
               true, in1: [2400, 14, 8], in2: [1800, 10, 11]),
        bench!("188.ammp", "ammp.mc",
               "molecular dynamics: atom structs, neighbor gathers",
               true, in1: [1900, 8, 7], in2: [1400, 6, 10]),
        bench!("197.parser", "parser.mc",
               "link parser: dictionary hashing, chained lookups",
               true, in1: [9000, 11], in2: [6500, 13]),
        bench!("300.twolf", "twolf.mc",
               "standard-cell placement: grid + net structs, annealing",
               false, in1: [44, 20000, 4], in2: [36, 14000, 8]),
    ]
}

/// The three extension benchmarks added for the memory-system matrix
/// (DESIGN.md "Memory-system matrix"): access-pattern families the
/// paper's SPEC-derived eighteen under-represent, chosen so the policy
/// × hierarchy × prefetch sweep actually discriminates. Not part of
/// the paper's training/test split ([`all`] stays at eighteen).
#[must_use]
pub fn extension_benchmarks() -> Vec<Benchmark> {
    vec![
        bench!("ext.btree", "btree.mc",
               "B-tree point lookups: per-node key scans, scattered descents",
               false, in1: [24000, 4000, 3], in2: [15000, 2600, 5]),
        bench!("ext.hashjoin", "hashjoin.mc",
               "hash join: streaming probes into chained buckets",
               false, in1: [4000, 6000, 3], in2: [2800, 4200, 5]),
        bench!("ext.bfs", "bfs.mc",
               "graph BFS over CSR: edge-slice streams, visited gathers",
               false, in1: [3000, 8, 4], in2: [2200, 6, 6]),
    ]
}

/// The full suite: the paper's eighteen plus the extension
/// benchmarks — what the differential and matrix sweeps iterate.
#[must_use]
pub fn all_with_extensions() -> Vec<Benchmark> {
    let mut v = all();
    v.extend(extension_benchmarks());
    v
}

/// The eleven training benchmarks (paper §8.2).
#[must_use]
pub fn training_set() -> Vec<Benchmark> {
    all().into_iter().filter(|b| b.training).collect()
}

/// The seven held-out benchmarks (paper Table 10).
#[must_use]
pub fn test_set() -> Vec<Benchmark> {
    all().into_iter().filter(|b| !b.training).collect()
}

/// Looks up a benchmark by name, extension benchmarks included.
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_with_extensions().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_eleven_seven() {
        assert_eq!(all().len(), 18);
        assert_eq!(training_set().len(), 11);
        assert_eq!(test_set().len(), 7);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_with_extensions().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("181.mcf").is_some());
        assert!(by_name("ext.bfs").is_some());
        assert!(by_name("999.nope").is_none());
    }

    #[test]
    fn extensions_ride_outside_the_paper_split() {
        assert_eq!(extension_benchmarks().len(), 3);
        assert_eq!(all_with_extensions().len(), 21);
        for b in extension_benchmarks() {
            assert!(b.name.starts_with("ext."), "{}", b.name);
            assert!(!b.training, "{} must stay out of training", b.name);
            assert!(all().iter().all(|p| p.name != b.name));
        }
    }

    #[test]
    fn every_benchmark_compiles_at_both_levels() {
        for b in all_with_extensions() {
            for opt in [OptLevel::O0, OptLevel::O1] {
                b.compile(opt)
                    .unwrap_or_else(|e| panic!("{} fails at {opt}: {e}", b.name));
            }
        }
    }

    #[test]
    fn inputs_are_distinct() {
        for b in all_with_extensions() {
            assert_ne!(b.input1, b.input2, "{} inputs identical", b.name);
        }
    }

    #[test]
    #[should_panic(expected = "input set")]
    fn bad_input_selector_panics() {
        let b = by_name("181.mcf").unwrap();
        let _ = b.input(3);
    }
}
