//! Determinism guarantees of the parallel pipeline: a document
//! rendered over a memo table warmed by N workers must be
//! byte-identical to one warmed sequentially, and racing threads on
//! one key must share a single simulation.

use std::sync::Arc;

use dl_experiments::document::experiments_doc;
use dl_experiments::pipeline::{BenchRun, Pipeline};
use dl_experiments::schedule::{prewarm, union_specs, RunSpec};
use dl_experiments::tables::{all_tables, TableFn};
use dl_minic::OptLevel;
use dl_sim::CacheConfig;

/// A table subset spanning both input sets and two cache geometries,
/// excluding `extension-prefetch` (which simulates outside the
/// pipeline and would dominate the test's runtime).
const SUBSET: &[&str] = &["table1", "table3", "table7"];

/// Shrinks benchmark inputs so the test stays fast; the memo key
/// ignores input *values*, so table generators hit these entries.
fn shrunk_specs(tables: &[&str]) -> Vec<RunSpec> {
    let mut specs = union_specs(tables.iter().copied());
    for spec in &mut specs {
        for v in spec
            .bench
            .input1
            .iter_mut()
            .chain(spec.bench.input2.iter_mut())
        {
            *v = (*v).clamp(1, 64);
        }
    }
    specs
}

fn subset_tables() -> Vec<(&'static str, TableFn)> {
    all_tables()
        .into_iter()
        .filter(|(name, _)| SUBSET.contains(name))
        .collect()
}

fn render(jobs: usize) -> String {
    let pipeline = Pipeline::new();
    prewarm(&pipeline, &shrunk_specs(SUBSET), jobs);
    experiments_doc(&pipeline, &subset_tables(), |_, _| {})
}

#[test]
fn parallel_prewarm_renders_byte_identical_documents() {
    let sequential = render(1);
    for jobs in [2, 4, 8] {
        let parallel = render(jobs);
        assert_eq!(
            sequential, parallel,
            "document differs between 1 and {jobs} prewarm workers"
        );
    }
}

#[test]
fn hammering_one_key_runs_one_simulation() {
    let pipeline = Pipeline::new();
    let mut bench = dl_workloads::by_name("197.parser").expect("exists");
    bench.input1 = vec![200, 2];
    let runs: Vec<Arc<BenchRun>> = std::thread::scope(|scope| {
        (0..16)
            .map(|_| {
                let pipeline = &pipeline;
                let bench = &bench;
                scope.spawn(move || {
                    pipeline.run(bench, OptLevel::O0, 1, CacheConfig::paper_baseline())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker joins"))
            .collect()
    });
    assert_eq!(pipeline.simulations(), 1);
    for run in &runs {
        assert!(Arc::ptr_eq(run, &runs[0]));
    }
}
