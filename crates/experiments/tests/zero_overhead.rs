//! Observability must never perturb results: the experiment tables a
//! pipeline renders with miss classification (the `DL_OBS`/`--profile`
//! collection path), span tracing (`--trace-out`), or the per-site
//! miss observatory (`dlc top`) enabled are byte-identical to an
//! unobserved run. Instrumentation only *labels or times* work the
//! simulator already does — it must not change what hits or misses,
//! and none of its output flows into the tables.

use std::sync::Arc;

use dl_experiments::document::experiments_doc;
use dl_experiments::pipeline::Pipeline;
use dl_experiments::schedule::{prewarm, union_specs, RunSpec};
use dl_experiments::tables::{all_tables, TableFn};
use dl_obs::Spans;
use dl_sim::{Engine, ObserveConfig};

const SUBSET: &[&str] = &["table3", "table7"];

fn shrunk_specs(tables: &[&str]) -> Vec<RunSpec> {
    let mut specs = union_specs(tables.iter().copied());
    for spec in &mut specs {
        for v in spec
            .bench
            .input1
            .iter_mut()
            .chain(spec.bench.input2.iter_mut())
        {
            *v = (*v).clamp(1, 64);
        }
    }
    specs
}

fn subset_tables() -> Vec<(&'static str, TableFn)> {
    all_tables()
        .into_iter()
        .filter(|(name, _)| SUBSET.contains(name))
        .collect()
}

/// Which instrumentation the pipeline runs under, one axis at a time.
#[derive(Debug, Clone, Copy)]
enum Instrument {
    Off,
    Classify,
    Trace,
    Observe,
}

fn render_instrumented(mode: Instrument, engine: Engine) -> String {
    let pipeline = Pipeline::new();
    pipeline.set_engine(engine);
    match mode {
        Instrument::Off => {}
        Instrument::Classify => pipeline.set_classify_misses(true),
        Instrument::Trace => pipeline.set_trace_spans(Arc::new(Spans::default())),
        // A small epoch so the shrunk runs still roll several windows.
        Instrument::Observe => pipeline.set_observe(Some(ObserveConfig { epoch_len: 4096 })),
    }
    prewarm(&pipeline, &shrunk_specs(SUBSET), 2);
    experiments_doc(&pipeline, &subset_tables(), |_, _| {})
}

fn render_with(classify: bool, engine: Engine) -> String {
    let mode = if classify {
        Instrument::Classify
    } else {
        Instrument::Off
    };
    render_instrumented(mode, engine)
}

fn render(classify: bool) -> String {
    render_with(classify, Engine::default())
}

#[test]
fn observed_tables_are_byte_identical_to_unobserved() {
    let off = render(false);
    let on = render(true);
    assert_eq!(
        off, on,
        "enabling miss classification changed rendered experiment tables"
    );
}

/// The zero-overhead guarantee holds under *both* simulator cores, and
/// the cores agree with each other: classification forces the block
/// engine onto its instrumented slow path, so this also pins the fast
/// path and slow path to identical table output.
#[test]
fn observed_tables_identical_across_engines() {
    let step_off = render_with(false, Engine::Step);
    let step_on = render_with(true, Engine::Step);
    let block_off = render_with(false, Engine::Block);
    let block_on = render_with(true, Engine::Block);
    assert_eq!(
        block_off, block_on,
        "classification changed tables under the block engine"
    );
    assert_eq!(
        step_off, block_off,
        "step and block engines render different tables"
    );
    assert_eq!(
        step_on, block_on,
        "step and block engines diverge under classification"
    );
}

/// The 6-way instrumentation matrix: both engines × {all off, tracing
/// on, observatory on} render byte-identical tables. Tracing records
/// wall-clock spans off to the side; the observatory forces the block
/// engine onto its instrumented slow path — neither may change a
/// single table byte.
#[test]
fn tracing_and_observatory_leave_tables_byte_identical() {
    let baseline = render_instrumented(Instrument::Off, Engine::Step);
    for engine in [Engine::Step, Engine::Block] {
        for mode in [Instrument::Off, Instrument::Trace, Instrument::Observe] {
            assert_eq!(
                baseline,
                render_instrumented(mode, engine),
                "{mode:?} under {engine:?} changed rendered experiment tables"
            );
        }
    }
}

/// The memory-system matrix table is covered by the zero-overhead
/// guarantee too: rendering `extension-memmatrix` — whose runs span
/// every replacement policy, both L2 inclusion modes, and the stride
/// prefetcher — with the observatory enabled under the block engine
/// must be byte-identical to an unobserved step-engine render.
#[test]
fn memmatrix_table_is_immune_to_instrumentation() {
    let memmatrix: Vec<(&str, TableFn)> = all_tables()
        .into_iter()
        .filter(|(name, _)| *name == "extension-memmatrix")
        .collect();
    assert_eq!(memmatrix.len(), 1, "extension-memmatrix is registered");
    let render = |observe: bool, engine: Engine| {
        let pipeline = Pipeline::new();
        pipeline.set_engine(engine);
        if observe {
            pipeline.set_observe(Some(ObserveConfig { epoch_len: 4096 }));
        }
        prewarm(&pipeline, &shrunk_specs(&["extension-memmatrix"]), 2);
        experiments_doc(&pipeline, &memmatrix, |_, _| {})
    };
    let baseline = render(false, Engine::Step);
    assert!(
        baseline.contains("plru") && baseline.contains("random"),
        "memmatrix table missing non-default policies"
    );
    assert_eq!(
        baseline,
        render(true, Engine::Block),
        "observatory under the block engine changed the memmatrix table"
    );
}

#[test]
fn classification_attaches_profiles_without_extra_simulations() {
    let pipeline = Pipeline::new();
    pipeline.set_classify_misses(true);
    let specs = shrunk_specs(SUBSET);
    prewarm(&pipeline, &specs, 2);
    assert_eq!(pipeline.simulations(), specs.len());
    for run in pipeline.ready_runs() {
        let profile = run
            .result
            .cache_profile
            .as_ref()
            .expect("classified run carries a cache profile");
        assert_eq!(
            profile.classes.total(),
            profile.set_misses.iter().sum::<u64>(),
            "every set miss is classified"
        );
        run.result
            .check_consistency()
            .expect("observed run stays self-consistent");
    }
}
