//! Table rendering for the reproduction reports.

use std::fmt;

/// One regenerated table: id, title, column headers, rows, and a note
/// comparing against what the paper reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Identifier matching the paper (e.g. `"table11"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Comparison note: what the paper reports, and whether the shape
    /// holds here.
    pub note: String,
}

impl Table {
    /// Creates a table with headers.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Sets the paper-comparison note.
    pub fn set_note(&mut self, note: impl Into<String>) {
        self.note = note.into();
    }

    /// Renders GitHub-flavored markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n*{}*\n", self.note));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("table0", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.set_note("paper reports 3");
        let md = t.to_markdown();
        assert!(md.contains("### table0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("*paper reports 3*"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", "x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
