//! Pipeline observability glue: assembles the `RUN_MANIFEST.json`
//! manifest and the human `--profile` report from a [`Pipeline`]'s
//! counters, a prewarm report, and the run's spans.
//!
//! The manifest is the machine-readable contract consumed by `ci.sh`
//! (which fails if mandatory keys go missing) and by future perf PRs
//! comparing before/after runs; the text report is the same data
//! formatted to answer "where did the time go?" at a glance.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dl_analysis::reuse::REUSE_DELTA;
use dl_analysis::{AddressClass, CacheGeometry, PassObserver};
use dl_obs::metrics::Histogram;
use dl_obs::span::Spans;
use dl_obs::{Json, Manifest};

use crate::pipeline::Pipeline;
use crate::schedule::PrewarmReport;

/// How many of the slowest configurations the manifest lists.
const SLOWEST: usize = 8;

/// Bridges the pass manager's [`PassObserver`] hook onto a run's
/// [`Spans`] timeline: every analysis pass that is actually *computed*
/// (cache misses only — hits are free and silent) lands as a span named
/// `<prefix>/<pass>`, positioned by its real start instant so it nests
/// correctly under the enclosing `compile/…` span in the exported
/// trace.
#[derive(Debug)]
pub struct SpanPassObserver {
    spans: Arc<Spans>,
    prefix: String,
}

impl SpanPassObserver {
    /// Records passes under `<prefix>/<pass>` on `spans`.
    #[must_use]
    pub fn new(spans: Arc<Spans>, prefix: String) -> Self {
        SpanPassObserver { spans, prefix }
    }
}

impl PassObserver for SpanPassObserver {
    fn pass_computed(&self, pass: &'static str, start: Instant, duration: Duration) {
        self.spans.record_at(
            &format!("{}/{pass}", self.prefix),
            start,
            duration.as_secs_f64(),
        );
    }
}

/// Top-level inputs that identify one observed run.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Binary name (`repro`, `bench`, …).
    pub command: String,
    /// Worker count used for prewarming.
    pub jobs: usize,
    /// Whether inputs were shrunk to smoke-test size.
    pub smoke: bool,
    /// The table targets this run generated.
    pub tables: Vec<String>,
}

/// Builds the full run manifest. Mandatory sections (checked by
/// `ci.sh`): `stages` (per-stage wall times), `memo` (hit/miss/wait
/// counters and `hit_rate`), `workers` (per-worker simulation counts),
/// `sim` (including `insts_per_sec`), `miss_classes`, `memory`
/// (per-level hit/miss counters and prefetcher effectiveness summed
/// over every completed run), `reuse` (static reuse-analysis load
/// counts against the paper-baseline geometry), and `analysis`
/// (pass-manager cache counters: one analyzed context per
/// `(bench, opt)` pair, per-pass hits/misses and compute seconds).
#[must_use]
pub fn run_manifest(
    info: &RunInfo,
    pipeline: &Pipeline,
    prewarm: Option<&PrewarmReport>,
    spans: &Spans,
) -> Manifest {
    let stats = pipeline.stats();
    let timings = pipeline.config_timings();

    let memo = Json::obj()
        .with("hits", stats.hits.into())
        .with("misses", stats.misses.into())
        .with("waits", stats.waits.into())
        .with("hit_rate", stats.hit_rate().into())
        .with("compile_hits", stats.compile_hits.into())
        .with("compile_misses", stats.compile_misses.into());

    let workers = prewarm.map_or_else(Vec::new, |report| {
        report
            .workers
            .iter()
            .map(|w| {
                Json::obj()
                    .with("worker", w.worker.into())
                    .with("specs", w.specs.into())
                    .with("busy_secs", w.busy_secs.into())
            })
            .collect()
    });

    let total_sim_secs: f64 = timings.iter().map(|t| t.sim_secs).sum();
    let total_compile_secs: f64 = timings.iter().map(|t| t.compile_secs).sum();
    // Histogram of per-configuration instruction counts: deterministic
    // values (timings stay in `secs` fields only).
    let insts_hist = Histogram::default();
    for t in &timings {
        insts_hist.record(t.instructions);
    }
    let buckets = insts_hist
        .nonzero_buckets()
        .into_iter()
        .map(|(i, n)| Json::obj().with("bucket", i.into()).with("count", n.into()))
        .collect();
    // Per-configuration simulation latency percentiles. The histogram
    // buckets microseconds in log2 bins, so quantiles interpolate to
    // bucket midpoints — coarse but stable. Every key contains `sec`,
    // so `zero_timings` strips the section for golden comparisons.
    let lat_hist = Histogram::default();
    for t in &timings {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        lat_hist.record((t.sim_secs.max(0.0) * 1e6).round() as u64);
    }
    #[allow(clippy::cast_precision_loss)]
    let pct = |q: f64| lat_hist.quantile(q).map_or(0.0, |us| us as f64 / 1e6);
    let latency = Json::obj()
        .with("p50_secs", pct(0.50).into())
        .with("p90_secs", pct(0.90).into())
        .with("p99_secs", pct(0.99).into());
    let block_cache = Json::obj()
        .with("blocks_decoded", stats.block.blocks_decoded.into())
        .with("insts_decoded", stats.block.insts_decoded.into())
        .with("mean_block_len", stats.block.mean_block_len().into())
        .with("dispatches", stats.block.dispatches.into())
        .with("dispatch_hits", stats.block.dispatch_hits.into())
        .with("insts_retired", stats.block.insts_retired.into());
    let sim = Json::obj()
        .with("configurations", timings.len().into())
        .with("engine", pipeline.engine().name().into())
        .with("instructions", stats.sim_instructions.into())
        .with("total_sim_secs", total_sim_secs.into())
        .with("total_compile_secs", total_compile_secs.into())
        .with(
            "insts_per_sec",
            if total_sim_secs > 0.0 {
                (stats.sim_instructions as f64 / total_sim_secs).into()
            } else {
                Json::F64(0.0)
            },
        )
        .with("latency", latency)
        .with("block_cache", block_cache)
        .with("instructions_log2_histogram", Json::Arr(buckets));

    // Aggregate the miss-class breakdown over every completed run.
    let mut classes = dl_sim::MissClasses::default();
    let mut classified_runs = 0u64;
    for run in pipeline.ready_runs() {
        if let Some(profile) = &run.result.cache_profile {
            classes.compulsory += profile.classes.compulsory;
            classes.capacity += profile.classes.capacity;
            classes.conflict += profile.classes.conflict;
            classified_runs += 1;
        }
    }
    let miss_classes = Json::obj()
        .with("classified_runs", classified_runs.into())
        .with("compulsory", classes.compulsory.into())
        .with("capacity", classes.capacity.into())
        .with("conflict", classes.conflict.into())
        .with("total", classes.total().into());

    // Memory-system summary: per-level hit/miss counters and
    // prefetcher effectiveness summed over every completed run, plus
    // how many simulated configurations used a non-default memory
    // system. Pure counter sums — order-independent and deterministic
    // under any worker schedule.
    let mut l2_hits = 0u64;
    let mut l2_misses = 0u64;
    let mut prefetch_fills = 0u64;
    let mut prefetch_useful = 0u64;
    for run in pipeline.ready_runs() {
        l2_hits += run.result.l2_hits;
        l2_misses += run.result.l2_misses;
        prefetch_fills += run.result.prefetch_fills;
        prefetch_useful += run.result.prefetch_useful;
    }
    let non_default = timings.iter().filter(|t| !t.memory.is_default()).count();
    let memory = Json::obj()
        .with("non_default_configs", non_default.into())
        .with("l2_hits", l2_hits.into())
        .with("l2_misses", l2_misses.into())
        .with("prefetch_fills", prefetch_fills.into())
        .with("prefetch_useful", prefetch_useful.into());

    // Static reuse-analysis summary over every completed run, always
    // against the paper-baseline geometry so the numbers are
    // comparable across runs regardless of which caches were
    // simulated. Pure counts over sets — order-independent, so the
    // section is deterministic under any worker schedule.
    let baseline = dl_sim::CacheConfig::paper_baseline();
    let geometry = CacheGeometry::new(
        u64::from(baseline.size_bytes()),
        u64::from(baseline.block_bytes()),
        baseline.assoc(),
    );
    let mut reuse_runs = 0u64;
    let mut loads = 0u64;
    let mut in_loop = 0u64;
    let mut exact_trips = 0u64;
    let mut flagged = 0u64;
    let mut by_class = [0u64; 4]; // invariant, strided, pointer-chase, irregular
    for run in pipeline.ready_runs() {
        reuse_runs += 1;
        for p in run.ctx().reuse_predictions(&geometry) {
            loads += 1;
            if p.loop_depth > 0 {
                in_loop += 1;
                if p.trip_exact {
                    exact_trips += 1;
                }
            }
            if p.miss_ratio >= REUSE_DELTA {
                flagged += 1;
            }
            let slot = match p.class {
                AddressClass::Invariant => 0,
                AddressClass::Strided(_) => 1,
                AddressClass::PointerChase => 2,
                AddressClass::Irregular => 3,
            };
            by_class[slot] += 1;
        }
    }
    let reuse = Json::obj()
        .with("runs", reuse_runs.into())
        .with(
            "geometry",
            format!(
                "{}B/{}-way/{}B-line",
                geometry.capacity, geometry.assoc, geometry.line
            )
            .into(),
        )
        .with("loads", loads.into())
        .with("in_loop", in_loop.into())
        .with("exact_trips", exact_trips.into())
        .with("invariant", by_class[0].into())
        .with("strided", by_class[1].into())
        .with("pointer_chase", by_class[2].into())
        .with("irregular", by_class[3].into())
        .with("flagged", flagged.into());

    // Static reuse-profile summary (the interprocedural histogram
    // pass) against the same baseline geometry. Counts over cached
    // per-ctx artifacts — order-independent and deterministic.
    let mut profile_runs = 0u64;
    let mut profile_loads = 0u64;
    let mut modeled = 0u64;
    let mut abstained = 0u64;
    let mut interprocedural = 0u64;
    let mut profile_flagged = 0u64;
    for run in pipeline.ready_runs() {
        profile_runs += 1;
        let profiles = run.ctx().reuse_profiles();
        for p in profiles.predict(&geometry) {
            profile_loads += 1;
            if p.abstained {
                abstained += 1;
            } else {
                modeled += 1;
            }
            if p.interprocedural {
                interprocedural += 1;
            }
            if p.in_loop && !p.abstained && p.miss_ratio >= REUSE_DELTA {
                profile_flagged += 1;
            }
        }
    }
    let profile_section = Json::obj()
        .with("runs", profile_runs.into())
        .with(
            "geometry",
            format!(
                "{}B/{}-way/{}B-line",
                geometry.capacity, geometry.assoc, geometry.line
            )
            .into(),
        )
        .with("loads", profile_loads.into())
        .with("modeled", modeled.into())
        .with("abstained", abstained.into())
        .with("interprocedural", interprocedural.into())
        .with("flagged", profile_flagged.into());

    // Pass-manager cache counters: how much analysis the run actually
    // computed vs. how much the ctx cache absorbed. Timing lives in
    // `*_secs` keys only, so the zeroed manifest stays deterministic.
    let ctx_stats = pipeline.analysis_stats();
    let passes = ctx_stats
        .passes()
        .into_iter()
        .map(|(name, p)| {
            Json::obj()
                .with("pass", name.into())
                .with("hits", p.hits.into())
                .with("misses", p.misses.into())
                .with("compute_secs", p.secs.into())
        })
        .collect();
    let analysis = Json::obj()
        .with("contexts", pipeline.analysis_contexts().into())
        .with("hits", ctx_stats.hits().into())
        .with("misses", ctx_stats.misses().into())
        .with("hit_rate", ctx_stats.hit_rate().into())
        .with("total_compute_secs", ctx_stats.total_secs().into())
        .with("passes", Json::Arr(passes));

    // Ranked by instruction count, not measured seconds: instructions
    // are the deterministic proxy for simulation cost, so the zeroed
    // manifest (timings stripped) is byte-stable across runs.
    let mut slowest: Vec<_> = timings.iter().collect();
    slowest.sort_by(|a, b| {
        b.instructions
            .cmp(&a.instructions)
            .then_with(|| a.label().cmp(&b.label()))
    });
    let slowest = slowest
        .into_iter()
        .take(SLOWEST)
        .map(|t| {
            Json::obj()
                .with("config", t.label().into())
                .with("sim_secs", t.sim_secs.into())
                .with("compile_secs", t.compile_secs.into())
                .with("instructions", t.instructions.into())
        })
        .collect();

    let mut manifest = Manifest::new(&info.command)
        .with("smoke", info.smoke.into())
        .with("jobs", info.jobs.into())
        .with(
            "tables",
            Json::Arr(info.tables.iter().map(|t| t.as_str().into()).collect()),
        )
        .with_stages(spans)
        .with("memo", memo)
        .with("workers", Json::Arr(workers))
        .with("sim", sim)
        .with("miss_classes", miss_classes)
        .with("memory", memory)
        .with("reuse", reuse)
        .with("profile", profile_section)
        .with("analysis", analysis)
        .with("slowest", Json::Arr(slowest));
    if let Some(report) = prewarm {
        manifest.set(
            "prewarm",
            Json::obj()
                .with("processed", report.processed.into())
                .with("wall_secs", report.wall_secs.into())
                .with("imbalance", report.imbalance().into()),
        );
    }
    manifest
}

fn f(value: Option<&Json>) -> f64 {
    match value {
        Some(Json::F64(v)) => *v,
        Some(Json::U64(v)) => *v as f64,
        _ => 0.0,
    }
}

fn u(value: Option<&Json>) -> u64 {
    match value {
        Some(Json::U64(v)) => *v,
        _ => 0,
    }
}

fn s(value: Option<&Json>) -> String {
    match value {
        Some(Json::Str(v)) => v.clone(),
        _ => String::new(),
    }
}

/// Renders a manifest as the human `--profile` report: the same data,
/// formatted to answer where the time went.
#[must_use]
pub fn profile_text(manifest: &Manifest) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} profile (jobs: {}) ==",
        s(manifest.get("command")),
        u(manifest.get("jobs")),
    );
    if let Some(Json::Arr(stages)) = manifest.get("stages") {
        out.push_str("stages:\n");
        for stage in stages {
            let _ = writeln!(
                out,
                "  {:<40} {:>8.3}s",
                s(stage.get("name")),
                f(stage.get("secs"))
            );
        }
    }
    if let Some(memo) = manifest.get("memo") {
        let _ = writeln!(
            out,
            "memo: {} hits / {} misses ({:.1}% hit rate), {} in-flight waits",
            u(memo.get("hits")),
            u(memo.get("misses")),
            100.0 * f(memo.get("hit_rate")),
            u(memo.get("waits")),
        );
        let _ = writeln!(
            out,
            "compile cache: {} hits / {} compiles",
            u(memo.get("compile_hits")),
            u(memo.get("compile_misses")),
        );
    }
    if let Some(Json::Arr(workers)) = manifest.get("workers") {
        if !workers.is_empty() {
            out.push_str("workers:\n");
            for w in workers {
                let _ = writeln!(
                    out,
                    "  #{:<3} {:>5} specs  {:>8.3}s busy",
                    u(w.get("worker")),
                    u(w.get("specs")),
                    f(w.get("busy_secs")),
                );
            }
        }
    }
    if let Some(prewarm) = manifest.get("prewarm") {
        let _ = writeln!(
            out,
            "prewarm: {} specs in {:.3}s wall, imbalance {:.2}x",
            u(prewarm.get("processed")),
            f(prewarm.get("wall_secs")),
            f(prewarm.get("imbalance")),
        );
    }
    if let Some(sim) = manifest.get("sim") {
        let _ = writeln!(
            out,
            "sim: {} configurations, {} insts in {:.3}s sim + {:.3}s compile ({:.1}M insts/s)",
            u(sim.get("configurations")),
            u(sim.get("instructions")),
            f(sim.get("total_sim_secs")),
            f(sim.get("total_compile_secs")),
            f(sim.get("insts_per_sec")) / 1e6,
        );
        if let Some(latency) = sim.get("latency") {
            let _ = writeln!(
                out,
                "sim latency per config: p50 {:.3}s / p90 {:.3}s / p99 {:.3}s",
                f(latency.get("p50_secs")),
                f(latency.get("p90_secs")),
                f(latency.get("p99_secs")),
            );
        }
    }
    if let Some(mc) = manifest.get("miss_classes") {
        let total = u(mc.get("total"));
        if total > 0 {
            let pct = |k: &str| 100.0 * u(mc.get(k)) as f64 / total as f64;
            let _ = writeln!(
                out,
                "miss classes: {:.1}% compulsory / {:.1}% capacity / {:.1}% conflict \
                 ({total} classified misses over {} runs)",
                pct("compulsory"),
                pct("capacity"),
                pct("conflict"),
                u(mc.get("classified_runs")),
            );
        } else {
            out.push_str("miss classes: (classification off — rerun with --profile/--manifest)\n");
        }
    }
    if let Some(memory) = manifest.get("memory") {
        let _ = writeln!(
            out,
            "memory: {} non-default configs — L2 {} hits / {} misses; \
             prefetch {} fills, {} useful",
            u(memory.get("non_default_configs")),
            u(memory.get("l2_hits")),
            u(memory.get("l2_misses")),
            u(memory.get("prefetch_fills")),
            u(memory.get("prefetch_useful")),
        );
    }
    if let Some(reuse) = manifest.get("reuse") {
        let _ = writeln!(
            out,
            "reuse: {} loads over {} runs ({} in-loop, {} with exact trips) — \
             {} strided / {} pointer-chase / {} invariant / {} irregular, \
             {} flagged at {} ({})",
            u(reuse.get("loads")),
            u(reuse.get("runs")),
            u(reuse.get("in_loop")),
            u(reuse.get("exact_trips")),
            u(reuse.get("strided")),
            u(reuse.get("pointer_chase")),
            u(reuse.get("invariant")),
            u(reuse.get("irregular")),
            u(reuse.get("flagged")),
            REUSE_DELTA,
            s(reuse.get("geometry")),
        );
    }
    if let Some(profile) = manifest.get("profile") {
        let _ = writeln!(
            out,
            "profile: {} loads over {} runs — {} modeled / {} abstained, \
             {} interprocedural, {} flagged at {} ({})",
            u(profile.get("loads")),
            u(profile.get("runs")),
            u(profile.get("modeled")),
            u(profile.get("abstained")),
            u(profile.get("interprocedural")),
            u(profile.get("flagged")),
            REUSE_DELTA,
            s(profile.get("geometry")),
        );
    }
    if let Some(analysis) = manifest.get("analysis") {
        let _ = writeln!(
            out,
            "analysis: {} contexts, {} hits / {} misses ({:.1}% hit rate), {:.3}s compute",
            u(analysis.get("contexts")),
            u(analysis.get("hits")),
            u(analysis.get("misses")),
            100.0 * f(analysis.get("hit_rate")),
            f(analysis.get("total_compute_secs")),
        );
        if let Some(Json::Arr(passes)) = analysis.get("passes") {
            for p in passes {
                let _ = writeln!(
                    out,
                    "  {:<10} {:>6} hits {:>6} misses {:>8.3}s",
                    s(p.get("pass")),
                    u(p.get("hits")),
                    u(p.get("misses")),
                    f(p.get("compute_secs")),
                );
            }
        }
    }
    if let Some(Json::Arr(slowest)) = manifest.get("slowest") {
        if !slowest.is_empty() {
            out.push_str("slowest configurations:\n");
            for t in slowest {
                let _ = writeln!(
                    out,
                    "  {:<48} {:>8.3}s sim  {:>7.3}s compile  {:>12} insts",
                    s(t.get("config")),
                    f(t.get("sim_secs")),
                    f(t.get("compile_secs")),
                    u(t.get("instructions")),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{prewarm_with_stats, table_specs};
    use dl_obs::manifest::SCHEMA;

    fn shrunk_table3() -> Vec<crate::schedule::RunSpec> {
        let mut specs = table_specs("table3");
        for spec in &mut specs {
            for v in spec
                .bench
                .input1
                .iter_mut()
                .chain(spec.bench.input2.iter_mut())
            {
                *v = (*v).clamp(1, 64);
            }
        }
        specs
    }

    #[test]
    fn manifest_has_mandatory_sections() {
        let pipeline = Pipeline::new();
        pipeline.set_classify_misses(true);
        let spans = Spans::default();
        let report = spans.time("warm", || {
            prewarm_with_stats(&pipeline, &shrunk_table3(), 2)
        });
        let info = RunInfo {
            command: "repro".into(),
            jobs: 2,
            smoke: true,
            tables: vec!["table3".into()],
        };
        let manifest = run_manifest(&info, &pipeline, Some(&report), &spans);
        assert_eq!(manifest.get("schema"), Some(&Json::Str(SCHEMA.into())));
        for key in [
            "stages",
            "memo",
            "workers",
            "sim",
            "miss_classes",
            "memory",
            "reuse",
            "profile",
            "analysis",
            "slowest",
            "prewarm",
        ] {
            assert!(manifest.get(key).is_some(), "manifest missing `{key}`");
        }
        let memo = manifest.get("memo").unwrap();
        assert_eq!(u(memo.get("misses")), report.processed as u64);
        let mc = manifest.get("miss_classes").unwrap();
        assert!(u(mc.get("total")) > 0, "classification produced no misses");
        let memory = manifest.get("memory").unwrap();
        for key in [
            "non_default_configs",
            "l2_hits",
            "l2_misses",
            "prefetch_fills",
            "prefetch_useful",
        ] {
            assert!(memory.get(key).is_some(), "memory missing `{key}`");
        }
        let sim = manifest.get("sim").unwrap();
        assert!(f(sim.get("insts_per_sec")) > 0.0);
        assert!(
            matches!(sim.get("engine"), Some(Json::Str(s)) if s == "step" || s == "block"),
            "sim section missing engine name"
        );
        let latency = sim.get("latency").expect("sim missing latency");
        for key in ["p50_secs", "p90_secs", "p99_secs"] {
            assert!(latency.get(key).is_some(), "latency missing `{key}`");
        }
        assert!(
            f(latency.get("p50_secs")) <= f(latency.get("p99_secs")),
            "latency percentiles not monotone"
        );
        let bc = sim.get("block_cache").expect("sim missing block_cache");
        for key in [
            "blocks_decoded",
            "insts_decoded",
            "mean_block_len",
            "dispatches",
            "dispatch_hits",
            "insts_retired",
        ] {
            assert!(bc.get(key).is_some(), "block_cache missing `{key}`");
        }
        if pipeline.engine() == dl_sim::Engine::Block {
            assert!(u(bc.get("dispatches")) > 0, "block engine never dispatched");
        }

        // The text report renders every section.
        let text = profile_text(&manifest);
        let reuse = manifest.get("reuse").unwrap();
        assert!(u(reuse.get("loads")) > 0, "reuse section saw no loads");
        for needle in [
            "stages:",
            "memo:",
            "workers:",
            "sim:",
            "miss classes:",
            "memory:",
            "reuse:",
            "profile:",
            "analysis:",
        ] {
            assert!(text.contains(needle), "profile text missing `{needle}`");
        }

        // The profile section models loads and counts are coherent.
        let profile = manifest.get("profile").unwrap();
        assert!(u(profile.get("loads")) > 0, "profile section saw no loads");
        assert_eq!(
            u(profile.get("modeled")) + u(profile.get("abstained")),
            u(profile.get("loads")),
            "modeled + abstained must partition the loads"
        );

        // The pass manager analyzed each program exactly once: table3
        // runs the training set at one opt level and one cache.
        let contexts = dl_workloads::training_set().len() as u64;
        let analysis = manifest.get("analysis").unwrap();
        assert_eq!(u(analysis.get("contexts")), contexts);
        let Some(Json::Arr(passes)) = analysis.get("passes") else {
            panic!("analysis section missing `passes`");
        };
        assert_eq!(passes.len(), 9);
        let patterns = passes
            .iter()
            .find(|p| s(p.get("pass")) == "patterns")
            .unwrap();
        assert_eq!(
            u(patterns.get("misses")),
            contexts,
            "each program's patterns computed exactly once"
        );
        assert!(
            u(analysis.get("hits")) > 0,
            "shared ctx produced no cache hits"
        );
    }

    #[test]
    fn zeroed_manifest_is_deterministic() {
        let build = || {
            let pipeline = Pipeline::new();
            let spans = Spans::default();
            let report = spans.time("warm", || {
                prewarm_with_stats(&pipeline, &shrunk_table3(), 1)
            });
            let info = RunInfo {
                command: "repro".into(),
                jobs: 1,
                smoke: true,
                tables: vec!["table3".into()],
            };
            let mut m = run_manifest(&info, &pipeline, Some(&report), &spans);
            m.zero_timings();
            m.render()
        };
        assert_eq!(build(), build());
    }
}
