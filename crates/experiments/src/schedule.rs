//! Work scheduling for the experiment pipeline: enumerate the
//! simulation configurations a set of tables needs, then pre-warm the
//! [`Pipeline`] memo table by fanning those configurations across a
//! scoped worker pool.
//!
//! Table *assembly* stays sequential and deterministic — the workers
//! only populate the memo table, so the rendered output is
//! byte-identical to a fully sequential run regardless of the worker
//! count or completion order. In-flight deduplication inside
//! [`Pipeline::run`] guarantees that overlapping specs (most tables
//! share configurations) still simulate exactly once.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use dl_minic::OptLevel;
use dl_sim::CacheConfig;
use dl_workloads::Benchmark;

use crate::pipeline::Pipeline;

/// One simulation configuration a table needs: the full memo key.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The workload to compile and simulate.
    pub bench: Benchmark,
    /// Optimization level.
    pub opt: OptLevel,
    /// Input set (1 or 2).
    pub input_set: u8,
    /// Cache geometry.
    pub cache: CacheConfig,
}

impl RunSpec {
    fn key(&self) -> (String, OptLevel, u8, CacheConfig) {
        (
            self.bench.name.to_owned(),
            self.opt,
            self.input_set,
            self.cache,
        )
    }
}

fn specs(
    benches: Vec<Benchmark>,
    opt: OptLevel,
    input_set: u8,
    cache: CacheConfig,
) -> Vec<RunSpec> {
    benches
        .into_iter()
        .map(|bench| RunSpec {
            bench,
            opt,
            input_set,
            cache,
        })
        .collect()
}

/// The simulation configurations one named table consumes through the
/// pipeline. Unknown names (and `table6`, which simulates nothing)
/// yield an empty list — prewarming simply does nothing for them.
///
/// This mirrors the `p.run(...)` calls in [`crate::tables`]; the
/// `specs_cover_every_table` test pins the two in sync.
#[must_use]
pub fn table_specs(table: &str) -> Vec<RunSpec> {
    let o0 = OptLevel::O0;
    let o1 = OptLevel::O1;
    let training = CacheConfig::paper_training();
    let baseline = CacheConfig::paper_baseline();
    match table {
        "table1" | "table2" | "table14" | "ablation-profile-fidelity" => {
            specs(dl_workloads::all(), o0, 1, training)
        }
        "table3" | "table4" | "table5" => specs(dl_workloads::training_set(), o0, 1, baseline),
        "table7" => {
            let mut v = specs(dl_workloads::training_set(), o0, 1, training);
            v.extend(specs(dl_workloads::training_set(), o0, 2, training));
            v
        }
        "table8" => [2u32, 4, 8]
            .into_iter()
            .flat_map(|assoc| {
                specs(
                    dl_workloads::training_set(),
                    o1,
                    1,
                    CacheConfig::kb(8, assoc),
                )
            })
            .collect(),
        "table9" => [8u32, 16, 32, 64]
            .into_iter()
            .flat_map(|kb| specs(dl_workloads::training_set(), o1, 1, CacheConfig::kb(kb, 4)))
            .collect(),
        "table10" => specs(dl_workloads::test_set(), o0, 1, training),
        "table11"
        | "table12"
        | "ablation-classes"
        | "ablation-patterns"
        | "extension-static-frequency"
        | "ablation-delta-tuning" => specs(dl_workloads::all(), o0, 1, baseline),
        "table13" => specs(dl_workloads::training_set(), o1, 1, CacheConfig::kb(16, 4)),
        "extension-prefetch" => {
            let benches = ["181.mcf", "183.equake", "179.art", "164.gzip"]
                .into_iter()
                .map(|n| dl_workloads::by_name(n).expect("known benchmark"))
                .collect();
            specs(benches, o0, 1, baseline)
        }
        _ => Vec::new(),
    }
}

/// The deduplicated union of configurations needed by `tables`, in
/// first-seen order.
#[must_use]
pub fn union_specs<'a>(tables: impl IntoIterator<Item = &'a str>) -> Vec<RunSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut union = Vec::new();
    for table in tables {
        for spec in table_specs(table) {
            if seen.insert(spec.key()) {
                union.push(spec);
            }
        }
    }
    union
}

/// The default worker count: available hardware parallelism, or 1 if
/// it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Runs every spec through the pipeline across `jobs` worker threads,
/// populating the memo table. Returns the number of specs processed.
///
/// Work is claimed from a shared atomic index, so long-running
/// simulations do not stall the queue behind them. With `jobs <= 1`
/// the specs run on the calling thread in order — exactly the
/// sequential behaviour.
///
/// # Panics
///
/// Propagates a panic from any worker (a benchmark failing to compile
/// or trapping — the same conditions that panic [`Pipeline::run`]).
pub fn prewarm(pipeline: &Pipeline, specs: &[RunSpec], jobs: usize) -> usize {
    if jobs <= 1 || specs.len() <= 1 {
        for spec in specs {
            let _ = pipeline.run(&spec.bench, spec.opt, spec.input_set, spec.cache);
        }
        return specs.len();
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(specs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let _ = pipeline.run(&spec.bench, spec.opt, spec.input_set, spec.cache);
                })
            })
            .collect();
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    specs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::all_tables;

    /// Prewarming a table's specs then generating it must add zero new
    /// simulations — i.e. the spec registry covers everything each
    /// table asks the pipeline for.
    ///
    /// Runs on shrunk inputs to keep it fast: the spec registry only
    /// depends on names/opt/input/cache, not input values.
    #[test]
    fn specs_cover_every_table() {
        for (name, f) in all_tables() {
            let pipeline = Pipeline::new();
            let mut specs = table_specs(name);
            for spec in &mut specs {
                shrink(&mut spec.bench);
            }
            prewarm(&pipeline, &specs, 1);
            let warmed = pipeline.simulations();
            // The memo key is (name, opt, input-set, cache) — not the
            // input *values* — so the generator hits the shrunk
            // prewarmed entries and must simulate nothing new.
            let _ = f(&pipeline);
            assert_eq!(
                pipeline.simulations(),
                warmed,
                "{name} simulated configurations its spec registry misses"
            );
        }
    }

    /// `table_specs` keys must be unique per table after union-ing.
    #[test]
    fn union_deduplicates_shared_configs() {
        let union = union_specs(["table1", "table2", "table14"]);
        // All three tables need exactly the same configurations.
        assert_eq!(union.len(), table_specs("table1").len());
        let keys: std::collections::HashSet<_> = union.iter().map(RunSpec::key).collect();
        assert_eq!(keys.len(), union.len());
    }

    #[test]
    fn parallel_prewarm_matches_sequential_simulation_count() {
        let mut specs = table_specs("table3");
        for spec in &mut specs {
            shrink(&mut spec.bench);
        }
        let sequential = Pipeline::new();
        prewarm(&sequential, &specs, 1);
        let parallel = Pipeline::new();
        prewarm(&parallel, &specs, 4);
        assert_eq!(sequential.simulations(), parallel.simulations());
        assert_eq!(parallel.simulations(), specs.len());
    }

    /// Shrinks a benchmark's inputs so tests stay fast.
    fn shrink(b: &mut Benchmark) {
        for v in b.input1.iter_mut().chain(b.input2.iter_mut()) {
            *v = (*v).clamp(1, 64);
        }
    }
}
