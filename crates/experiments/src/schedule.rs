//! Work scheduling for the experiment pipeline: enumerate the
//! simulation configurations a set of tables needs, then pre-warm the
//! [`Pipeline`] memo table by fanning those configurations across a
//! scoped worker pool.
//!
//! Table *assembly* stays sequential and deterministic — the workers
//! only populate the memo table, so the rendered output is
//! byte-identical to a fully sequential run regardless of the worker
//! count or completion order. In-flight deduplication inside
//! [`Pipeline::run`] guarantees that overlapping specs (most tables
//! share configurations) still simulate exactly once.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dl_minic::OptLevel;
use dl_sim::{CacheConfig, MemoryConfig};
use dl_workloads::Benchmark;

use crate::pipeline::Pipeline;

/// One simulation configuration a table needs: the full memo key.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The workload to compile and simulate.
    pub bench: Benchmark,
    /// Optimization level.
    pub opt: OptLevel,
    /// Input set (1 or 2).
    pub input_set: u8,
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Memory system (replacement policy / L2 / prefetcher). The
    /// default — LRU, L1-only, no prefetch — for every paper table;
    /// only the memmatrix sweep varies it.
    pub memory: MemoryConfig,
}

impl RunSpec {
    fn key(&self) -> (String, OptLevel, u8, CacheConfig, MemoryConfig) {
        (
            self.bench.name.to_owned(),
            self.opt,
            self.input_set,
            self.cache,
            self.memory,
        )
    }
}

fn specs(
    benches: Vec<Benchmark>,
    opt: OptLevel,
    input_set: u8,
    cache: CacheConfig,
) -> Vec<RunSpec> {
    benches
        .into_iter()
        .map(|bench| RunSpec {
            bench,
            opt,
            input_set,
            cache,
            memory: MemoryConfig::default(),
        })
        .collect()
}

/// The simulation configurations one named table consumes through the
/// pipeline. Unknown names (and `table6`, which simulates nothing)
/// yield an empty list — prewarming simply does nothing for them.
///
/// This mirrors the `p.run(...)` calls in [`crate::tables`]; the
/// `specs_cover_every_table` test pins the two in sync.
#[must_use]
pub fn table_specs(table: &str) -> Vec<RunSpec> {
    let o0 = OptLevel::O0;
    let o1 = OptLevel::O1;
    let training = CacheConfig::paper_training();
    let baseline = CacheConfig::paper_baseline();
    match table {
        "table1" | "table2" | "table14" | "ablation-profile-fidelity" => {
            specs(dl_workloads::all(), o0, 1, training)
        }
        "table3" | "table4" | "table5" => specs(dl_workloads::training_set(), o0, 1, baseline),
        "table7" => {
            let mut v = specs(dl_workloads::training_set(), o0, 1, training);
            v.extend(specs(dl_workloads::training_set(), o0, 2, training));
            v
        }
        "table8" => [2u32, 4, 8]
            .into_iter()
            .flat_map(|assoc| {
                specs(
                    dl_workloads::training_set(),
                    o1,
                    1,
                    CacheConfig::kb(8, assoc),
                )
            })
            .collect(),
        "table9" => [8u32, 16, 32, 64]
            .into_iter()
            .flat_map(|kb| specs(dl_workloads::training_set(), o1, 1, CacheConfig::kb(kb, 4)))
            .collect(),
        "table10" => specs(dl_workloads::test_set(), o0, 1, training),
        "table11"
        | "table12"
        | "ablation-classes"
        | "ablation-patterns"
        | "extension-static-frequency"
        | "extension-reuse"
        | "extension-profile"
        | "ablation-delta-tuning" => specs(dl_workloads::all(), o0, 1, baseline),
        "table13" => specs(dl_workloads::training_set(), o1, 1, CacheConfig::kb(16, 4)),
        "extension-prefetch" => {
            let benches = ["181.mcf", "183.equake", "179.art", "164.gzip"]
                .into_iter()
                .map(|n| dl_workloads::by_name(n).expect("known benchmark"))
                .collect();
            specs(benches, o0, 1, baseline)
        }
        "extension-memmatrix" => {
            let benches: Vec<_> = crate::tables::memmatrix_benches()
                .into_iter()
                .map(|n| dl_workloads::by_name(n).expect("known benchmark"))
                .collect();
            crate::tables::memmatrix_configs()
                .into_iter()
                .flat_map(|memory| {
                    benches.iter().cloned().map(move |bench| RunSpec {
                        bench,
                        opt: o0,
                        input_set: 1,
                        cache: baseline,
                        memory,
                    })
                })
                .collect()
        }
        "profile-geometries" => {
            let benches: Vec<_> = ["181.mcf", "183.equake", "179.art", "164.gzip"]
                .into_iter()
                .map(|n| dl_workloads::by_name(n).expect("known benchmark"))
                .collect();
            let mut v = specs(benches.clone(), o0, 1, baseline);
            for kb in [8u32, 16, 64] {
                for assoc in [2u32, 4, 8] {
                    v.extend(specs(benches.clone(), o0, 1, CacheConfig::kb(kb, assoc)));
                }
            }
            v
        }
        _ => Vec::new(),
    }
}

/// The deduplicated union of configurations needed by `tables`, in
/// first-seen order.
#[must_use]
pub fn union_specs<'a>(tables: impl IntoIterator<Item = &'a str>) -> Vec<RunSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut union = Vec::new();
    for table in tables {
        for spec in table_specs(table) {
            if seen.insert(spec.key()) {
                union.push(spec);
            }
        }
    }
    union
}

/// The default worker count: available hardware parallelism, or 1 if
/// it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Utilisation of one prewarm worker thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStat {
    /// Worker index (0-based).
    pub worker: usize,
    /// Specs this worker processed.
    pub specs: u64,
    /// Seconds this worker spent inside [`Pipeline::run`] (simulating,
    /// or blocked on another worker's in-flight computation).
    pub busy_secs: f64,
}

/// What one [`prewarm_with_stats`] call did: how many specs ran and
/// how evenly the work spread across workers.
#[derive(Debug, Clone, Default)]
pub struct PrewarmReport {
    /// Total specs processed (= the input length).
    pub processed: usize,
    /// Per-worker utilisation, indexed by worker id.
    pub workers: Vec<WorkerStat>,
    /// Wall-clock seconds for the whole prewarm.
    pub wall_secs: f64,
}

impl PrewarmReport {
    /// Ratio of the busiest worker's spec count to the mean — 1.0 is
    /// perfectly balanced; large values mean one worker dragged the
    /// tail. Returns 0 for an empty report.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.workers.is_empty() || self.processed == 0 {
            return 0.0;
        }
        let max = self.workers.iter().map(|w| w.specs).max().unwrap_or(0) as f64;
        let mean = self.processed as f64 / self.workers.len() as f64;
        max / mean
    }
}

/// Runs every spec through the pipeline across `jobs` worker threads,
/// populating the memo table. Returns the number of specs processed.
///
/// Work is claimed from a shared atomic index, so long-running
/// simulations do not stall the queue behind them. With `jobs <= 1`
/// the specs run on the calling thread in order — exactly the
/// sequential behaviour.
///
/// # Panics
///
/// Propagates a panic from any worker (a benchmark failing to compile
/// or trapping — the same conditions that panic [`Pipeline::run`]).
pub fn prewarm(pipeline: &Pipeline, specs: &[RunSpec], jobs: usize) -> usize {
    prewarm_with_stats(pipeline, specs, jobs).processed
}

/// Like [`prewarm`], additionally reporting per-worker utilisation —
/// the raw material for the pipeline's `--profile` report and
/// `RUN_MANIFEST.json`.
///
/// # Panics
///
/// Propagates a panic from any worker, exactly like [`prewarm`].
pub fn prewarm_with_stats(pipeline: &Pipeline, specs: &[RunSpec], jobs: usize) -> PrewarmReport {
    let wall = Instant::now();
    if jobs <= 1 || specs.len() <= 1 {
        let start = Instant::now();
        for spec in specs {
            let _ = pipeline.run_mem(
                &spec.bench,
                spec.opt,
                spec.input_set,
                spec.cache,
                spec.memory,
            );
        }
        return PrewarmReport {
            processed: specs.len(),
            workers: vec![WorkerStat {
                worker: 0,
                specs: specs.len() as u64,
                busy_secs: start.elapsed().as_secs_f64(),
            }],
            wall_secs: wall.elapsed().as_secs_f64(),
        };
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(specs.len());
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                scope.spawn(move || {
                    let mut stat = WorkerStat {
                        worker,
                        ..WorkerStat::default()
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else {
                            break stat;
                        };
                        let start = Instant::now();
                        let _ = pipeline.run_mem(
                            &spec.bench,
                            spec.opt,
                            spec.input_set,
                            spec.cache,
                            spec.memory,
                        );
                        stat.specs += 1;
                        stat.busy_secs += start.elapsed().as_secs_f64();
                    }
                })
            })
            .collect();
        let mut stats = Vec::with_capacity(handles.len());
        for h in handles {
            match h.join() {
                Ok(stat) => stats.push(stat),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        stats
    });
    PrewarmReport {
        processed: specs.len(),
        workers: stats,
        wall_secs: wall.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::all_tables;

    /// Prewarming a table's specs then generating it must add zero new
    /// simulations — i.e. the spec registry covers everything each
    /// table asks the pipeline for.
    ///
    /// Runs on shrunk inputs to keep it fast: the spec registry only
    /// depends on names/opt/input/cache, not input values.
    #[test]
    fn specs_cover_every_table() {
        for (name, f) in all_tables() {
            let pipeline = Pipeline::new();
            let mut specs = table_specs(name);
            for spec in &mut specs {
                shrink(&mut spec.bench);
            }
            prewarm(&pipeline, &specs, 1);
            let warmed = pipeline.simulations();
            // The memo key is (name, opt, input-set, cache) — not the
            // input *values* — so the generator hits the shrunk
            // prewarmed entries and must simulate nothing new.
            let _ = f(&pipeline);
            assert_eq!(
                pipeline.simulations(),
                warmed,
                "{name} simulated configurations its spec registry misses"
            );
        }
    }

    /// `table_specs` keys must be unique per table after union-ing.
    #[test]
    fn union_deduplicates_shared_configs() {
        let union = union_specs(["table1", "table2", "table14"]);
        // All three tables need exactly the same configurations.
        assert_eq!(union.len(), table_specs("table1").len());
        let keys: std::collections::HashSet<_> = union.iter().map(RunSpec::key).collect();
        assert_eq!(keys.len(), union.len());
    }

    #[test]
    fn parallel_prewarm_matches_sequential_simulation_count() {
        let mut specs = table_specs("table3");
        for spec in &mut specs {
            shrink(&mut spec.bench);
        }
        let sequential = Pipeline::new();
        prewarm(&sequential, &specs, 1);
        let parallel = Pipeline::new();
        prewarm(&parallel, &specs, 4);
        assert_eq!(sequential.simulations(), parallel.simulations());
        assert_eq!(parallel.simulations(), specs.len());
    }

    #[test]
    fn prewarm_reports_worker_utilisation() {
        let mut specs = table_specs("table3");
        for spec in &mut specs {
            shrink(&mut spec.bench);
        }
        let pipeline = Pipeline::new();
        let report = prewarm_with_stats(&pipeline, &specs, 3);
        assert_eq!(report.processed, specs.len());
        assert_eq!(report.workers.len(), 3.min(specs.len()));
        let total: u64 = report.workers.iter().map(|w| w.specs).sum();
        assert_eq!(total, specs.len() as u64);
        assert!(report.imbalance() >= 1.0);
        // Sequential path reports a single worker owning everything.
        let seq = prewarm_with_stats(&Pipeline::new(), &specs, 1);
        assert_eq!(seq.workers.len(), 1);
        assert_eq!(seq.workers[0].specs, specs.len() as u64);
    }

    /// Shrinks a benchmark's inputs so tests stay fast.
    fn shrink(b: &mut Benchmark) {
        for v in b.input1.iter_mut().chain(b.input2.iter_mut()) {
            *v = (*v).clamp(1, 64);
        }
    }
}
