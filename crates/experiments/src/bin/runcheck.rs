//! Developer utility: run every workload at `-O0` on Input 1 and print
//! one summary line per benchmark (instructions, loads, misses, output
//! head, wall time). Useful when (re)tuning workload footprints.
//!
//! ```text
//! cargo run --release -p dl-experiments --bin runcheck
//! ```

fn main() {
    for b in dl_workloads::all() {
        let p = b
            .compile(dl_minic::OptLevel::O0)
            .expect("workload compiles");
        let cfg = dl_sim::RunConfig {
            input: b.input1.clone(),
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        match dl_sim::run(&p, &cfg) {
            Ok(r) => println!(
                "{:15} insts={:>10} loads={:>9} miss={:>8} ({:5.2}%) out={:?} {:?}ms",
                b.name,
                r.instructions,
                r.loads,
                r.load_misses_total,
                100.0 * r.load_misses_total as f64 / r.loads.max(1) as f64,
                &r.output[..r.output.len().min(2)],
                t0.elapsed().as_millis()
            ),
            Err(e) => println!("{:15} TRAP: {e}", b.name),
        }
    }
}
