//! Developer utility: print per-benchmark (m, n, r) statistics for the
//! seven structural aggregate classes over the training set — the raw
//! numbers behind the class-nature decisions of Table 5.
//!
//! ```text
//! cargo run --release -p dl-experiments --bin traindbg
//! ```

use dl_core::training::{aggregate_class_defs, train_class, TrainingParams, TrainingRun};
use dl_experiments::pipeline::Pipeline;
use dl_minic::OptLevel;
use dl_sim::CacheConfig;

fn main() {
    let p = Pipeline::new();
    let runs: Vec<_> = dl_workloads::training_set()
        .into_iter()
        .map(|b| {
            (
                b.name,
                p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline()),
            )
        })
        .collect();
    let views: Vec<TrainingRun<'_>> = runs
        .iter()
        .map(|(n, r)| TrainingRun {
            name: n,
            loads: &r.analysis().loads,
            exec_counts: &r.result.exec_counts,
            load_misses: &r.result.load_misses,
            total_load_misses: r.result.load_misses_total,
        })
        .collect();
    for def in aggregate_class_defs().iter().take(7) {
        let t = train_class(def, &views, &TrainingParams::default());
        println!("== {} ({:?})", def.name, t.nature);
        for s in &t.stats {
            if s.found {
                let r = if s.n > 0.0 { s.m / s.n } else { f64::NAN };
                println!(
                    "  {:14} m={:8.4}% n={:8.3}% r={:7.4} {}",
                    s.bench,
                    s.m * 100.0,
                    s.n * 100.0,
                    r,
                    if s.relevant { "REL" } else { "" }
                );
            }
        }
    }
}
