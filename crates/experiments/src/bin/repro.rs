//! Table regeneration CLI.
//!
//! ```text
//! repro all                    # print every table as markdown
//! repro table11 table12        # print specific tables
//! repro write-experiments PATH # emit the EXPERIMENTS.md document
//! repro list                   # list available targets
//! ```
//!
//! `--jobs N` (or the `DL_JOBS` environment variable) sets the worker
//! count used to pre-warm the simulation memo table before tables are
//! assembled; the default is the machine's available parallelism.
//! Output is byte-identical for every worker count — table assembly
//! is always sequential over the warmed memo table.
//!
//! Observability:
//!
//! - `--manifest PATH` writes a machine-readable `RUN_MANIFEST.json`
//!   (stage wall times, memo hit/miss/wait counters, per-worker
//!   utilisation, miss-class breakdown).
//! - `--profile` prints the same data as a human report on stderr.
//! - `DL_OBS=json|text|off` sets the default: `json` writes
//!   `RUN_MANIFEST.json` in the current directory, `text` behaves like
//!   `--profile`. Tables on stdout are byte-identical in every mode.
//! - `--smoke` shrinks benchmark inputs so CI can exercise the whole
//!   pipeline (and validate the manifest) in seconds.
//! - `--trace-out PATH` writes a Chrome trace-event JSON timeline
//!   (loadable in Perfetto / `chrome://tracing`) with one span per
//!   compilation, per computed analysis pass, and per simulated
//!   configuration, plus the top-level run stages.

use std::sync::Arc;
use std::time::Instant;

use dl_experiments::document::experiments_doc;
use dl_experiments::obs::{profile_text, run_manifest, RunInfo};
use dl_experiments::pipeline::Pipeline;
use dl_experiments::schedule::{default_jobs, prewarm_with_stats, union_specs, PrewarmReport};
use dl_experiments::tables::all_tables;
use dl_obs::span::Spans;
use dl_obs::ObsMode;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--jobs N] [--smoke] [--profile] [--manifest PATH] \
         [--trace-out PATH] <all | list | table1..table14 | \
         ablation-classes | ablation-patterns | write-experiments [PATH]>"
    );
    std::process::exit(2);
}

/// Parses `--jobs N` out of the argument list (removing it), falling
/// back to `DL_JOBS`, then to available parallelism.
fn parse_jobs(args: &mut Vec<String>) -> usize {
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        if i + 1 >= args.len() {
            usage();
        }
        let n: usize = args[i + 1].parse().unwrap_or_else(|_| usage());
        args.drain(i..=i + 1);
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DL_JOBS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    default_jobs()
}

/// Removes a boolean flag from the argument list, reporting presence.
fn parse_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        return true;
    }
    false
}

/// Removes `--<flag> PATH` from the argument list.
fn parse_path(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        usage();
    }
    let path = args[i + 1].clone();
    args.drain(i..=i + 1);
    Some(path)
}

/// How the run is being observed, resolved from flags and `DL_OBS`.
struct Obs {
    /// Write the JSON manifest here, if anywhere.
    manifest: Option<String>,
    /// Print the human profile report on stderr.
    profile: bool,
    /// Write the Chrome trace-event timeline here, if anywhere.
    trace: Option<String>,
}

impl Obs {
    fn resolve(args: &mut Vec<String>) -> Self {
        let mut manifest = parse_path(args, "--manifest");
        let mut profile = parse_flag(args, "--profile");
        let trace = parse_path(args, "--trace-out");
        match ObsMode::from_env() {
            ObsMode::Json => manifest = manifest.or_else(|| Some("RUN_MANIFEST.json".into())),
            ObsMode::Text => profile = true,
            ObsMode::Off => {}
        }
        Self {
            manifest,
            profile,
            trace,
        }
    }

    /// Whether any per-run collection (miss classification, manifest
    /// assembly) should be enabled at all. Tracing alone does not need
    /// classification — it only records timing spans.
    fn enabled(&self) -> bool {
        self.manifest.is_some() || self.profile
    }

    /// Emits the trace timeline, manifest file, and/or profile report.
    fn finish(
        &self,
        info: &RunInfo,
        pipeline: &Pipeline,
        report: Option<&PrewarmReport>,
        spans: &Spans,
    ) {
        if let Some(path) = &self.trace {
            std::fs::write(path, dl_obs::chrome_trace(spans).render()).expect("write trace");
            eprintln!("[trace written to {path}]");
        }
        if !self.enabled() {
            return;
        }
        let manifest = run_manifest(info, pipeline, report, spans);
        if let Some(path) = &self.manifest {
            std::fs::write(path, manifest.render()).expect("write manifest");
            eprintln!("[manifest written to {path}]");
        }
        if self.profile {
            eprint!("{}", profile_text(&manifest));
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = parse_jobs(&mut args);
    let smoke = parse_flag(&mut args, "--smoke");
    let obs = Obs::resolve(&mut args);
    if args.is_empty() && smoke {
        // `repro --smoke` alone exercises the cheapest heuristic table
        // plus the reuse-predictor table: enough for CI to validate
        // the pipeline, the manifest contract, and both predictors.
        args.push("table3".into());
        args.push("extension-reuse".into());
    }
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        usage();
    }
    let tables = all_tables();
    if args[0] == "list" {
        for (name, _) in &tables {
            println!("{name}");
        }
        return;
    }
    let pipeline = Pipeline::new();
    pipeline.set_classify_misses(obs.enabled());
    let spans = Arc::new(Spans::default());
    if obs.trace.is_some() {
        pipeline.set_trace_spans(Arc::clone(&spans));
    }
    let total = Instant::now();
    if args[0] == "write-experiments" {
        let path = args.get(1).map_or("EXPERIMENTS.md", |s| s.as_str());
        let names: Vec<&str> = tables.iter().map(|(n, _)| *n).collect();
        let report = warm(&pipeline, &names, jobs, smoke, &spans);
        let doc = spans.time("document", || {
            experiments_doc(&pipeline, &tables, |name, secs| {
                eprintln!("[{name} in {secs:.1}s]");
            })
        });
        std::fs::write(path, doc).expect("write EXPERIMENTS.md");
        eprintln!(
            "wrote {path} ({} simulations, {} jobs, {:.1}s total)",
            pipeline.simulations(),
            jobs,
            total.elapsed().as_secs_f64()
        );
        let info = run_info(jobs, smoke, &names);
        obs.finish(&info, &pipeline, report.as_ref(), &spans);
        return;
    }
    let wanted: Vec<&str> = if args[0] == "all" {
        tables.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in &wanted {
        if !tables.iter().any(|(n, _)| n == name) {
            eprintln!("unknown target `{name}` (try `repro list`)");
            std::process::exit(2);
        }
    }
    let report = warm(&pipeline, &wanted, jobs, smoke, &spans);
    for name in &wanted {
        let (_, f) = tables
            .iter()
            .find(|(n, _)| n == name)
            .expect("validated above");
        let start = Instant::now();
        let table = spans.time(&format!("tables/{name}"), || f(&pipeline));
        println!("{table}");
        eprintln!("[{name} in {:.1}s]", start.elapsed().as_secs_f64());
    }
    eprintln!(
        "[{} table(s), {} simulations, {} jobs, {:.1}s total]",
        wanted.len(),
        pipeline.simulations(),
        jobs,
        total.elapsed().as_secs_f64()
    );
    let info = run_info(jobs, smoke, &wanted);
    obs.finish(&info, &pipeline, report.as_ref(), &spans);
}

fn run_info(jobs: usize, smoke: bool, tables: &[&str]) -> RunInfo {
    RunInfo {
        command: "repro".into(),
        jobs,
        smoke,
        tables: tables.iter().map(|t| (*t).to_owned()).collect(),
    }
}

/// Pre-warms the memo table for the requested tables across `jobs`
/// workers. With `smoke`, benchmark inputs are clamped small — the
/// memo key ignores input *values*, so the later table assembly hits
/// the shrunk entries and the whole run stays fast.
fn warm(
    pipeline: &Pipeline,
    tables: &[&str],
    jobs: usize,
    smoke: bool,
    spans: &Spans,
) -> Option<PrewarmReport> {
    let mut specs = union_specs(tables.iter().copied());
    if specs.is_empty() {
        return None;
    }
    if smoke {
        for spec in &mut specs {
            for v in spec
                .bench
                .input1
                .iter_mut()
                .chain(spec.bench.input2.iter_mut())
            {
                *v = (*v).clamp(1, 64);
            }
        }
    }
    let report = spans.time("warm", || prewarm_with_stats(pipeline, &specs, jobs));
    eprintln!(
        "[warmed {} configurations on {jobs} worker(s) in {:.1}s]",
        report.processed, report.wall_secs
    );
    Some(report)
}
