//! Table regeneration CLI.
//!
//! ```text
//! repro all                    # print every table as markdown
//! repro table11 table12        # print specific tables
//! repro write-experiments PATH # emit the EXPERIMENTS.md document
//! repro list                   # list available targets
//! ```
//!
//! `--jobs N` (or the `DL_JOBS` environment variable) sets the worker
//! count used to pre-warm the simulation memo table before tables are
//! assembled; the default is the machine's available parallelism.
//! Output is byte-identical for every worker count — table assembly
//! is always sequential over the warmed memo table.

use std::time::Instant;

use dl_experiments::document::experiments_doc;
use dl_experiments::pipeline::Pipeline;
use dl_experiments::schedule::{default_jobs, prewarm, union_specs};
use dl_experiments::tables::all_tables;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--jobs N] <all | list | table1..table14 | ablation-classes | \
         ablation-patterns | write-experiments [PATH]>"
    );
    std::process::exit(2);
}

/// Parses `--jobs N` out of the argument list (removing it), falling
/// back to `DL_JOBS`, then to available parallelism.
fn parse_jobs(args: &mut Vec<String>) -> usize {
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        if i + 1 >= args.len() {
            usage();
        }
        let n: usize = args[i + 1].parse().unwrap_or_else(|_| usage());
        args.drain(i..=i + 1);
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DL_JOBS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    default_jobs()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = parse_jobs(&mut args);
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        usage();
    }
    let tables = all_tables();
    if args[0] == "list" {
        for (name, _) in &tables {
            println!("{name}");
        }
        return;
    }
    let pipeline = Pipeline::new();
    let total = Instant::now();
    if args[0] == "write-experiments" {
        let path = args.get(1).map_or("EXPERIMENTS.md", |s| s.as_str());
        let names: Vec<&str> = tables.iter().map(|(n, _)| *n).collect();
        warm(&pipeline, &names, jobs);
        let doc = experiments_doc(&pipeline, &tables, |name, secs| {
            eprintln!("[{name} in {secs:.1}s]");
        });
        std::fs::write(path, doc).expect("write EXPERIMENTS.md");
        eprintln!(
            "wrote {path} ({} simulations, {} jobs, {:.1}s total)",
            pipeline.simulations(),
            jobs,
            total.elapsed().as_secs_f64()
        );
        return;
    }
    let wanted: Vec<&str> = if args[0] == "all" {
        tables.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in &wanted {
        if !tables.iter().any(|(n, _)| n == name) {
            eprintln!("unknown target `{name}` (try `repro list`)");
            std::process::exit(2);
        }
    }
    warm(&pipeline, &wanted, jobs);
    for name in &wanted {
        let (_, f) = tables
            .iter()
            .find(|(n, _)| n == name)
            .expect("validated above");
        let start = Instant::now();
        let table = f(&pipeline);
        println!("{table}");
        eprintln!("[{name} in {:.1}s]", start.elapsed().as_secs_f64());
    }
    eprintln!(
        "[{} table(s), {} simulations, {} jobs, {:.1}s total]",
        wanted.len(),
        pipeline.simulations(),
        jobs,
        total.elapsed().as_secs_f64()
    );
}

/// Pre-warms the memo table for the requested tables across `jobs`
/// workers.
fn warm(pipeline: &Pipeline, tables: &[&str], jobs: usize) {
    let specs = union_specs(tables.iter().copied());
    if specs.is_empty() {
        return;
    }
    let start = Instant::now();
    let n = prewarm(pipeline, &specs, jobs);
    eprintln!(
        "[warmed {n} configurations on {jobs} worker(s) in {:.1}s]",
        start.elapsed().as_secs_f64()
    );
}
