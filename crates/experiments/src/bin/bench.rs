//! Pipeline-level benchmark: sequential vs. parallel memo-table
//! prewarming over a fixed table subset, plus raw simulator
//! throughput. Writes `BENCH_pipeline.json` in the current directory
//! (run from the repo root).
//!
//! ```text
//! bench [--jobs N] [--smoke] [--out PATH] [--best-of N]
//! ```
//!
//! `--smoke` shrinks the workload (one table, one throughput run) so
//! CI can validate the harness in seconds; the JSON shape is the same.
//! `--best-of N` (or env `DL_BENCH_BEST_OF`; default 5) sets the
//! timed-repetition count per throughput measurement — CI smoke runs
//! use 2, committed numbers keep the best-of-5 methodology.

use std::time::Instant;

use dl_experiments::pipeline::Pipeline;
use dl_experiments::schedule::{default_jobs, prewarm, union_specs};
use dl_minic::{compile, OptLevel};
use dl_obs::Json;
use dl_sim::{
    run_with_stats, BlockStats, Engine, Inclusion, L2Config, MemoryConfig, RunConfig,
    StridePrefetchConfig,
};

/// Tables whose union of configurations the full benchmark times.
/// Chosen to span opt levels, both input sets, and several cache
/// geometries while staying a few minutes of work.
const FULL_TABLES: &[&str] = &["table3", "table7", "table8", "table9"];
const SMOKE_TABLES: &[&str] = &["table3"];

struct Args {
    jobs: usize,
    smoke: bool,
    out: String,
    best_of: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        jobs: default_jobs(),
        smoke: false,
        out: "BENCH_pipeline.json".into(),
        // The flag wins over the environment; both default to the
        // committed best-of-5 methodology.
        best_of: std::env::var("DL_BENCH_BEST_OF")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5),
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--jobs" => {
                i += 1;
                args.jobs = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--best-of" => {
                i += 1;
                args.best_of = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    args.jobs = args.jobs.max(1);
    args.best_of = args.best_of.max(1);
    args
}

fn usage() -> ! {
    eprintln!("usage: bench [--jobs N] [--smoke] [--out PATH] [--best-of N]");
    std::process::exit(2);
}

/// Times one full prewarm of `tables` across `jobs` workers. Returns
/// the warmed pipeline so the caller can read its memo and
/// analysis-cache counters.
fn time_prewarm(tables: &[&str], jobs: usize) -> (f64, usize, Pipeline) {
    let pipeline = Pipeline::new();
    let specs = union_specs(tables.iter().copied());
    let start = Instant::now();
    let n = prewarm(&pipeline, &specs, jobs);
    (start.elapsed().as_secs_f64(), n, pipeline)
}

/// The cache-resident reduction kernel the throughput runs execute.
fn throughput_kernel(smoke: bool) -> dl_mips::program::Program {
    let reps = if smoke { 8 } else { 200 };
    let source = format!(
        "int a[4096];
         int main() {{
             int i; int t; int s;
             s = 0;
             for (t = 0; t < {reps}; t = t + 1) {{
                 for (i = 0; i < 4096; i = i + 1) {{ s = s + a[i]; }}
             }}
             print(s);
             return 0;
         }}"
    );
    compile(&source, OptLevel::O0).expect("kernel compiles")
}

/// One throughput measurement: instructions, best-trial seconds,
/// data-cache accesses, and the block-cache stats of the best trial.
struct SimMeasure {
    insts: u64,
    secs: f64,
    accesses: u64,
    stats: Option<BlockStats>,
}

/// Raw simulator throughput of one engine on the shared kernel under
/// the given memory system. `probe_fast` toggles the block engine's
/// probe-elimination layer so the `sim_probe` section can price it.
fn sim_throughput(
    program: &dl_mips::program::Program,
    engine: Engine,
    memory: MemoryConfig,
    probe_fast: bool,
    best_of: usize,
) -> SimMeasure {
    let config = RunConfig {
        engine,
        memory,
        probe_fast,
        ..RunConfig::default()
    };
    // Warmup.
    let _ = run_with_stats(program, &config).expect("kernel runs");
    // Best of N timed repetitions: the minimum is the least
    // scheduler-disturbed sample and the standard throughput estimate
    // on a shared box.
    let mut best: Option<SimMeasure> = None;
    for _ in 0..best_of {
        // Cool-down between trials: back-to-back runs on a shared or
        // frequency-managed host measure the sustained (throttled)
        // clock, not the code. A short idle gap lets each trial start
        // from the same clock state, which is what best-of-N minimum
        // is meant to isolate.
        std::thread::sleep(std::time::Duration::from_millis(75));
        let start = Instant::now();
        let (result, stats) = run_with_stats(program, &config).expect("kernel runs");
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|b| secs < b.secs) {
            best = Some(SimMeasure {
                insts: result.instructions,
                secs,
                accesses: result.dcache_accesses,
                stats,
            });
        }
    }
    best.expect("at least one timed repetition")
}

fn main() {
    let args = parse_args();
    let tables = if args.smoke {
        SMOKE_TABLES
    } else {
        FULL_TABLES
    };

    eprintln!(
        "[simulator throughput: step vs block, best of {}]",
        args.best_of
    );
    let kernel = throughput_kernel(args.smoke);
    let n = args.best_of;
    // Block before step: the step engine burns ~1s of sustained CPU,
    // and on a frequency- or quota-managed host that throttles
    // whatever is measured next. The fastest engine gets the freshest
    // clock; reporting order below is unchanged.
    let block = sim_throughput(&kernel, Engine::Block, MemoryConfig::default(), true, n);
    let step = sim_throughput(&kernel, Engine::Step, MemoryConfig::default(), true, n);
    let (insts, step_secs) = (step.insts, step.secs);
    let step_rate = insts as f64 / step_secs;
    eprintln!("  step:  {insts} instructions in {step_secs:.3}s = {step_rate:.0} insts/s");
    let sim_secs = block.secs;
    let insts_per_sec = insts as f64 / sim_secs;
    let engine_speedup = step_secs / sim_secs.max(1e-9);
    eprintln!("  block: {insts} instructions in {sim_secs:.3}s = {insts_per_sec:.0} insts/s");
    eprintln!("  engine speedup: {engine_speedup:.2}x");
    let block_stats = block.stats.unwrap_or_default();

    // The non-default memory systems: an L2 keeps the block engine's
    // fast path (L2 is touched only on L1 misses), a stride prefetcher
    // forces the slow path (it must observe every load). Tracking both
    // pins each regime's own regression baseline.
    let l2_mem = MemoryConfig {
        l2: Some(L2Config::kb(64, 8, Inclusion::Inclusive)),
        ..MemoryConfig::default()
    };
    let l2 = sim_throughput(&kernel, Engine::Block, l2_mem, true, n);
    let l2_secs = l2.secs;
    let l2_rate = insts as f64 / l2_secs;
    eprintln!("  block+l2: {insts} instructions in {l2_secs:.3}s = {l2_rate:.0} insts/s");
    let pf_mem = MemoryConfig {
        prefetch: Some(StridePrefetchConfig::degree(2)),
        ..MemoryConfig::default()
    };
    let pf = sim_throughput(&kernel, Engine::Block, pf_mem, true, n);
    let pf_secs = pf.secs;
    let pf_rate = insts as f64 / pf_secs;
    eprintln!("  block+pf: {insts} instructions in {pf_secs:.3}s = {pf_rate:.0} insts/s");

    // Probe-cost microbench: ns per data-cache access in each block
    // engine regime. `plain` runs the same kernel and memory system
    // as `coalesced` but with `DL_PROBE_FAST`-equivalent off, so the
    // pair prices the probe-elimination layer directly; `l2` and
    // `prefetch` reuse the regime measurements above.
    let ns = |m: &SimMeasure| m.secs / (m.accesses.max(1) as f64) * 1e9;
    eprintln!("[sim_probe: ns/access]");
    let plain = sim_throughput(&kernel, Engine::Block, MemoryConfig::default(), false, n);
    let probe_plain_ns = ns(&plain);
    let probe_coalesced_ns = ns(&block);
    let probe_l2_ns = ns(&l2);
    let probe_prefetch_ns = ns(&pf);
    eprintln!(
        "  plain: {probe_plain_ns:.3}  coalesced: {probe_coalesced_ns:.3}  \
         l2: {probe_l2_ns:.3}  prefetch: {probe_prefetch_ns:.3}"
    );

    eprintln!("[sequential prewarm: {}]", tables.join(", "));
    let (seq_secs, configs, _) = time_prewarm(tables, 1);
    eprintln!("  {configs} configurations in {seq_secs:.2}s");

    eprintln!("[parallel prewarm: {} jobs]", args.jobs);
    let (par_secs, _, pipeline) = time_prewarm(tables, args.jobs);
    eprintln!("  {configs} configurations in {par_secs:.2}s");
    let stats = pipeline.stats();
    let ctx_stats = pipeline.analysis_stats();
    let contexts = pipeline.analysis_contexts();

    let speedup = seq_secs / par_secs.max(1e-9);
    eprintln!("  speedup: {speedup:.2}x");
    eprintln!(
        "  memo: {} misses, {} in-flight waits; compile cache: {} hits / {} compiles",
        stats.misses, stats.waits, stats.compile_hits, stats.compile_misses
    );
    eprintln!(
        "  analysis: {} contexts, {} hits / {} misses ({:.1}% hit rate), {:.3}s compute",
        contexts,
        ctx_stats.hits(),
        ctx_stats.misses(),
        100.0 * ctx_stats.hit_rate(),
        ctx_stats.total_secs()
    );

    let json = Json::obj()
        .with("smoke", args.smoke.into())
        .with("jobs", args.jobs.into())
        .with("best_of", args.best_of.into())
        .with(
            "tables",
            Json::Arr(tables.iter().map(|t| (*t).into()).collect()),
        )
        .with("configurations", configs.into())
        .with("sequential_secs", seq_secs.into())
        .with("parallel_secs", par_secs.into())
        .with("speedup", speedup.into())
        .with(
            "memo",
            Json::obj()
                .with("hits", stats.hits.into())
                .with("misses", stats.misses.into())
                .with("waits", stats.waits.into())
                .with("compile_hits", stats.compile_hits.into())
                .with("compile_misses", stats.compile_misses.into()),
        )
        .with(
            "analysis",
            Json::obj()
                .with("contexts", contexts.into())
                .with("hits", ctx_stats.hits().into())
                .with("misses", ctx_stats.misses().into())
                .with("hit_rate", ctx_stats.hit_rate().into())
                .with("compute_secs", ctx_stats.total_secs().into()),
        )
        .with("sim_instructions", insts.into())
        .with("sim_engine", "block".into())
        .with("sim_secs", sim_secs.into())
        .with("sim_insts_per_sec", insts_per_sec.into())
        .with("sim_step_secs", step_secs.into())
        .with("sim_step_insts_per_sec", step_rate.into())
        .with("sim_l2_secs", l2_secs.into())
        .with("sim_l2_insts_per_sec", l2_rate.into())
        .with("sim_prefetch_secs", pf_secs.into())
        .with("sim_prefetch_insts_per_sec", pf_rate.into())
        .with("sim_probe_plain_ns", probe_plain_ns.into())
        .with("sim_probe_coalesced_ns", probe_coalesced_ns.into())
        .with("sim_probe_l2_ns", probe_l2_ns.into())
        .with("sim_probe_prefetch_ns", probe_prefetch_ns.into())
        .with("sim_engine_speedup", engine_speedup.into())
        .with(
            "block_cache",
            Json::obj()
                .with("blocks_decoded", block_stats.blocks_decoded.into())
                .with("insts_decoded", block_stats.insts_decoded.into())
                .with("mean_block_len", block_stats.mean_block_len().into())
                .with("dispatches", block_stats.dispatches.into())
                .with("dispatch_hits", block_stats.dispatch_hits.into())
                .with("insts_retired", block_stats.insts_retired.into()),
        );
    std::fs::write(&args.out, json.render()).expect("write benchmark JSON");
    eprintln!("wrote {}", args.out);
}
