//! Regeneration of every table in the paper's evaluation section
//! (Tables 1–14), plus two ablations beyond the paper.
//!
//! Conventions: "Input 1" is the reference input; the *training* cache
//! is the paper's 32 KiB 4-way 32 B configuration (§6); the *baseline*
//! cache is the 8 KiB 4-way configuration of Table 11; the heuristic
//! uses the published Table 5 weights and δ = 0.10 unless a table
//! varies them.

use std::sync::Arc;

use dl_analysis::extract::{analyze_program, AnalysisConfig};
use dl_analysis::CacheGeometry;
use dl_baselines::{Bdh, Okn, ProfilePredictor, ReusePredictor};
use dl_core::combine::{combine_with_profiling, HybridMode};
use dl_core::training::{h1_class_defs, train_class, train_weights, TrainingParams, TrainingRun};
use dl_core::{AgClass, Heuristic, Hybrid, Predictor, Weights};
use dl_minic::OptLevel;
use dl_sim::{CacheConfig, Inclusion, L2Config, MemoryConfig, Policy, StridePrefetchConfig};
use dl_workloads::Benchmark;

use crate::metrics::{ideal_set, pct, pi, profiling_set, random_control, rho, xi};
use crate::pipeline::{BenchRun, Pipeline};
use crate::report::Table;

/// Fraction of executed instructions the hot-block profile covers
/// (the paper's "90% of the total compute cycles").
const HOT_FRACTION: f64 = 0.9;

fn delta_h(run: &BenchRun, h: &Heuristic) -> Vec<usize> {
    h.predict(run.ctx())
}

fn training_run<'a>(run: &'a BenchRun, name: &'a str) -> TrainingRun<'a> {
    TrainingRun {
        name,
        loads: &run.analysis().loads,
        exec_counts: &run.result.exec_counts,
        load_misses: &run.result.load_misses,
        total_load_misses: run.result.load_misses_total,
    }
}

fn avg(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Table 1 — profiling-only identification: Λ, the ideal set size for
/// the same coverage, the profiling set size, and its coverage ρ.
#[must_use]
pub fn table1(p: &Pipeline) -> Table {
    let mut t = Table::new(
        "table1",
        "use of basic-block profiling in identifying delinquent loads",
        &["Benchmark", "Λ", "Ideal |Δ| (π)", "Profiling |Δ| (π)", "ρ"],
    );
    let (mut pis_ideal, mut pis_prof, mut rhos) = (vec![], vec![], vec![]);
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let lambda = run.lambda();
        let loads = run.load_indices();
        let prof = profiling_set(run.program(), &run.result, HOT_FRACTION);
        let coverage = rho(&run.result, &prof);
        let covered = run.result.misses_of_set(&prof);
        let ideal = ideal_set(&run.result, &loads, covered);
        pis_ideal.push(pi(ideal.len(), lambda));
        pis_prof.push(pi(prof.len(), lambda));
        rhos.push(coverage);
        t.push_row(vec![
            b.name.to_owned(),
            lambda.to_string(),
            format!("{} ({})", ideal.len(), pct(pi(ideal.len(), lambda), 2)),
            format!("{} ({})", prof.len(), pct(pi(prof.len(), lambda), 2)),
            pct(coverage, 0),
        ]);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        String::new(),
        pct(avg(&pis_ideal), 2),
        pct(avg(&pis_prof), 2),
        pct(avg(&rhos), 1),
    ]);
    t.set_note(
        "Paper: ideal avg 0.73%, profiling avg 4.73% of loads covering 87.5% of misses. \
         Shape to match: profiling needs several times more loads than the ideal set \
         for the same high coverage.",
    );
    t
}

/// Table 2 — runtime characteristics of each benchmark.
#[must_use]
pub fn table2(p: &Pipeline) -> Table {
    let mut t = Table::new(
        "table2",
        "runtime characteristics (scaled-down synthetic workloads)",
        &[
            "Benchmark",
            "Instr executed",
            "L1 D accesses",
            "L1 D misses",
        ],
    );
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        t.push_row(vec![
            b.name.to_owned(),
            format!("{:.2e}", run.result.instructions as f64),
            format!("{:.2e}", run.result.dcache_accesses as f64),
            format!("{:.2e}", run.result.dcache_misses as f64),
        ]);
    }
    t.set_note(
        "Paper: 10⁷–10¹² instructions per benchmark. Ours are scaled to ~10⁶–10⁷ \
         by design (DESIGN.md substitution table); relative magnitudes across \
         benchmarks are preserved.",
    );
    t
}

/// Training runs use the 8 KiB cache: the synthetic workloads' working
/// sets are scaled down ~100x from SPEC, so the cache whose miss
/// probabilities match the paper's training regime is the scaled-down
/// one (DESIGN.md discusses this substitution).
fn training_runs(p: &Pipeline) -> Vec<(Benchmark, Arc<BenchRun>)> {
    dl_workloads::training_set()
        .into_iter()
        .map(|b| {
            let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
            (b, run)
        })
        .collect()
}

/// Table 3 — the fifteen H1 register-usage classes: how many training
/// benchmarks they are found in / relevant in.
#[must_use]
pub fn table3(p: &Pipeline) -> Table {
    let runs = training_runs(p);
    let views: Vec<TrainingRun<'_>> = runs.iter().map(|(b, r)| training_run(r, b.name)).collect();
    let mut t = Table::new(
        "table3",
        "criterion H1 applied to the eleven training benchmarks",
        &["Class", "Feature", "Found in", "Relevant in"],
    );
    for def in h1_class_defs() {
        let trained = train_class(&def, &views, &TrainingParams::default());
        t.push_row(vec![
            def.name.clone(),
            def.feature.clone(),
            format!("{} benchmarks", trained.found_in()),
            format!("{} benchmarks", trained.relevant_in()),
        ]);
    }
    t.set_note(
        "Paper: plain classes (sp=1, sp=2) found everywhere; mixed sp+gp classes \
         found in a subset and relevant in most of those; exotic counts rare. \
         The same skew should appear here.",
    );
    t
}

/// Table 4 — m and n values of H1 class 5 (`sp=1, gp=1`) on the
/// training benchmarks where it is found.
#[must_use]
pub fn table4(p: &Pipeline) -> Table {
    let runs = training_runs(p);
    let views: Vec<TrainingRun<'_>> = runs.iter().map(|(b, r)| training_run(r, b.name)).collect();
    let def = h1_class_defs().remove(4); // H1.5
    let trained = train_class(&def, &views, &TrainingParams::default());
    let mut t = Table::new(
        "table4",
        "m_j and n_j of H1 class 5 (sp=1, gp=1)",
        &["Benchmark", "m_j (%)", "n_j (%)", "relevant"],
    );
    for s in trained.stats.iter().filter(|s| s.found) {
        t.push_row(vec![
            s.bench.clone(),
            format!("{:.2}", s.m * 100.0),
            format!("{:.2}", s.n * 100.0),
            if s.relevant { "yes" } else { "no" }.into(),
        ]);
    }
    t.set_note(
        "Paper: class 5 found in 7 of 11 benchmarks, relevant in 5; m/n ratios \
         average ≈ 0.47 over the relevant set.",
    );
    t
}

/// Table 5 — trained aggregate-class weights next to the published
/// ones.
#[must_use]
pub fn table5(p: &Pipeline) -> Table {
    let runs = training_runs(p);
    let views: Vec<TrainingRun<'_>> = runs.iter().map(|(b, r)| training_run(r, b.name)).collect();
    let trained = train_weights(&views, &TrainingParams::default());
    let paper = Weights::paper();
    let mut t = Table::new(
        "table5",
        "aggregate classes and their weights",
        &["Class", "Feature", "Trained weight", "Paper weight"],
    );
    for c in AgClass::ALL {
        t.push_row(vec![
            c.name().into(),
            c.feature().into(),
            format!("{:+.2}", trained.get(c)),
            format!("{:+.2}", paper.get(c)),
        ]);
    }
    t.set_note(
        "Paper: AG6 (three derefs) strongest positive, AG4 weakest positive, \
         AG8/AG9 negative with AG8 half of AG9 — all of which reproduce here. \
         Two honest divergences: AG2 trains negative (our synthetic workloads \
         keep large arrays global/heap, so multi-sp stack patterns barely \
         occur), and AG7 trains negative (at -O0 loop recurrences flow through \
         stack slots, invisible to register-level recurrence detection; the \
         paper's +0.10 for AG7 was also its weakest positive weight).",
    );
    t
}

/// Table 6 — the input sets (workload metadata).
#[must_use]
pub fn table6(_p: &Pipeline) -> Table {
    let mut t = Table::new(
        "table6",
        "inputs used in the experiments",
        &["Benchmark", "Input 1", "Input 2"],
    );
    for b in dl_workloads::all() {
        t.push_row(vec![
            b.name.to_owned(),
            format!("{:?}", b.input1),
            format!("{:?}", b.input2),
        ]);
    }
    t.set_note("Input 1 doubles as the training input, exactly as in the paper.");
    t
}

/// Table 7 — heuristic stability across the two input sets.
#[must_use]
pub fn table7(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let mut t = Table::new(
        "table7",
        "performance on different inputs (training benchmarks, unoptimized)",
        &["Benchmark", "Input 1 π / ρ", "Input 2 π / ρ"],
    );
    let mut avgs = [vec![], vec![], vec![], vec![]];
    for b in dl_workloads::training_set() {
        let mut cells = vec![b.name.to_owned()];
        for (slot, input) in [1u8, 2].iter().enumerate() {
            let run = p.run(&b, OptLevel::O0, *input, CacheConfig::paper_training());
            let delta = delta_h(&run, &h);
            let pi_v = pi(delta.len(), run.lambda());
            let rho_v = rho(&run.result, &delta);
            avgs[slot * 2].push(pi_v);
            avgs[slot * 2 + 1].push(rho_v);
            cells.push(format!("{} / {}", pct(pi_v, 0), pct(rho_v, 0)));
        }
        t.push_row(cells);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        format!("{} / {}", pct(avg(&avgs[0]), 0), pct(avg(&avgs[1]), 0)),
        format!("{} / {}", pct(avg(&avgs[2]), 0), pct(avg(&avgs[3]), 0)),
    ]);
    t.set_note(
        "Paper: averages 10%/95% on Input 1 vs 11%/96% on Input 2 — π and ρ \
         nearly unchanged across inputs. The shape to match is that stability.",
    );
    t
}

/// Table 8 — stability across associativity (optimized code, 8 KiB).
#[must_use]
pub fn table8(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let mut t = Table::new(
        "table8",
        "varying cache associativity (optimized code, 8 KiB)",
        &["Benchmark", "π", "ρ @2-way", "ρ @4-way", "ρ @8-way"],
    );
    let mut pis = vec![];
    let mut rhos = [vec![], vec![], vec![]];
    for b in dl_workloads::training_set() {
        let mut cells = vec![b.name.to_owned(), String::new()];
        for (i, assoc) in [2u32, 4, 8].iter().enumerate() {
            let run = p.run(&b, OptLevel::O1, 1, CacheConfig::kb(8, *assoc));
            let delta = delta_h(&run, &h);
            if i == 0 {
                let pi_v = pi(delta.len(), run.lambda());
                pis.push(pi_v);
                cells[1] = pct(pi_v, 0);
            }
            let rho_v = rho(&run.result, &delta);
            rhos[i].push(rho_v);
            cells.push(pct(rho_v, 0));
        }
        t.push_row(cells);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        pct(avg(&pis), 0),
        pct(avg(&rhos[0]), 0),
        pct(avg(&rhos[1]), 0),
        pct(avg(&rhos[2]), 0),
    ]);
    t.set_note(
        "Paper: ρ ≈ 91/92/90% at 2/4/8-way — coverage essentially flat in \
         associativity; that flatness is the shape to match. Our π at -O1 \
         runs higher than the paper's 14% average because register-allocated \
         induction variables make recurrences (AG7) and shifts (AG3) visible \
         on more loads — the same direction as the paper's 099.go anomaly, \
         where optimization pushed π to 43%.",
    );
    t
}

/// Table 9 — stability across cache capacity (optimized code, 4-way).
#[must_use]
pub fn table9(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let mut t = Table::new(
        "table9",
        "varying cache size (optimized code, 4-way)",
        &["Benchmark", "π", "ρ @8k", "ρ @16k", "ρ @32k", "ρ @64k"],
    );
    let mut pis = vec![];
    let mut rhos = [vec![], vec![], vec![], vec![]];
    for b in dl_workloads::training_set() {
        let mut cells = vec![b.name.to_owned(), String::new()];
        for (i, kb) in [8u32, 16, 32, 64].iter().enumerate() {
            let run = p.run(&b, OptLevel::O1, 1, CacheConfig::kb(*kb, 4));
            let delta = delta_h(&run, &h);
            if i == 0 {
                let pi_v = pi(delta.len(), run.lambda());
                pis.push(pi_v);
                cells[1] = pct(pi_v, 0);
            }
            let rho_v = rho(&run.result, &delta);
            rhos[i].push(rho_v);
            cells.push(pct(rho_v, 0));
        }
        t.push_row(cells);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        pct(avg(&pis), 0),
        pct(avg(&rhos[0]), 0),
        pct(avg(&rhos[1]), 0),
        pct(avg(&rhos[2]), 0),
        pct(avg(&rhos[3]), 0),
    ]);
    t.set_note(
        "Paper: ρ ≈ 92/92/91/91% from 8k to 64k — flat in capacity. That \
         flatness is the shape to match.",
    );
    t
}

/// Table 10 — generalization to the seven held-out benchmarks.
#[must_use]
pub fn table10(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let mut t = Table::new(
        "table10",
        "performance on benchmarks unseen during training",
        &["Benchmark", "|Δ| / |Λ| (π)", "ρ"],
    );
    let (mut pis, mut rhos) = (vec![], vec![]);
    for b in dl_workloads::test_set() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let delta = delta_h(&run, &h);
        let pi_v = pi(delta.len(), run.lambda());
        let rho_v = rho(&run.result, &delta);
        pis.push(pi_v);
        rhos.push(rho_v);
        t.push_row(vec![
            b.name.to_owned(),
            format!("{} / {} ({})", delta.len(), run.lambda(), pct(pi_v, 2)),
            pct(rho_v, 0),
        ]);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        pct(avg(&pis), 2),
        pct(avg(&rhos), 2),
    ]);
    t.set_note(
        "Paper: averages 9.06% / 88.29% — slightly lower coverage than on the \
         training set but the same order of precision. That generalization gap \
         (small) is the shape to match.",
    );
    t
}

/// Table 11 — full summary at the 8 KiB baseline: with and without the
/// frequency classes AG8/AG9, plus the dynamic false-positive measure ξ.
#[must_use]
pub fn table11(p: &Pipeline) -> Table {
    let with = Heuristic::default();
    let without = Heuristic::default().without_frequency_classes();
    let mut t = Table::new(
        "table11",
        "performance summary (8 KiB baseline, unoptimized)",
        &[
            "Benchmark",
            "π (with AG8/9)",
            "ρ",
            "ξ",
            "π (without)",
            "ρ (without)",
        ],
    );
    let mut acc = [vec![], vec![], vec![], vec![], vec![]];
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        let loads = run.load_indices();
        let delta_w = delta_h(&run, &with);
        let delta_wo = delta_h(&run, &without);
        // ξ is measured against the Table-1-style ideal set: the
        // minimal set covering what hot-block profiling covers.
        let prof = profiling_set(run.program(), &run.result, HOT_FRACTION);
        let ideal = ideal_set(&run.result, &loads, run.result.misses_of_set(&prof));
        let vals = [
            pi(delta_w.len(), run.lambda()),
            rho(&run.result, &delta_w),
            xi(&run.result, &loads, &delta_w, &ideal),
            pi(delta_wo.len(), run.lambda()),
            rho(&run.result, &delta_wo),
        ];
        for (a, v) in acc.iter_mut().zip(vals) {
            a.push(v);
        }
        t.push_row(vec![
            b.name.to_owned(),
            pct(vals[0], 2),
            pct(vals[1], 0),
            pct(vals[2], 0),
            pct(vals[3], 2),
            pct(vals[4], 0),
        ]);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        pct(avg(&acc[0]), 2),
        pct(avg(&acc[1]), 2),
        pct(avg(&acc[2]), 2),
        pct(avg(&acc[3]), 2),
        pct(avg(&acc[4]), 2),
    ]);
    t.set_note(
        "Paper: 10.15% / 92.61% / ξ 14.04% with AG8+AG9; 20.82% / 92.89% without. \
         Shape to match: dropping the frequency classes roughly doubles π at \
         essentially unchanged ρ.",
    );
    t
}

/// Table 12 — the OKN and BDH baselines on the same binaries and cache.
#[must_use]
pub fn table12(p: &Pipeline) -> Table {
    let mut t = Table::new(
        "table12",
        "performance of the OKN and BDH methods",
        &["Benchmark", "OKN π", "OKN ρ", "BDH π", "BDH ρ"],
    );
    let mut acc = [vec![], vec![], vec![], vec![]];
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        let okn = Okn.predict(run.ctx());
        let bdh = Bdh.predict(run.ctx());
        let vals = [
            pi(okn.len(), run.lambda()),
            rho(&run.result, &okn),
            pi(bdh.len(), run.lambda()),
            rho(&run.result, &bdh),
        ];
        for (a, v) in acc.iter_mut().zip(vals) {
            a.push(v);
        }
        t.push_row(vec![
            b.name.to_owned(),
            pct(vals[0], 2),
            pct(vals[1], 0),
            pct(vals[2], 2),
            pct(vals[3], 0),
        ]);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        pct(avg(&acc[0]), 2),
        pct(avg(&acc[1]), 2),
        pct(avg(&acc[2]), 2),
        pct(avg(&acc[3]), 2),
    ]);
    t.set_note(
        "Paper: OKN 55.88% / 92.06%, BDH 50.73% / 93.00%. Shape to match: both \
         baselines reach coverage comparable to the heuristic's but flag ~5x \
         more static loads (π ≈ 50% vs ≈ 10%).",
    );
    t
}

/// Table 13 — varying the delinquency threshold δ (optimized, 16 KiB).
#[must_use]
pub fn table13(p: &Pipeline) -> Table {
    let deltas = [0.10, 0.20, 0.30, 0.40];
    let mut t = Table::new(
        "table13",
        "varying the delinquency threshold δ (optimized, 16 KiB)",
        &[
            "Benchmark",
            "δ=0.10 π/ρ",
            "δ=0.20 π/ρ",
            "δ=0.30 π/ρ",
            "δ=0.40 π/ρ",
        ],
    );
    let mut acc: Vec<(Vec<f64>, Vec<f64>)> = vec![(vec![], vec![]); deltas.len()];
    for b in dl_workloads::training_set() {
        let run = p.run(&b, OptLevel::O1, 1, CacheConfig::kb(16, 4));
        let mut cells = vec![b.name.to_owned()];
        for (i, d) in deltas.iter().enumerate() {
            let h = Heuristic::default().with_threshold(*d);
            let delta = delta_h(&run, &h);
            let pi_v = pi(delta.len(), run.lambda());
            let rho_v = rho(&run.result, &delta);
            acc[i].0.push(pi_v);
            acc[i].1.push(rho_v);
            cells.push(format!("{} / {}", pct(pi_v, 0), pct(rho_v, 0)));
        }
        t.push_row(cells);
    }
    let mut avg_cells = vec!["AVERAGE".to_owned()];
    for (pis, rhos) in &acc {
        avg_cells.push(format!("{} / {}", pct(avg(pis), 0), pct(avg(rhos), 0)));
    }
    t.push_row(avg_cells);
    t.set_note(
        "Paper: averages fall from 14/92 at δ=0.10 to 6/68 at δ=0.40, with \
         benchmark-dependent cliffs. Shape to match: both π and ρ decline \
         monotonically as δ rises, with per-benchmark cliffs.",
    );
    t
}

/// Table 14 — combining the heuristic with basic-block profiling under
/// different ε-factors, plus the random-selection control ρ*.
#[must_use]
pub fn table14(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let epsilons = [0.0, 0.10, 0.20, 0.30];
    let mut t = Table::new(
        "table14",
        "combining with profiling: varying the ε factor",
        &[
            "Benchmark",
            "ε=0 π/ρ/ρ*",
            "ε=0.1 π/ρ",
            "ε=0.2 π/ρ",
            "ε=0.3 π/ρ",
        ],
    );
    let mut acc: Vec<(Vec<f64>, Vec<f64>)> = vec![(vec![], vec![]); epsilons.len()];
    let mut rho_stars = vec![];
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let prof = profiling_set(run.program(), &run.result, HOT_FRACTION);
        let scored = h.score_all(run.analysis(), &run.result.exec_counts);
        let heuristic = delta_h(&run, &h);
        let mut cells = vec![b.name.to_owned()];
        for (i, eps) in epsilons.iter().enumerate() {
            let combined = combine_with_profiling(&prof, &scored, &heuristic, *eps);
            let pi_v = pi(combined.len(), run.lambda());
            let rho_v = rho(&run.result, &combined);
            acc[i].0.push(pi_v);
            acc[i].1.push(rho_v);
            if i == 0 {
                // Control: the same number of loads picked at random
                // from the hotspots, averaged over three draws.
                let star = random_control(&run.result, &prof, combined.len(), 3, 0xd1);
                rho_stars.push(star);
                cells.push(format!(
                    "{} / {} / {}",
                    pct(pi_v, 2),
                    pct(rho_v, 0),
                    pct(star, 0)
                ));
            } else {
                cells.push(format!("{} / {}", pct(pi_v, 2), pct(rho_v, 0)));
            }
        }
        t.push_row(cells);
    }
    let mut avg_cells = vec!["AVERAGE".to_owned()];
    for (i, (pis, rhos)) in acc.iter().enumerate() {
        if i == 0 {
            avg_cells.push(format!(
                "{} / {} / {}",
                pct(avg(pis), 2),
                pct(avg(rhos), 0),
                pct(avg(&rho_stars), 0)
            ));
        } else {
            avg_cells.push(format!("{} / {}", pct(avg(pis), 2), pct(avg(rhos), 0)));
        }
    }
    t.push_row(avg_cells);
    t.set_note(
        "Paper: ε=0 pinpoints 1.30% of loads covering 82% of misses (random \
         control ρ* only 23%); raising ε adds loads and a little coverage. Shape \
         to match: the intersection is several times more precise than profiling \
         alone at modest coverage cost, and dominates random selection.",
    );
    t
}

/// Ablation (beyond the paper): drop each aggregate class individually
/// and report the average Δπ / Δρ over all 18 benchmarks.
#[must_use]
pub fn ablation_classes(p: &Pipeline) -> Table {
    let mut t = Table::new(
        "ablation-classes",
        "per-class ablation: zero one AG weight at a time (8 KiB baseline)",
        &["Dropped class", "avg π", "avg ρ", "Δπ", "Δρ"],
    );
    let runs: Vec<Arc<BenchRun>> = dl_workloads::all()
        .iter()
        .map(|b| p.run(b, OptLevel::O0, 1, CacheConfig::paper_baseline()))
        .collect();
    let evaluate = |h: &Heuristic| -> (f64, f64) {
        let (mut pis, mut rhos) = (vec![], vec![]);
        for run in &runs {
            let delta = delta_h(run, h);
            pis.push(pi(delta.len(), run.lambda()));
            rhos.push(rho(&run.result, &delta));
        }
        (avg(&pis), avg(&rhos))
    };
    let (base_pi, base_rho) = evaluate(&Heuristic::default());
    t.push_row(vec![
        "(none)".into(),
        pct(base_pi, 2),
        pct(base_rho, 2),
        "—".into(),
        "—".into(),
    ]);
    for c in AgClass::ALL {
        let mut w = Weights::paper();
        w.set(c, 0.0);
        let (pi_v, rho_v) = evaluate(&Heuristic::default().with_weights(w));
        t.push_row(vec![
            c.name().into(),
            pct(pi_v, 2),
            pct(rho_v, 2),
            format!("{:+.2}pp", (pi_v - base_pi) * 100.0),
            format!("{:+.2}pp", (rho_v - base_rho) * 100.0),
        ]);
    }
    t.set_note(
        "Beyond the paper. Expected shape: dropping AG4 (the broad one-deref \
         class) costs the most coverage; dropping AG8/AG9 inflates π; dropping \
         narrow classes barely moves either metric.",
    );
    t
}

/// Ablation (beyond the paper): sensitivity of π/ρ to the pattern
/// extraction bounds (max patterns per load, max substitution depth).
#[must_use]
pub fn ablation_patterns(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let mut t = Table::new(
        "ablation-patterns",
        "pattern-extraction bounds: π/ρ under tighter analysis caps",
        &["max_patterns", "max_depth", "avg π", "avg ρ"],
    );
    let runs: Vec<Arc<BenchRun>> = dl_workloads::all()
        .iter()
        .map(|b| p.run(b, OptLevel::O0, 1, CacheConfig::paper_baseline()))
        .collect();
    for (mp, md) in [(1usize, 2usize), (1, 16), (2, 16), (4, 16), (8, 16), (8, 4)] {
        let cfg = AnalysisConfig {
            max_patterns: mp,
            max_depth: md,
            ..AnalysisConfig::default()
        };
        let (mut pis, mut rhos) = (vec![], vec![]);
        for run in &runs {
            // Re-analyze the same binary under tighter caps; the
            // simulation results are reused. (Non-default caps bypass
            // the ctx cache deliberately.)
            let analysis = analyze_program(run.program(), &cfg);
            let delta = h.classify(&analysis, &run.result.exec_counts);
            pis.push(pi(delta.len(), run.lambda()));
            rhos.push(rho(&run.result, &delta));
        }
        t.push_row(vec![
            mp.to_string(),
            md.to_string(),
            pct(avg(&pis), 2),
            pct(avg(&rhos), 2),
        ]);
    }
    t.set_note(
        "Beyond the paper. Expected shape: a single pattern per load already \
         captures most coverage; very shallow substitution depth (≤4) loses \
         the deref-chain classes and coverage with them.",
    );
    t
}

/// Extension (the paper's §5.2 suggestion): replace the basic-block
/// profile behind AG8/AG9 with *static* execution-frequency estimates
/// (loop nesting × call-graph propagation, Wu-Larus style).
#[must_use]
pub fn extension_static_frequency(p: &Pipeline) -> Table {
    let measured_h = Heuristic::default();
    let static_h = Heuristic::default();
    let none_h = Heuristic::default().without_frequency_classes();
    let mut t = Table::new(
        "extension-static-frequency",
        "AG8/AG9 driven by measured profile vs static estimate vs disabled",
        &[
            "Benchmark",
            "measured π/ρ",
            "static-estimate π/ρ",
            "disabled π/ρ",
        ],
    );
    let mut acc = [vec![], vec![], vec![], vec![], vec![], vec![]];
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        let est = run.ctx().freq().as_counts();
        let sets = [
            measured_h.classify(run.analysis(), &run.result.exec_counts),
            static_h.classify(run.analysis(), &est),
            none_h.classify(run.analysis(), &run.result.exec_counts),
        ];
        let mut cells = vec![b.name.to_owned()];
        for (i, set) in sets.iter().enumerate() {
            let pi_v = pi(set.len(), run.lambda());
            let rho_v = rho(&run.result, set);
            acc[i * 2].push(pi_v);
            acc[i * 2 + 1].push(rho_v);
            cells.push(format!("{} / {}", pct(pi_v, 2), pct(rho_v, 0)));
        }
        t.push_row(cells);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        format!("{} / {}", pct(avg(&acc[0]), 2), pct(avg(&acc[1]), 2)),
        format!("{} / {}", pct(avg(&acc[2]), 2), pct(avg(&acc[3]), 2)),
        format!("{} / {}", pct(avg(&acc[4]), 2), pct(avg(&acc[5]), 2)),
    ]);
    t.set_note(
        "Beyond the paper (its §5.2 suggests this is possible). Expected shape: \
         the static estimate lands between the measured profile and the \
         disabled variant — it recovers most of the precision benefit of \
         AG8/AG9 without any profiling run.",
    );
    t
}

/// Ablation: how sensitive is the §9 combination to profile fidelity?
/// Execution counts are downsampled as if collected by sampling every
/// N-th instruction.
#[must_use]
pub fn ablation_profile_fidelity(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let periods = [1u64, 10, 100, 1000, 10000];
    let mut t = Table::new(
        "ablation-profile-fidelity",
        "ε=0 combination under sampled profiles (counts quantized by period N)",
        &["Sampling period", "avg π", "avg ρ"],
    );
    for &n in &periods {
        let (mut pis, mut rhos) = (vec![], vec![]);
        for b in dl_workloads::all() {
            let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
            let sampled: Vec<u64> = run.result.exec_counts.iter().map(|&e| e / n * n).collect();
            // Rebuild both the hot-block profile and the frequency
            // classes from the degraded counts.
            let mut degraded = run.result.clone();
            degraded.exec_counts = sampled.clone();
            let prof = profiling_set(run.program(), &degraded, HOT_FRACTION);
            let heuristic_set = h.classify(run.analysis(), &sampled);
            let scored = h.score_all(run.analysis(), &sampled);
            let combined = combine_with_profiling(&prof, &scored, &heuristic_set, 0.0);
            pis.push(pi(combined.len(), run.lambda()));
            // Coverage is always judged against the *true* misses.
            rhos.push(rho(&run.result, &combined));
        }
        t.push_row(vec![
            format!("1/{n}"),
            pct(avg(&pis), 2),
            pct(avg(&rhos), 2),
        ]);
    }
    t.set_note(
        "Beyond the paper (which assumes perfect profile fidelity and notes \
         real profiles won't have it). Expected shape: coverage degrades \
         gracefully as sampling coarsens, because the heuristic's structural \
         classes do not depend on the counts.",
    );
    t
}

/// Ablation: per-benchmark δ tuning (the paper's §8.6 'further
/// investigation'): pick the largest δ that keeps ρ ≥ 90%, per
/// benchmark, and compare against the fixed δ = 0.10.
#[must_use]
pub fn ablation_delta_tuning(p: &Pipeline) -> Table {
    let candidates: Vec<f64> = (1..=12).map(|i| f64::from(i) * 0.05).collect();
    let mut t = Table::new(
        "ablation-delta-tuning",
        "fixed δ=0.10 vs per-benchmark δ tuned for ρ ≥ 90%",
        &["Benchmark", "fixed π/ρ", "tuned δ", "tuned π/ρ"],
    );
    let mut acc = [vec![], vec![], vec![], vec![]];
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        let eval = |delta: f64| -> (f64, f64) {
            let h = Heuristic::default().with_threshold(delta);
            let set = delta_h(&run, &h);
            (pi(set.len(), run.lambda()), rho(&run.result, &set))
        };
        let (fp, fr) = eval(0.10);
        // Largest δ (fewest flagged loads) still covering 90%.
        let tuned = candidates
            .iter()
            .copied()
            .filter(|&d| eval(d).1 >= 0.90)
            .fold(0.05, f64::max);
        let (tp, tr) = eval(tuned);
        acc[0].push(fp);
        acc[1].push(fr);
        acc[2].push(tp);
        acc[3].push(tr);
        t.push_row(vec![
            b.name.to_owned(),
            format!("{} / {}", pct(fp, 2), pct(fr, 0)),
            format!("{tuned:.2}"),
            format!("{} / {}", pct(tp, 2), pct(tr, 0)),
        ]);
    }
    t.push_row(vec![
        "AVERAGE".into(),
        format!("{} / {}", pct(avg(&acc[0]), 2), pct(avg(&acc[1]), 2)),
        String::new(),
        format!("{} / {}", pct(avg(&acc[2]), 2), pct(avg(&acc[3]), 2)),
    ]);
    t.set_note(
        "Beyond the paper (§8.6 observes per-benchmark δ is promising). \
         Expected shape: tuning recovers precision on benchmarks whose miss \
         mass sits in high-φ loads, at no coverage cost below the 90% floor.",
    );
    t
}

/// Extension: the paper's motivating application. Attach a next-line
/// prefetcher to different site-selection policies and measure the
/// miss reduction each achieves against the overhead (prefetches
/// issued) it pays.
#[must_use]
pub fn extension_prefetch(p: &Pipeline) -> Table {
    use dl_sim::{run as simulate, PrefetchConfig, RunConfig};
    let h = Heuristic::default();
    let mut t = Table::new(
        "extension-prefetch",
        "next-line prefetching guided by each site-selection policy",
        &[
            "Policy",
            "sites (avg π)",
            "avg miss reduction",
            "prefetches / removed miss",
        ],
    );
    // A miss-heavy subset keeps this table fast while covering the
    // three canonical behaviours (chase, gather, stream).
    let names = ["181.mcf", "183.equake", "179.art", "164.gzip"];
    struct PolicyAcc {
        pis: Vec<f64>,
        reductions: Vec<f64>,
        issued: u64,
        removed: u64,
    }
    let mut accs: Vec<PolicyAcc> = (0..3)
        .map(|_| PolicyAcc {
            pis: vec![],
            reductions: vec![],
            issued: 0,
            removed: 0,
        })
        .collect();
    for name in names {
        let bench = dl_workloads::by_name(name).expect("known benchmark");
        let base = p.run(&bench, OptLevel::O0, 1, CacheConfig::paper_baseline());
        let policies: [(usize, Vec<usize>); 3] = [
            (0, h.predict(base.ctx())),
            (1, profiling_set(base.program(), &base.result, HOT_FRACTION)),
            (2, base.load_indices()),
        ];
        for (slot, sites) in policies {
            let config = RunConfig {
                cache: CacheConfig::paper_baseline(),
                input: bench.input1.clone(),
                prefetch: Some(PrefetchConfig::next_line(sites.clone())),
                ..RunConfig::default()
            };
            let result = simulate(base.program(), &config).expect("benchmark runs");
            let before = base.result.load_misses_total;
            let after = result.load_misses_total;
            let removed = before.saturating_sub(after);
            accs[slot].pis.push(pi(sites.len(), base.lambda()));
            accs[slot]
                .reductions
                .push(removed as f64 / before.max(1) as f64);
            accs[slot].issued += result.prefetches_issued;
            accs[slot].removed += removed;
        }
    }
    for (slot, label) in [(0, "heuristic"), (1, "hot blocks"), (2, "all loads")] {
        let a = &accs[slot];
        t.push_row(vec![
            label.into(),
            pct(avg(&a.pis), 2),
            pct(avg(&a.reductions), 1),
            format!("{:.1}", a.issued as f64 / a.removed.max(1) as f64),
        ]);
    }
    t.set_note(
        "Beyond the paper (its motivation: 'performing a prefetch for every \
         load will be too costly'). Expected shape: the heuristic's sites get \
         nearly the miss reduction of prefetching everything while issuing a \
         small fraction of the prefetches — i.e. far fewer prefetches per \
         removed miss.",
    );
    t
}

/// Extension: the static reuse-distance estimator as a second
/// delinquency predictor, scored alone and hybridized with the
/// heuristic, against the simulated per-load miss ground truth of the
/// same runs the baselines use.
#[must_use]
pub fn extension_reuse(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let cache = CacheConfig::paper_baseline();
    let geometry = CacheGeometry::new(
        u64::from(cache.size_bytes()),
        u64::from(cache.block_bytes()),
        cache.assoc(),
    );
    let reuse = ReusePredictor::new(geometry);
    let inter = Hybrid::new(h.clone(), reuse, HybridMode::Intersect);
    let union = Hybrid::new(h.clone(), reuse, HybridMode::Union);
    let mut t = Table::new(
        "extension-reuse",
        "static reuse-distance estimation as a second predictor (8 KiB baseline)",
        &[
            "Benchmark",
            "heuristic π/ρ",
            "reuse π/ρ",
            "hybrid∩ π/ρ",
            "hybrid∪ π/ρ",
            "OKN π/ρ",
            "BDH π/ρ",
        ],
    );
    let mut acc: Vec<Vec<f64>> = vec![vec![]; 12];
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, cache);
        let sets: Vec<Vec<usize>> = [&h as &dyn Predictor, &reuse, &inter, &union, &Okn, &Bdh]
            .into_iter()
            .map(|pred| pred.predict(run.ctx()))
            .collect();
        let mut cells = vec![b.name.to_owned()];
        for (k, set) in sets.iter().enumerate() {
            let p_val = pi(set.len(), run.lambda());
            let r_val = rho(&run.result, set);
            acc[2 * k].push(p_val);
            acc[2 * k + 1].push(r_val);
            cells.push(format!("{} / {}", pct(p_val, 2), pct(r_val, 0)));
        }
        t.push_row(cells);
    }
    let mut avg_row = vec!["AVERAGE".to_owned()];
    for k in 0..6 {
        avg_row.push(format!(
            "{} / {}",
            pct(avg(&acc[2 * k]), 2),
            pct(avg(&acc[2 * k + 1]), 2)
        ));
    }
    t.push_row(avg_row);
    t.set_note(
        "Beyond the paper. The reuse estimator predicts per-load miss ratios from \
         loop trip counts, strides, and footprints (DESIGN.md, 'Loop & reuse \
         analysis'). Expected shape: reuse alone trades coverage for precision \
         against the pattern heuristic (it abstains on irregular addresses); \
         intersecting the two (hybrid∩) drives π far below either alone (a \
         high-confidence set, at reuse's coverage), and their union beats \
         OKN on both axes — higher ρ at lower π.",
    );
    t
}

/// Extension: the interprocedural reuse-*profile* estimator
/// (per-load reuse-distance histograms, `dl-analysis::profile`)
/// scored per benchmark against the same ground truth as
/// `extension-reuse`, alongside the point-estimate reuse predictor it
/// generalizes.
#[must_use]
pub fn extension_profile(p: &Pipeline) -> Table {
    let h = Heuristic::default();
    let cache = CacheConfig::paper_baseline();
    let geometry = CacheGeometry::new(
        u64::from(cache.size_bytes()),
        u64::from(cache.block_bytes()),
        cache.assoc(),
    );
    let profile = ProfilePredictor::new(geometry);
    let reuse = ReusePredictor::new(geometry);
    let inter = Hybrid::new(h.clone(), profile, HybridMode::Intersect);
    let union = Hybrid::new(h.clone(), profile, HybridMode::Union);
    let mut t = Table::new(
        "extension-profile",
        "static reuse-profile histograms as a predictor (8 KiB baseline)",
        &[
            "Benchmark",
            "heuristic π/ρ",
            "profile π/ρ",
            "hybrid∩ π/ρ",
            "hybrid∪ π/ρ",
            "reuse π/ρ",
            "xproc loads",
        ],
    );
    let mut acc: Vec<Vec<f64>> = vec![vec![]; 10];
    let mut xproc_total = 0usize;
    for b in dl_workloads::all() {
        let run = p.run(&b, OptLevel::O0, 1, cache);
        let sets: Vec<Vec<usize>> = [&h as &dyn Predictor, &profile, &inter, &union, &reuse]
            .into_iter()
            .map(|pred| pred.predict(run.ctx()))
            .collect();
        let xproc = run.ctx().reuse_profiles().interprocedural_count();
        xproc_total += xproc;
        let mut cells = vec![b.name.to_owned()];
        for (k, set) in sets.iter().enumerate() {
            let p_val = pi(set.len(), run.lambda());
            let r_val = rho(&run.result, set);
            acc[2 * k].push(p_val);
            acc[2 * k + 1].push(r_val);
            cells.push(format!("{} / {}", pct(p_val, 2), pct(r_val, 0)));
        }
        cells.push(format!("{xproc}"));
        t.push_row(cells);
    }
    let mut avg_row = vec!["AVERAGE".to_owned()];
    for k in 0..5 {
        avg_row.push(format!(
            "{} / {}",
            pct(avg(&acc[2 * k]), 2),
            pct(avg(&acc[2 * k + 1]), 2)
        ));
    }
    avg_row.push(format!("{xproc_total}"));
    t.push_row(avg_row);
    t.set_note(
        "Beyond the paper. The profile predictor prices each load's static \
         reuse-distance histogram (DESIGN.md, 'Static reuse profiles') against \
         the geometry; 'xproc loads' counts loads whose histogram needed the \
         interprocedural machinery (callee summaries / calling contexts) — \
         loads the intraprocedural reuse model could not see repeat. Expected \
         shape: profile tracks reuse closely at this geometry (same abstention \
         discipline) while additionally covering cross-function loads.",
    );
    t
}

/// Extension: one static analysis, nine geometries. Each benchmark is
/// simulated once with the shadow-LRU reuse measurement; the static
/// histograms and the measured stack distances are then priced
/// against every geometry of the 8–64 KiB × 2/4/8-way sweep with no
/// re-analysis and no re-simulation, next to the true set-associative
/// miss ratio of a real simulation at that geometry.
#[must_use]
pub fn profile_geometries(p: &Pipeline) -> Table {
    use dl_sim::{run_full as simulate_full, RunConfig};
    let mut t = Table::new(
        "profile-geometries",
        "static vs measured reuse-distance miss ratios across 9 geometries",
        &[
            "Geometry",
            "static miss",
            "shadow-LRU miss",
            "sim miss",
            "|static−shadow| wtd",
        ],
    );
    // The canonical behaviours (chase, gather, stream, mixed) keep
    // the table fast; the 18-workload validation test covers the rest.
    let names = ["181.mcf", "183.equake", "179.art", "164.gzip"];
    struct BenchData {
        profiles: dl_analysis::ReuseProfiles,
        measured: dl_sim::ReuseMeasurement,
    }
    let data: Vec<(String, BenchData)> = names
        .iter()
        .map(|name| {
            let bench = dl_workloads::by_name(name).expect("known benchmark");
            let run = p.run(&bench, OptLevel::O0, 1, CacheConfig::paper_baseline());
            let config = RunConfig {
                cache: CacheConfig::paper_baseline(),
                input: bench.input1.clone(),
                reuse_profile: true,
                ..RunConfig::default()
            };
            let out = simulate_full(run.program(), &config).expect("benchmark runs");
            (
                (*name).to_owned(),
                BenchData {
                    profiles: run.ctx().reuse_profiles().clone(),
                    measured: out.reuse.expect("reuse measurement collected"),
                },
            )
        })
        .collect();
    for kb in [8u32, 16, 64] {
        for assoc in [2u32, 4, 8] {
            let cap_blocks = u64::from(kb) * 1024 / 32;
            let geometry = CacheGeometry::new(u64::from(kb) * 1024, 32, assoc);
            let (mut stat, mut shadow, mut sim, mut err) = (vec![], vec![], vec![], vec![]);
            for (name, d) in &data {
                let bench = dl_workloads::by_name(name).expect("known benchmark");
                let real = p.run(&bench, OptLevel::O0, 1, CacheConfig::kb(kb, assoc));
                sim.push(real.result.load_misses_total as f64 / real.result.loads.max(1) as f64);
                shadow.push(d.measured.aggregate_miss_ratio(cap_blocks));
                // Static per-load ratios, weighted by the measured
                // access counts so both aggregates use one scale;
                // abstained loads are excluded from both sides.
                let (mut s_num, mut e_num, mut den) = (0.0f64, 0.0f64, 0u64);
                for pred in d.profiles.predict(&geometry) {
                    if pred.abstained {
                        continue;
                    }
                    let site = d.measured.site(pred.index);
                    let n = site.total();
                    if n == 0 {
                        continue;
                    }
                    s_num += pred.miss_ratio * n as f64;
                    e_num += (pred.miss_ratio - site.miss_ratio(cap_blocks)).abs() * n as f64;
                    den += n;
                }
                stat.push(s_num / den.max(1) as f64);
                err.push(e_num / den.max(1) as f64);
            }
            t.push_row(vec![
                format!("{kb}KB/{assoc}-way"),
                pct(avg(&stat), 2),
                pct(avg(&shadow), 2),
                pct(avg(&sim), 2),
                pct(avg(&err), 2),
            ]);
        }
    }
    t.set_note(
        "Beyond the paper. One histogram per load prices every geometry: the \
         'static' and 'shadow-LRU' columns re-use a single analysis and a \
         single instrumented simulation across all nine rows. The stack- \
         distance model is associativity-blind (fully-associative LRU), so \
         those columns vary only with capacity; the 'sim miss' column is the \
         real set-associative simulator at each geometry. Expected shape: \
         static tracks shadow-LRU within a few points (weighted |Δ| column), \
         and both bracket the set-associative truth.",
    );
    t
}

/// The workloads the memory-system matrix sweeps: the three extension
/// access-pattern families (B-tree lookups, hash join, BFS over CSR)
/// plus two canonical paper behaviours (pointer chase, hash probes)
/// as anchors.
#[must_use]
pub fn memmatrix_benches() -> Vec<&'static str> {
    vec![
        "ext.btree",
        "ext.hashjoin",
        "ext.bfs",
        "181.mcf",
        "129.compress",
    ]
}

/// The policy × hierarchy × prefetch grid behind
/// `extension-memmatrix`: every replacement policy with and without an
/// inclusive 64 KiB 8-way L2 and with and without a degree-2 stride
/// prefetcher, plus the exclusive-L2 pair under LRU — 14
/// configurations, the first of which is the paper default (LRU,
/// L1-only, no prefetch) shared with every other table.
#[must_use]
pub fn memmatrix_configs() -> Vec<MemoryConfig> {
    let mut v = Vec::new();
    for policy in [Policy::Lru, Policy::Plru, Policy::Random] {
        for l2 in [None, Some(L2Config::kb(64, 8, Inclusion::Inclusive))] {
            for prefetch in [None, Some(StridePrefetchConfig::degree(2))] {
                v.push(MemoryConfig {
                    policy,
                    l2,
                    prefetch,
                });
            }
        }
    }
    for prefetch in [None, Some(StridePrefetchConfig::degree(2))] {
        v.push(MemoryConfig {
            policy: Policy::Lru,
            l2: Some(L2Config::kb(64, 8, Inclusion::Exclusive)),
            prefetch,
        });
    }
    v
}

/// The static load with the most misses — the head of the delinquency
/// ranking — or `None` when nothing missed. Ties break to the lowest
/// instruction index so the reference is deterministic.
fn top_site(result: &dl_sim::RunResult) -> Option<usize> {
    result
        .load_misses
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m > 0)
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

/// Extension: delinquency across the memory-system matrix. Each row is
/// one memory system (replacement policy / optional L2 / stride
/// prefetcher) over the five matrix workloads; columns report the
/// aggregate load-miss ratio, the share of would-be misses the
/// prefetcher hid, and every predictor's π/ρ against that system's
/// per-load miss ground truth.
#[must_use]
pub fn extension_memmatrix(p: &Pipeline) -> Table {
    let cache = CacheConfig::paper_baseline();
    let geometry = CacheGeometry::new(
        u64::from(cache.size_bytes()),
        u64::from(cache.block_bytes()),
        cache.assoc(),
    );
    let h = Heuristic::default();
    let profile = ProfilePredictor::new(geometry);
    let reuse = ReusePredictor::new(geometry);
    let inter = Hybrid::new(h.clone(), profile, HybridMode::Intersect);
    let union = Hybrid::new(h.clone(), profile, HybridMode::Union);
    let mut t = Table::new(
        "extension-memmatrix",
        "delinquency across the memory-system matrix (8 KiB L1)",
        &[
            "Memory system",
            "load miss",
            "pf hidden",
            "heuristic π/ρ",
            "OKN π/ρ",
            "BDH π/ρ",
            "reuse π/ρ",
            "profile π/ρ",
            "hybrid∩ π/ρ",
            "hybrid∪ π/ρ",
            "top moved",
        ],
    );
    let benches: Vec<Benchmark> = memmatrix_benches()
        .into_iter()
        .map(|n| dl_workloads::by_name(n).expect("known benchmark"))
        .collect();
    // Predictor sets are static — the profile they consume (execution
    // counts) is identical under every memory system — so compute them
    // once per benchmark from the default-configuration run, along
    // with that run's top miss site as the ranking reference.
    let preds: [&dyn Predictor; 7] = [&h, &Okn, &Bdh, &reuse, &profile, &inter, &union];
    let baseline_runs: Vec<Arc<BenchRun>> = benches
        .iter()
        .map(|b| p.run_mem(b, OptLevel::O0, 1, cache, MemoryConfig::default()))
        .collect();
    let sets: Vec<Vec<Vec<usize>>> = baseline_runs
        .iter()
        .map(|run| preds.iter().map(|pred| pred.predict(run.ctx())).collect())
        .collect();
    let top_ref: Vec<Option<usize>> = baseline_runs.iter().map(|r| top_site(&r.result)).collect();
    for memory in memmatrix_configs() {
        let (mut miss, mut hidden) = (vec![], vec![]);
        let mut pis: Vec<Vec<f64>> = vec![vec![]; preds.len()];
        let mut rhos: Vec<Vec<f64>> = vec![vec![]; preds.len()];
        let mut moved = 0usize;
        for (bi, b) in benches.iter().enumerate() {
            let run = p.run_mem(b, OptLevel::O0, 1, cache, memory);
            miss.push(run.result.load_misses_total as f64 / run.result.loads.max(1) as f64);
            let would_miss = run.result.dcache_misses + run.result.prefetch_useful;
            hidden.push(run.result.prefetch_useful as f64 / would_miss.max(1) as f64);
            for (k, set) in sets[bi].iter().enumerate() {
                pis[k].push(pi(set.len(), run.lambda()));
                rhos[k].push(rho(&run.result, set));
            }
            if top_site(&run.result) != top_ref[bi] {
                moved += 1;
            }
        }
        let mut cells = vec![memory.to_string(), pct(avg(&miss), 2), pct(avg(&hidden), 1)];
        for k in 0..preds.len() {
            cells.push(format!(
                "{} / {}",
                pct(avg(&pis[k]), 2),
                pct(avg(&rhos[k]), 1)
            ));
        }
        cells.push(format!("{moved}/{}", benches.len()));
        t.push_row(cells);
    }
    t.set_note(
        "Beyond the paper. π is constant down each column because every \
         predictor is static — only the ground truth moves. The reuse and \
         profile predictors price a fully-associative LRU model, so their ρ \
         degrading under plru/random is the model divergence DESIGN.md \
         documents, not a bug. 'pf hidden' is the share of would-be demand \
         misses the stride prefetcher converted to hits; 'top moved' counts \
         workloads whose single most delinquent load differs from the \
         default system's — non-zero prefetch rows mean the ranking a \
         compiler should target depends on the memory system it compiles \
         for.",
    );
    t
}

/// A table generator function.
pub type TableFn = fn(&Pipeline) -> Table;

/// Every table generator, in order, with ablations at the end.
#[must_use]
pub fn all_tables() -> Vec<(&'static str, TableFn)> {
    vec![
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("table4", table4),
        ("table5", table5),
        ("table6", table6),
        ("table7", table7),
        ("table8", table8),
        ("table9", table9),
        ("table10", table10),
        ("table11", table11),
        ("table12", table12),
        ("table13", table13),
        ("table14", table14),
        ("ablation-classes", ablation_classes),
        ("ablation-patterns", ablation_patterns),
        ("extension-static-frequency", extension_static_frequency),
        ("extension-prefetch", extension_prefetch),
        ("extension-reuse", extension_reuse),
        ("extension-profile", extension_profile),
        ("extension-memmatrix", extension_memmatrix),
        ("profile-geometries", profile_geometries),
        ("ablation-profile-fidelity", ablation_profile_fidelity),
        ("ablation-delta-tuning", ablation_delta_tuning),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_registry_names_are_unique_and_well_formed() {
        let tables = all_tables();
        let mut names: Vec<&str> = tables.iter().map(|(n, _)| *n).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate table names");
        // Tables 1-14 are all present.
        for i in 1..=14 {
            assert!(
                names.contains(&format!("table{i}").as_str()),
                "table{i} missing from registry"
            );
        }
    }

    #[test]
    fn table6_is_metadata_only() {
        // Table 6 needs no simulation: it must not touch the pipeline.
        let p = Pipeline::new();
        let t = table6(&p);
        assert_eq!(p.simulations(), 0);
        assert_eq!(t.rows.len(), 18);
        assert!(t.to_markdown().contains("181.mcf"));
    }

    #[test]
    fn averages_helper() {
        assert_eq!(avg(&[]), 0.0);
        assert!((avg(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memmatrix_grid_shape() {
        let configs = memmatrix_configs();
        assert!(configs.len() >= 12, "matrix must span at least 12 configs");
        assert_eq!(configs[0], MemoryConfig::default());
        let labels: std::collections::HashSet<String> =
            configs.iter().map(ToString::to_string).collect();
        assert_eq!(labels.len(), configs.len(), "duplicate matrix configs");
        for name in memmatrix_benches() {
            assert!(dl_workloads::by_name(name).is_some(), "{name} unknown");
        }
    }

    /// The acceptance demonstration: enabling the stride prefetcher
    /// must demonstrably reorder the delinquency ranking of at least
    /// one matrix workload — the streaming half of its misses is
    /// hidden, so a scatter-dominated site takes over the top of the
    /// list the compiler would target.
    #[test]
    fn prefetcher_shifts_the_delinquency_ranking() {
        let p = Pipeline::new();
        let cache = CacheConfig::paper_baseline();
        let pf = MemoryConfig {
            prefetch: Some(StridePrefetchConfig::degree(2)),
            ..MemoryConfig::default()
        };
        let ranking = |result: &dl_sim::RunResult| -> Vec<usize> {
            let mut sites: Vec<(usize, u64)> = result
                .load_misses
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, m)| m > 0)
                .collect();
            sites.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            sites.into_iter().take(3).map(|(i, _)| i).collect()
        };
        let shifted = memmatrix_benches().into_iter().any(|name| {
            let b = dl_workloads::by_name(name).expect("known benchmark");
            let base = p.run_mem(&b, OptLevel::O0, 1, cache, MemoryConfig::default());
            let with_pf = p.run_mem(&b, OptLevel::O0, 1, cache, pf);
            assert!(
                with_pf.result.prefetch_fills > 0,
                "{name}: prefetcher never fired"
            );
            ranking(&base.result) != ranking(&with_pf.result)
        });
        assert!(
            shifted,
            "no matrix workload's top-3 delinquent loads moved under prefetching"
        );
    }

    /// Two fresh pipelines must render byte-identical memmatrix tables:
    /// the random replacement policy is seeded from the run
    /// configuration, never from ambient entropy, so the sweep is
    /// reproducible run to run (and, via the ci.sh gate, across
    /// engines and worker counts).
    #[test]
    fn memmatrix_table_is_deterministic() {
        let render = || {
            let p = Pipeline::new();
            let mut specs = crate::schedule::table_specs("extension-memmatrix");
            for spec in &mut specs {
                for v in spec
                    .bench
                    .input1
                    .iter_mut()
                    .chain(spec.bench.input2.iter_mut())
                {
                    *v = (*v).clamp(1, 64);
                }
            }
            crate::schedule::prewarm(&p, &specs, 4);
            extension_memmatrix(&p).to_markdown()
        };
        let first = render();
        assert_eq!(first, render());
        assert!(first.contains("plru+l2:64KB-8w-incl+pf2"));
        assert!(first.contains("random"));
    }
}
