//! The compile → simulate → analyze pipeline, memoized per
//! (benchmark, optimization level, input set, cache geometry).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dl_analysis::extract::{analyze_program, AnalysisConfig, ProgramAnalysis};
use dl_minic::OptLevel;
use dl_mips::program::Program;
use dl_sim::{run as simulate, CacheConfig, RunConfig, RunResult};
use dl_workloads::Benchmark;

/// Everything produced by one end-to-end benchmark run.
#[derive(Debug)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: String,
    /// The compiled program.
    pub program: Program,
    /// Address-pattern analysis of every static load.
    pub analysis: ProgramAnalysis,
    /// Simulation measurements.
    pub result: RunResult,
}

impl BenchRun {
    /// Λ — the number of static load instructions.
    #[must_use]
    pub fn lambda(&self) -> usize {
        self.analysis.loads.len()
    }

    /// Instruction indices of all static loads.
    #[must_use]
    pub fn load_indices(&self) -> Vec<usize> {
        self.analysis.loads.iter().map(|l| l.index).collect()
    }
}

type Key = (String, OptLevel, u8, CacheConfig);

/// Memoizing pipeline executor.
///
/// Compilation + analysis are shared across cache geometries for the
/// same `(benchmark, opt, input)`; simulation results are cached per
/// full key, so tables that share configurations do not re-simulate.
#[derive(Debug, Default)]
pub struct Pipeline {
    runs: RefCell<HashMap<Key, Rc<BenchRun>>>,
}

impl Pipeline {
    /// Creates an empty pipeline cache.
    #[must_use]
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Runs (or returns the memoized run of) one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark fails to compile or traps during
    /// simulation — both indicate bugs in the bundled workloads and
    /// are covered by tests.
    #[must_use]
    pub fn run(
        &self,
        bench: &Benchmark,
        opt: OptLevel,
        input_set: u8,
        cache: CacheConfig,
    ) -> Rc<BenchRun> {
        let key = (bench.name.to_owned(), opt, input_set, cache);
        if let Some(hit) = self.runs.borrow().get(&key) {
            return Rc::clone(hit);
        }
        let program = bench
            .compile(opt)
            .unwrap_or_else(|e| panic!("{} does not compile at {opt}: {e}", bench.name));
        let analysis = analyze_program(&program, &AnalysisConfig::default());
        let config = RunConfig {
            cache,
            input: bench.input(input_set).to_vec(),
            ..RunConfig::default()
        };
        let result = simulate(&program, &config)
            .unwrap_or_else(|e| panic!("{} trapped at {opt}: {e}", bench.name));
        let run = Rc::new(BenchRun {
            name: bench.name.to_owned(),
            program,
            analysis,
            result,
        });
        self.runs.borrow_mut().insert(key, Rc::clone(&run));
        run
    }

    /// Number of distinct simulations performed so far.
    #[must_use]
    pub fn simulations(&self) -> usize {
        self.runs.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_shares_runs() {
        let p = Pipeline::new();
        // A small benchmark keeps the test fast.
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let r1 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let r2 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        assert!(Rc::ptr_eq(&r1, &r2));
        assert_eq!(p.simulations(), 1);
        let r3 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        assert!(!Rc::ptr_eq(&r1, &r3));
        assert_eq!(p.simulations(), 2);
    }

    #[test]
    fn run_produces_consistent_views() {
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("129.compress").expect("exists");
        b.input1 = vec![2000, 3];
        let r = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        assert_eq!(r.lambda(), r.program.static_load_count());
        assert_eq!(r.result.exec_counts.len(), r.program.insts.len());
        assert!(r.result.instructions > 0);
    }
}
