//! The compile → simulate → analyze pipeline, memoized per
//! (benchmark, optimization level, input set, cache geometry).
//!
//! The memo table is thread-safe: any number of threads may call
//! [`Pipeline::run`] concurrently. Requests for the same key are
//! deduplicated *in flight* — the first thread to claim a key runs the
//! simulation while every other thread requesting it blocks on a
//! condition variable and receives the shared result, so a
//! configuration is simulated exactly once no matter how many threads
//! race for it.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use dl_analysis::extract::{analyze_program, AnalysisConfig, ProgramAnalysis};
use dl_minic::OptLevel;
use dl_mips::program::Program;
use dl_sim::{run as simulate, CacheConfig, RunConfig, RunResult};
use dl_workloads::Benchmark;

/// Everything produced by one end-to-end benchmark run.
#[derive(Debug)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: String,
    /// The compiled program.
    pub program: Program,
    /// Address-pattern analysis of every static load.
    pub analysis: ProgramAnalysis,
    /// Simulation measurements.
    pub result: RunResult,
}

impl BenchRun {
    /// Λ — the number of static load instructions.
    #[must_use]
    pub fn lambda(&self) -> usize {
        self.analysis.loads.len()
    }

    /// Instruction indices of all static loads.
    #[must_use]
    pub fn load_indices(&self) -> Vec<usize> {
        self.analysis.loads.iter().map(|l| l.index).collect()
    }
}

type Key = (String, OptLevel, u8, CacheConfig);

/// State of one memo-table entry.
#[derive(Debug)]
enum Slot {
    /// A thread is currently computing this configuration.
    InFlight,
    /// The finished run, shared by every requester.
    Ready(Arc<BenchRun>),
}

/// Removes an in-flight claim if the owning thread unwinds, so
/// waiters wake up and one of them re-claims the key instead of
/// deadlocking.
struct InFlightGuard<'a> {
    pipeline: &'a Pipeline,
    key: Key,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut runs = self.pipeline.runs.lock().expect("pipeline lock");
            if matches!(runs.get(&self.key), Some(Slot::InFlight)) {
                runs.remove(&self.key);
            }
            drop(runs);
            self.pipeline.ready.notify_all();
        }
    }
}

/// Memoizing, thread-safe pipeline executor.
///
/// Compilation + analysis are shared across cache geometries for the
/// same `(benchmark, opt, input)`; simulation results are cached per
/// full key, so tables that share configurations do not re-simulate.
/// Concurrent requests for the same key block until the single
/// in-flight computation finishes and then share its result.
#[derive(Debug, Default)]
pub struct Pipeline {
    runs: Mutex<HashMap<Key, Slot>>,
    ready: Condvar,
}

impl Pipeline {
    /// Creates an empty pipeline cache.
    #[must_use]
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Runs (or returns the memoized run of) one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark fails to compile or traps during
    /// simulation — both indicate bugs in the bundled workloads and
    /// are covered by tests. A panic releases the in-flight claim so
    /// concurrent waiters do not deadlock.
    #[must_use]
    pub fn run(
        &self,
        bench: &Benchmark,
        opt: OptLevel,
        input_set: u8,
        cache: CacheConfig,
    ) -> Arc<BenchRun> {
        let key: Key = (bench.name.to_owned(), opt, input_set, cache);
        {
            let mut runs = self.runs.lock().expect("pipeline lock");
            loop {
                match runs.get(&key) {
                    Some(Slot::Ready(run)) => return Arc::clone(run),
                    Some(Slot::InFlight) => {
                        // Another thread is computing this key; wait
                        // for it to finish (or unwind) and re-check.
                        runs = self.ready.wait(runs).expect("pipeline lock");
                    }
                    None => {
                        runs.insert(key.clone(), Slot::InFlight);
                        break;
                    }
                }
            }
        }
        // We own the in-flight claim; compute outside the lock.
        let mut guard = InFlightGuard {
            pipeline: self,
            key: key.clone(),
            armed: true,
        };
        let run = Arc::new(self.compute(bench, opt, input_set, cache));
        guard.armed = false;
        let mut runs = self.runs.lock().expect("pipeline lock");
        runs.insert(key, Slot::Ready(Arc::clone(&run)));
        drop(runs);
        self.ready.notify_all();
        run
    }

    /// The uncached compile → analyze → simulate path.
    fn compute(
        &self,
        bench: &Benchmark,
        opt: OptLevel,
        input_set: u8,
        cache: CacheConfig,
    ) -> BenchRun {
        let program = bench
            .compile(opt)
            .unwrap_or_else(|e| panic!("{} does not compile at {opt}: {e}", bench.name));
        let analysis = analyze_program(&program, &AnalysisConfig::default());
        let config = RunConfig {
            cache,
            input: bench.input(input_set).to_vec(),
            ..RunConfig::default()
        };
        let result = simulate(&program, &config)
            .unwrap_or_else(|e| panic!("{} trapped at {opt}: {e}", bench.name));
        BenchRun {
            name: bench.name.to_owned(),
            program,
            analysis,
            result,
        }
    }

    /// Number of distinct simulations completed so far.
    #[must_use]
    pub fn simulations(&self) -> usize {
        self.runs
            .lock()
            .expect("pipeline lock")
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_shares_runs() {
        let p = Pipeline::new();
        // A small benchmark keeps the test fast.
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let r1 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let r2 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(p.simulations(), 1);
        let r3 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        assert!(!Arc::ptr_eq(&r1, &r3));
        assert_eq!(p.simulations(), 2);
    }

    #[test]
    fn run_produces_consistent_views() {
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("129.compress").expect("exists");
        b.input1 = vec![2000, 3];
        let r = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        assert_eq!(r.lambda(), r.program.static_load_count());
        assert_eq!(r.result.exec_counts.len(), r.program.insts.len());
        assert!(r.result.instructions > 0);
    }

    #[test]
    fn racing_threads_share_one_simulation() {
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let p = &p;
                    let b = &b;
                    scope.spawn(move || p.run(b, OptLevel::O0, 1, CacheConfig::paper_training()))
                })
                .collect();
            let runs: Vec<Arc<BenchRun>> = handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect();
            for pair in runs.windows(2) {
                assert!(Arc::ptr_eq(&pair[0], &pair[1]));
            }
        });
        assert_eq!(p.simulations(), 1);
    }

    #[test]
    fn panic_releases_in_flight_claim() {
        let p = Pipeline::new();
        // A benchmark guaranteed to fail: nonexistent source.
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.name = "bogus";
        b.source = "int main( {";
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        }));
        assert!(result.is_err());
        // The claim must be gone: a fresh (valid) run on the same key
        // shape must not deadlock, and the table holds no ready entry.
        assert_eq!(p.simulations(), 0);
        let good = dl_workloads::by_name("197.parser").expect("exists");
        let mut good = good;
        good.input1 = vec![500, 2];
        let _ = p.run(&good, OptLevel::O0, 1, CacheConfig::paper_training());
        assert_eq!(p.simulations(), 1);
    }
}
