//! The compile → simulate → analyze pipeline, memoized per
//! (benchmark, optimization level, input set, cache geometry).
//!
//! The memo table is thread-safe and **sharded**: keys hash to one of
//! [`SHARDS`] independent `Mutex<HashMap>` shards, so concurrent
//! requests for different configurations never contend on a single
//! global lock. Requests for the same key are deduplicated *in
//! flight* — the first thread to claim a key runs the simulation while
//! every other thread requesting it blocks on that shard's condition
//! variable and receives the shared result, so a configuration is
//! simulated exactly once no matter how many threads race for it.
//!
//! Compilation and analysis are additionally memoized per
//! `(benchmark, opt)` — independent of input set and cache geometry —
//! so sweeping four cache sizes over one benchmark compiles it once.
//!
//! Every table-generation PR to come needs to see inside this machine,
//! so the pipeline self-reports: memo hit/miss/wait counters
//! ([`Pipeline::stats`]), per-configuration compile and simulation
//! wall times ([`Pipeline::config_timings`]), and — when
//! [`Pipeline::set_classify_misses`] is enabled — the simulator's
//! miss-class breakdown on every run it computes.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use dl_analysis::ctx::{AnalysisCtx, CtxStats};
use dl_analysis::extract::ProgramAnalysis;
use dl_minic::OptLevel;
use dl_mips::program::Program;
use dl_obs::Spans;
use dl_sim::{
    run_with_stats, BlockStats, CacheConfig, Engine, MemoryConfig, ObserveConfig, RunConfig,
    RunResult,
};
use dl_workloads::Benchmark;

use crate::obs::SpanPassObserver;

/// Number of memo-table shards. A small power of two: plenty to spread
/// ~100 configurations across worker threads without measurable memory
/// cost.
pub const SHARDS: usize = 16;

/// Everything produced by one end-to-end benchmark run.
#[derive(Debug)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: String,
    /// The shared analysis context of the compiled program, with this
    /// run's execution counts attached as its profile. Clones of the
    /// pipeline's per-`(bench, opt)` ctx: every run of the same
    /// compilation shares one set of pass caches.
    ctx: AnalysisCtx,
    /// Simulation measurements.
    pub result: RunResult,
}

impl BenchRun {
    /// The run's analysis context: every analysis of the compiled
    /// program, lazily computed and shared across runs, with this
    /// run's execution counts attached.
    #[must_use]
    pub fn ctx(&self) -> &AnalysisCtx {
        &self.ctx
    }

    /// The compiled program.
    #[must_use]
    pub fn program(&self) -> &Program {
        self.ctx.program()
    }

    /// Address-pattern analysis of every static load.
    #[must_use]
    pub fn analysis(&self) -> &ProgramAnalysis {
        self.ctx.analysis()
    }

    /// Λ — the number of static load instructions.
    #[must_use]
    pub fn lambda(&self) -> usize {
        self.analysis().loads.len()
    }

    /// Instruction indices of all static loads.
    #[must_use]
    pub fn load_indices(&self) -> Vec<usize> {
        self.analysis().loads.iter().map(|l| l.index).collect()
    }
}

type Key = (String, OptLevel, u8, CacheConfig, MemoryConfig);

/// State of one memo-table entry.
#[derive(Debug)]
enum Slot {
    /// A thread is currently computing this configuration.
    InFlight,
    /// The finished run, shared by every requester.
    Ready(Arc<BenchRun>),
}

/// One shard of the memo table: its own map and its own wakeup
/// channel for in-flight waiters.
#[derive(Debug, Default)]
struct Shard {
    runs: Mutex<HashMap<Key, Slot>>,
    ready: Condvar,
}

/// Removes an in-flight claim if the owning thread unwinds, so
/// waiters wake up and one of them re-claims the key instead of
/// deadlocking.
struct InFlightGuard<'a> {
    shard: &'a Shard,
    key: Key,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut runs = self.shard.runs.lock().expect("pipeline lock");
            if matches!(runs.get(&self.key), Some(Slot::InFlight)) {
                runs.remove(&self.key);
            }
            drop(runs);
            self.shard.ready.notify_all();
        }
    }
}

/// Snapshot of the pipeline's memo-table counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Requests served from a ready memo entry.
    pub hits: u64,
    /// Requests that computed a new entry (distinct simulations).
    pub misses: u64,
    /// Requests that blocked on another thread's in-flight computation.
    pub waits: u64,
    /// Compile requests served from the compile cache.
    pub compile_hits: u64,
    /// Compilations actually performed.
    pub compile_misses: u64,
    /// Total instructions executed across all computed simulations.
    pub sim_instructions: u64,
    /// Block-cache counters merged over every computed simulation
    /// (all zero when simulations ran under [`Engine::Step`]).
    pub block: BlockStats,
}

impl MemoStats {
    /// Fraction of run requests served without simulating, or 0 with
    /// no traffic.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Wall-clock record of one computed configuration.
#[derive(Debug, Clone)]
pub struct ConfigTiming {
    /// Benchmark name.
    pub bench: String,
    /// Optimization level.
    pub opt: OptLevel,
    /// Input set.
    pub input_set: u8,
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Memory-system configuration (policy / L2 / prefetch).
    pub memory: MemoryConfig,
    /// Seconds spent compiling + analyzing (0 on a compile-cache hit).
    pub compile_secs: f64,
    /// Seconds spent simulating.
    pub sim_secs: f64,
    /// Instructions the simulation executed.
    pub instructions: u64,
}

impl ConfigTiming {
    /// A compact human label, e.g. `181.mcf/O0/in1/8KB 4-way 32B-block`.
    /// A non-default memory system appends its own segment, e.g.
    /// `…/32B-block/plru+l2:64KB-8w-incl`, so the paper-reproduction
    /// labels stay byte-identical.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}/{}/in{}/{}",
            self.bench, self.opt, self.input_set, self.cache
        );
        if !self.memory.is_default() {
            s.push('/');
            s.push_str(&self.memory.to_string());
        }
        s
    }
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    sim_instructions: AtomicU64,
}

/// Memoizing, thread-safe pipeline executor.
///
/// Compilation + analysis are shared across input sets and cache
/// geometries for the same `(benchmark, opt)`; simulation results are
/// cached per full key, so tables that share configurations do not
/// re-simulate. Concurrent requests for the same key block until the
/// single in-flight computation finishes and then share its result.
#[derive(Debug)]
pub struct Pipeline {
    shards: Vec<Shard>,
    /// One analysis context per `(bench, opt)`: the 99-configuration
    /// sweep analyzes each of its programs exactly once, no matter how
    /// many input sets, cache geometries, or predictors consume them.
    compiled: Mutex<HashMap<(String, OptLevel), AnalysisCtx>>,
    counters: Counters,
    timings: Mutex<Vec<ConfigTiming>>,
    classify: AtomicBool,
    engine: Mutex<Engine>,
    /// Block-cache counters merged over every computed simulation
    /// (all zero under [`Engine::Step`]).
    block_stats: Mutex<BlockStats>,
    /// When set, every computed compile and simulation records a
    /// timestamped span here (and new analysis contexts forward their
    /// pass computations), so `--trace-out` can lay the whole pipeline
    /// out on one timeline. `None` (the default) records nothing.
    trace: Mutex<Option<Arc<Spans>>>,
    /// When set, every simulation runs with the per-load-site miss
    /// observatory enabled. `None` (the default) keeps the fast path.
    observe: Mutex<Option<ObserveConfig>>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            compiled: Mutex::default(),
            counters: Counters::default(),
            timings: Mutex::default(),
            classify: AtomicBool::new(false),
            engine: Mutex::new(Engine::from_env()),
            block_stats: Mutex::default(),
            trace: Mutex::new(None),
            observe: Mutex::new(None),
        }
    }
}

impl Pipeline {
    /// Creates an empty pipeline cache.
    #[must_use]
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Enables miss classification (compulsory/capacity/conflict and
    /// per-set histograms) on every simulation this pipeline computes
    /// *from now on*. Set it before the first [`Pipeline::run`]:
    /// memoized entries keep whatever setting they were computed
    /// under. Classification never changes hit/miss counts, so table
    /// output is identical either way.
    pub fn set_classify_misses(&self, on: bool) {
        self.classify.store(on, Ordering::Relaxed);
    }

    /// Selects the simulator engine for every simulation this pipeline
    /// computes *from now on* (memoized entries keep the engine they
    /// were computed under — both produce identical results, so mixing
    /// is safe). Defaults to `DL_SIM_ENGINE` / [`Engine::Block`].
    ///
    /// # Panics
    ///
    /// Panics if the engine lock is poisoned.
    pub fn set_engine(&self, engine: Engine) {
        *self.engine.lock().expect("engine lock") = engine;
    }

    /// The engine new simulations run under.
    ///
    /// # Panics
    ///
    /// Panics if the engine lock is poisoned.
    #[must_use]
    pub fn engine(&self) -> Engine {
        *self.engine.lock().expect("engine lock")
    }

    /// Attaches a span collector that receives a timestamped span for
    /// every compile (`compile/<bench>/<opt>`), every analysis pass a
    /// new context computes (`analysis/<bench>/<opt>/<pass>`), and
    /// every simulation (`sim/<label>`) this pipeline computes *from
    /// now on*. Memoized entries recorded nothing retroactively.
    /// Spans arrive in completion order from whichever worker thread
    /// computed them — a timeline, not a deterministic artifact.
    ///
    /// # Panics
    ///
    /// Panics if the trace lock is poisoned.
    pub fn set_trace_spans(&self, spans: Arc<Spans>) {
        *self.trace.lock().expect("trace lock") = Some(spans);
    }

    fn trace_spans(&self) -> Option<Arc<Spans>> {
        self.trace.lock().expect("trace lock").clone()
    }

    /// Enables the simulator's per-load-site miss observatory on every
    /// simulation this pipeline computes *from now on* (memoized
    /// entries keep whatever setting they were computed under). The
    /// windowed data itself is surfaced by `dlc top`; through the
    /// pipeline the toggle exists so the zero-overhead suite can prove
    /// observing changes no table byte. Observation rides the block
    /// engine's instrumented slow path and never changes hit/miss
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if the observe lock is poisoned.
    pub fn set_observe(&self, config: Option<ObserveConfig>) {
        *self.observe.lock().expect("observe lock") = config;
    }

    fn shard_of(&self, key: &Key) -> &Shard {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Runs (or returns the memoized run of) one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark fails to compile or traps during
    /// simulation — both indicate bugs in the bundled workloads and
    /// are covered by tests. A panic releases the in-flight claim so
    /// concurrent waiters do not deadlock.
    #[must_use]
    pub fn run(
        &self,
        bench: &Benchmark,
        opt: OptLevel,
        input_set: u8,
        cache: CacheConfig,
    ) -> Arc<BenchRun> {
        self.run_mem(bench, opt, input_set, cache, MemoryConfig::default())
    }

    /// Runs (or returns the memoized run of) one configuration under an
    /// explicit memory system — replacement policy, optional L2, and
    /// stride prefetcher. [`Pipeline::run`] is this with the default
    /// (LRU, L1-only, no prefetch), so the memmatrix sweep shares the
    /// memo table — and the compile cache — with every other table.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark fails to compile or traps during
    /// simulation — both indicate bugs in the bundled workloads and
    /// are covered by tests. A panic releases the in-flight claim so
    /// concurrent waiters do not deadlock.
    #[must_use]
    pub fn run_mem(
        &self,
        bench: &Benchmark,
        opt: OptLevel,
        input_set: u8,
        cache: CacheConfig,
        memory: MemoryConfig,
    ) -> Arc<BenchRun> {
        let key: Key = (bench.name.to_owned(), opt, input_set, cache, memory);
        let shard = self.shard_of(&key);
        {
            let mut waited = false;
            let mut runs = shard.runs.lock().expect("pipeline lock");
            loop {
                match runs.get(&key) {
                    Some(Slot::Ready(run)) => {
                        self.counters.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(run);
                    }
                    Some(Slot::InFlight) => {
                        // Another thread is computing this key; wait
                        // for it to finish (or unwind) and re-check.
                        if !waited {
                            waited = true;
                            self.counters.waits.fetch_add(1, Ordering::Relaxed);
                        }
                        runs = shard.ready.wait(runs).expect("pipeline lock");
                    }
                    None => {
                        runs.insert(key.clone(), Slot::InFlight);
                        break;
                    }
                }
            }
        }
        // We own the in-flight claim; compute outside the lock.
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = InFlightGuard {
            shard,
            key: key.clone(),
            armed: true,
        };
        let run = Arc::new(self.compute(bench, opt, input_set, cache, memory));
        guard.armed = false;
        let mut runs = shard.runs.lock().expect("pipeline lock");
        runs.insert(key, Slot::Ready(Arc::clone(&run)));
        drop(runs);
        shard.ready.notify_all();
        run
    }

    /// Compiles and analyzes `bench` at `opt`, memoized per
    /// `(name, opt)`. Racing compiles of the same key may both do the
    /// work (compilation is pure and cheap next to simulation); the
    /// first insertion wins so every caller shares one ctx — and with
    /// it one set of pass caches.
    fn compiled_for(&self, bench: &Benchmark, opt: OptLevel) -> (AnalysisCtx, f64) {
        let key = (bench.name.to_owned(), opt);
        if let Some(hit) = self.compiled.lock().expect("compile lock").get(&key) {
            self.counters.compile_hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), 0.0);
        }
        let start = Instant::now();
        let program = bench
            .compile(opt)
            .unwrap_or_else(|e| panic!("{} does not compile at {opt}: {e}", bench.name));
        // Debug builds verify every compiled program before analysis;
        // a codegen bug should fail loudly here, not as mysterious
        // simulator output three layers down.
        #[cfg(debug_assertions)]
        if let Err(violations) = dl_mips::verify::verify_program(&program) {
            let detail: Vec<String> = violations.iter().map(ToString::to_string).collect();
            panic!(
                "{} at {opt} failed assembly verification: {}",
                bench.name,
                detail.join("; ")
            );
        }
        let ctx = AnalysisCtx::new(program);
        if let Some(spans) = self.trace_spans() {
            ctx.set_pass_observer(Arc::new(SpanPassObserver::new(
                spans,
                format!("analysis/{}/{opt}", bench.name),
            )));
        }
        // Force pattern extraction eagerly: prewarm worker threads
        // parallelize it here, and `compile_secs` keeps covering
        // compile + extraction. Loop nests, load classes, and
        // frequency estimates stay lazy — many runs never need them.
        let _ = ctx.analysis();
        let secs = start.elapsed().as_secs_f64();
        if let Some(spans) = self.trace_spans() {
            spans.record_at(&format!("compile/{}/{opt}", bench.name), start, secs);
        }
        self.counters.compile_misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.compiled.lock().expect("compile lock");
        let entry = map.entry(key).or_insert_with(|| ctx.clone());
        (entry.clone(), secs)
    }

    /// The uncached compile → analyze → simulate path.
    fn compute(
        &self,
        bench: &Benchmark,
        opt: OptLevel,
        input_set: u8,
        cache: CacheConfig,
        memory: MemoryConfig,
    ) -> BenchRun {
        let (compiled, compile_secs) = self.compiled_for(bench, opt);
        let config = RunConfig {
            cache,
            memory,
            input: bench.input(input_set).to_vec(),
            classify_misses: self.classify.load(Ordering::Relaxed),
            engine: self.engine(),
            observe: *self.observe.lock().expect("observe lock"),
            ..RunConfig::default()
        };
        let sim_start = Instant::now();
        let (result, block_stats) = run_with_stats(compiled.program(), &config)
            .unwrap_or_else(|e| panic!("{} trapped at {opt}: {e}", bench.name));
        let sim_secs = sim_start.elapsed().as_secs_f64();
        if let Some(spans) = self.trace_spans() {
            let mut label = format!("sim/{}/{opt}/in{input_set}/{cache}", bench.name);
            if !memory.is_default() {
                label.push('/');
                label.push_str(&memory.to_string());
            }
            spans.record_at(&label, sim_start, sim_secs);
        }
        if let Some(stats) = block_stats {
            self.block_stats
                .lock()
                .expect("block stats lock")
                .merge(&stats);
        }
        self.counters
            .sim_instructions
            .fetch_add(result.instructions, Ordering::Relaxed);
        self.timings
            .lock()
            .expect("timing lock")
            .push(ConfigTiming {
                bench: bench.name.to_owned(),
                opt,
                input_set,
                cache,
                memory,
                compile_secs,
                sim_secs,
                instructions: result.instructions,
            });
        BenchRun {
            name: bench.name.to_owned(),
            ctx: compiled.with_profile(&result.exec_counts),
            result,
        }
    }

    /// Number of distinct simulations completed so far.
    #[must_use]
    pub fn simulations(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .runs
                    .lock()
                    .expect("pipeline lock")
                    .values()
                    .filter(|s| matches!(s, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Snapshot of the memo-table counters.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            waits: self.counters.waits.load(Ordering::Relaxed),
            compile_hits: self.counters.compile_hits.load(Ordering::Relaxed),
            compile_misses: self.counters.compile_misses.load(Ordering::Relaxed),
            sim_instructions: self.counters.sim_instructions.load(Ordering::Relaxed),
            block: *self.block_stats.lock().expect("block stats lock"),
        }
    }

    /// Per-configuration wall-clock records, in completion order.
    ///
    /// # Panics
    ///
    /// Panics if the timing lock is poisoned.
    #[must_use]
    pub fn config_timings(&self) -> Vec<ConfigTiming> {
        self.timings.lock().expect("timing lock").clone()
    }

    /// Merged pass-cache counters over every analysis context in the
    /// compile cache: how often each analysis was requested, how often
    /// it was actually computed, and the wall time it cost. With the
    /// ctx in place, each `(bench, opt)` pair computes each pass at
    /// most once — everything above the `misses` line is sharing.
    ///
    /// # Panics
    ///
    /// Panics if the compile lock is poisoned.
    #[must_use]
    pub fn analysis_stats(&self) -> CtxStats {
        let mut merged = CtxStats::default();
        for ctx in self.compiled.lock().expect("compile lock").values() {
            merged.merge(&ctx.stats());
        }
        merged
    }

    /// Number of distinct `(bench, opt)` analysis contexts built so
    /// far — the number of programs analyzed, as opposed to the number
    /// of configurations simulated.
    ///
    /// # Panics
    ///
    /// Panics if the compile lock is poisoned.
    #[must_use]
    pub fn analysis_contexts(&self) -> usize {
        self.compiled.lock().expect("compile lock").len()
    }

    /// Every ready (completed) run currently in the memo table, in an
    /// unspecified order. Used to aggregate per-run measurements —
    /// e.g. the miss-class breakdown — without re-running anything.
    #[must_use]
    pub fn ready_runs(&self) -> Vec<Arc<BenchRun>> {
        self.shards
            .iter()
            .flat_map(|shard| {
                shard
                    .runs
                    .lock()
                    .expect("pipeline lock")
                    .values()
                    .filter_map(|s| match s {
                        Slot::Ready(run) => Some(Arc::clone(run)),
                        Slot::InFlight => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_shares_runs() {
        let p = Pipeline::new();
        // A small benchmark keeps the test fast.
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let r1 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let r2 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(p.simulations(), 1);
        let r3 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        assert!(!Arc::ptr_eq(&r1, &r3));
        assert_eq!(p.simulations(), 2);
    }

    #[test]
    fn stats_track_hits_misses_and_compile_sharing() {
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let _ = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let _ = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let _ = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        // Two distinct simulations share one compilation.
        assert_eq!(s.compile_misses, 1);
        assert_eq!(s.compile_hits, 1);
        assert!(s.sim_instructions > 0);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        let timings = p.config_timings();
        assert_eq!(timings.len(), 2);
        assert!(timings[0].label().contains("197.parser/O0/in1"));
        // The compile-cache hit reports zero compile seconds.
        assert_eq!(timings[1].compile_secs, 0.0);
        assert_eq!(p.ready_runs().len(), 2);
    }

    #[test]
    fn trace_spans_cover_compile_analysis_and_sim() {
        let p = Pipeline::new();
        let spans = Arc::new(dl_obs::Spans::default());
        p.set_trace_spans(Arc::clone(&spans));
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let _ = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let _ = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        let records = spans.records();
        let count = |prefix: &str| {
            records
                .iter()
                .filter(|r| r.path.starts_with(prefix))
                .count()
        };
        // One compilation shared by two simulated configurations.
        assert_eq!(count("compile/197.parser/O0"), 1);
        assert_eq!(count("sim/197.parser/O0/in1/"), 2);
        // The eager ctx.analysis() computes cfg/reaching/patterns at
        // minimum; every recorded pass rides the analysis/ prefix.
        assert!(count("analysis/197.parser/O0/") >= 3);
        assert!(records.iter().all(|r| r.secs >= 0.0 && r.start_secs >= 0.0));
    }

    #[test]
    fn classification_flows_into_results() {
        let p = Pipeline::new();
        p.set_classify_misses(true);
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let r = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let profile = r.result.cache_profile.as_ref().expect("profile recorded");
        assert_eq!(profile.classes.total(), r.result.dcache_misses);
        assert!(r.result.load_miss_classes.is_some());
    }

    #[test]
    fn run_produces_consistent_views() {
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("129.compress").expect("exists");
        b.input1 = vec![2000, 3];
        let r = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        assert_eq!(r.lambda(), r.program().static_load_count());
        assert_eq!(r.result.exec_counts.len(), r.program().insts.len());
        assert!(r.result.instructions > 0);
        // The run's ctx carries the simulation's counts as profile.
        assert_eq!(r.ctx().profile(), Some(r.result.exec_counts.as_slice()));
    }

    #[test]
    fn analysis_context_shared_across_configs() {
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let r1 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        let r2 = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_baseline());
        // Two configurations, one analyzed program.
        assert_eq!(p.analysis_contexts(), 1);
        let before = p.analysis_stats();
        assert_eq!(before.patterns.misses, 1);
        // Forcing the analysis through both runs only ever hits.
        let _ = r1.analysis();
        let _ = r2.analysis();
        let _ = r1.ctx().loops();
        let _ = r2.ctx().loops();
        let after = p.analysis_stats();
        assert_eq!(after.patterns.misses, 1);
        assert_eq!(after.loops.misses, 1);
        assert!(after.hits() > before.hits());
    }

    #[test]
    fn racing_threads_share_one_simulation() {
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let p = &p;
                    let b = &b;
                    scope.spawn(move || p.run(b, OptLevel::O0, 1, CacheConfig::paper_training()))
                })
                .collect();
            let runs: Vec<Arc<BenchRun>> = handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect();
            for pair in runs.windows(2) {
                assert!(Arc::ptr_eq(&pair[0], &pair[1]));
            }
        });
        assert_eq!(p.simulations(), 1);
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn memory_config_is_part_of_the_memo_key() {
        use dl_sim::{Policy, StridePrefetchConfig};
        let p = Pipeline::new();
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.input1 = vec![500, 2];
        let cache = CacheConfig::paper_training();
        let base = p.run(&b, OptLevel::O0, 1, cache);
        // run() is run_mem() under the default memory system: same entry.
        let same = p.run_mem(&b, OptLevel::O0, 1, cache, MemoryConfig::default());
        assert!(Arc::ptr_eq(&base, &same));
        assert_eq!(p.simulations(), 1);
        // A different policy or prefetcher is a distinct simulation —
        // but still the same compilation.
        let plru = MemoryConfig {
            policy: Policy::Plru,
            ..MemoryConfig::default()
        };
        let pf = MemoryConfig {
            prefetch: Some(StridePrefetchConfig::degree(2)),
            ..MemoryConfig::default()
        };
        let r_plru = p.run_mem(&b, OptLevel::O0, 1, cache, plru);
        let r_pf = p.run_mem(&b, OptLevel::O0, 1, cache, pf);
        assert!(!Arc::ptr_eq(&base, &r_plru));
        assert!(!Arc::ptr_eq(&base, &r_pf));
        assert_eq!(p.simulations(), 3);
        assert_eq!(p.stats().compile_misses, 1);
        // Default-memory labels stay byte-identical to the pre-matrix
        // format; non-default ones grow a memory segment.
        let timings = p.config_timings();
        assert!(timings
            .iter()
            .any(|t| t.memory.is_default() && !t.label().contains("lru")));
        assert!(timings
            .iter()
            .any(|t| t.label().ends_with("/plru") || t.label().ends_with("/pf2")));
    }

    #[test]
    fn panic_releases_in_flight_claim() {
        let p = Pipeline::new();
        // A benchmark guaranteed to fail: nonexistent source.
        let mut b = dl_workloads::by_name("197.parser").expect("exists");
        b.name = "bogus";
        b.source = "int main( {";
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.run(&b, OptLevel::O0, 1, CacheConfig::paper_training());
        }));
        assert!(result.is_err());
        // The claim must be gone: a fresh (valid) run on the same key
        // shape must not deadlock, and the table holds no ready entry.
        assert_eq!(p.simulations(), 0);
        let good = dl_workloads::by_name("197.parser").expect("exists");
        let mut good = good;
        good.input1 = vec![500, 2];
        let _ = p.run(&good, OptLevel::O0, 1, CacheConfig::paper_training());
        assert_eq!(p.simulations(), 1);
    }
}
