//! # dl-experiments
//!
//! The evaluation driver: compiles each synthetic benchmark, simulates
//! it under a cache configuration, runs the static analysis and the
//! delinquency heuristics, computes the paper's metrics (precision π,
//! coverage ρ, false-positive impact ξ, the ideal and profiling sets),
//! and regenerates every table of the paper's evaluation section.
//!
//! Regenerate everything with:
//!
//! ```text
//! cargo run --release -p dl-experiments --bin repro -- all
//! ```
//!
//! or a single table with `-- table11`, etc. `-- write-experiments`
//! emits the full `EXPERIMENTS.md` comparison document.
//!
//! # Example
//!
//! ```no_run
//! use dl_experiments::pipeline::Pipeline;
//! use dl_experiments::metrics;
//! use dl_core::{Heuristic, Predictor};
//! use dl_minic::OptLevel;
//! use dl_sim::CacheConfig;
//!
//! let pipeline = Pipeline::new();
//! let bench = dl_workloads::by_name("181.mcf").unwrap();
//! let run = pipeline.run(&bench, OptLevel::O0, 1, CacheConfig::paper_training());
//! // The run's ctx carries the simulated profile, so `predict` sees
//! // the same exec counts `classify` would.
//! let delta = Heuristic::default().predict(run.ctx());
//! println!("pi = {:.1}%", 100.0 * metrics::pi(delta.len(), run.lambda()));
//! println!("rho = {:.0}%", 100.0 * metrics::rho(&run.result, &delta));
//! ```

#![warn(missing_docs)]

pub mod document;
pub mod metrics;
pub mod obs;
pub mod pipeline;
pub mod report;
pub mod schedule;
pub mod tables;

pub use obs::{profile_text, run_manifest};
pub use pipeline::{BenchRun, ConfigTiming, MemoStats, Pipeline};
pub use report::Table;
pub use schedule::{
    default_jobs, prewarm, prewarm_with_stats, table_specs, union_specs, PrewarmReport, RunSpec,
    WorkerStat,
};
