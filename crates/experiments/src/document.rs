//! Assembly of the `EXPERIMENTS.md` comparison document.
//!
//! Lives in the library (rather than the `repro` binary) so tests can
//! assert that a parallel-prewarmed pipeline renders a byte-identical
//! document to a sequential one.

use std::time::Instant;

use crate::pipeline::Pipeline;
use crate::tables::TableFn;

/// The document preamble: purpose, regeneration command, and the
/// shape-claim checklist.
const PREAMBLE: &str = "# EXPERIMENTS — paper vs. measured\n\n\
    Reproduction of every table in *Static Identification of Delinquent\n\
    Loads* (CGO 2004) on the synthetic substrate described in DESIGN.md.\n\
    Absolute numbers are not expected to match the paper (different\n\
    compiler, ISA, simulator scale, and workloads); the *shape* claims in\n\
    each table's note are what must hold, and each note states the\n\
    paper's own numbers for comparison.\n\n\
    Regenerate this file with:\n\n\
    ```\n\
    cargo run --release -p dl-experiments --bin repro -- write-experiments\n\
    ```\n\n\
    ## Shape-claim checklist\n\n\
    | # | Claim (paper) | Where | Holds here? |\n\
    |---|---|---|---|\n\
    | 1 | ~10% of static loads cover >90% of D-cache misses | Table 11 | yes — 8.8% cover 97.5% |\n\
    | 2 | Dropping AG8/AG9 roughly doubles π at unchanged ρ | Table 11 | yes — 8.8% → 17.1%, ρ flat |\n\
    | 3 | Stable across inputs | Table 7 | yes — identical averages on both input sets |\n\
    | 4 | Stable across associativity and capacity | Tables 8, 9 | yes — ρ flat from 2- to 8-way and 8 to 64 KiB |\n\
    | 5 | Generalizes to unseen benchmarks with a small gap | Table 10 | yes — 8.9% / 93.9% (paper 9.1% / 88.3%) |\n\
    | 6 | OKN/BDH reach similar ρ only with far larger Δ | Table 12 | yes in direction — both flag 1.4–2x more loads; the paper's 5x gap is compiler-dependent (see note) |\n\
    | 7 | Raising δ lowers both π and ρ with per-benchmark cliffs | Table 13 | yes — 22/100 → 3/84 across δ = 0.1 → 0.4 |\n\
    | 8 | Profiling ∩ heuristic pinpoints ~1.3% of loads at ~82% ρ, ≫ random | Table 14 | yes — 1.6% at 97%, random control 26% |\n\
    | 9 | Trained weights: AG6 strongest, AG4 weakest positive, AG9 = 2·AG8 < 0 | Table 5 | yes (AG2/AG7 train negative here; see note) |\n\n";

/// Builds the full `EXPERIMENTS.md` document, invoking `progress`
/// with each table's name and generation wall-clock as it completes.
///
/// The output depends only on the tables' contents — never on the
/// worker count used to warm `pipeline` — because tables are rendered
/// here, sequentially, in registry order.
pub fn experiments_doc(
    pipeline: &Pipeline,
    tables: &[(&'static str, TableFn)],
    mut progress: impl FnMut(&str, f64),
) -> String {
    let mut doc = String::new();
    doc.push_str(PREAMBLE);
    for (name, f) in tables {
        let start = Instant::now();
        let table = f(pipeline);
        doc.push_str(&table.to_markdown());
        doc.push('\n');
        progress(name, start.elapsed().as_secs_f64());
    }
    doc.push_str(&format!(
        "---\n\nTotal distinct simulations: {}\n",
        pipeline.simulations()
    ));
    doc
}
