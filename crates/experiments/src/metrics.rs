//! The paper's evaluation metrics: precision π, coverage ρ,
//! false-positive impact ξ, the greedy *ideal* set, the basic-block
//! *profiling* set, and the random-selection control.

use dl_analysis::cfg::program_blocks;
use dl_mips::program::Program;
use dl_sim::RunResult;
use dl_testkit::Rng;

/// π(H) = |Δ| / |Λ|: the fraction of static loads flagged.
#[must_use]
pub fn pi(delta_len: usize, lambda: usize) -> f64 {
    if lambda == 0 {
        0.0
    } else {
        delta_len as f64 / lambda as f64
    }
}

/// ρ(H) = M_Δ / M(P(I), C): the fraction of all load misses that the
/// flagged set accounts for.
#[must_use]
pub fn rho(result: &RunResult, delta: &[usize]) -> f64 {
    if result.load_misses_total == 0 {
        return 0.0;
    }
    result.misses_of_set(delta) as f64 / result.load_misses_total as f64
}

/// The *ideal* set: loads sorted by miss count descending, greedily
/// taken until they cover at least `target_misses`. This is the
/// minimal-cardinality set reaching that coverage (paper Table 1,
/// third column).
#[must_use]
pub fn ideal_set(result: &RunResult, loads: &[usize], target_misses: u64) -> Vec<usize> {
    let mut by_miss: Vec<usize> = loads
        .iter()
        .copied()
        .filter(|&i| result.load_misses[i] > 0)
        .collect();
    by_miss.sort_by_key(|&i| std::cmp::Reverse(result.load_misses[i]));
    let mut out = Vec::new();
    let mut covered = 0u64;
    for i in by_miss {
        if covered >= target_misses {
            break;
        }
        covered += result.load_misses[i];
        out.push(i);
    }
    out.sort_unstable();
    out
}

/// The *profiling* set Δ_P (paper §4): all loads inside the basic
/// blocks that cumulatively account for `fraction` of the program's
/// executed instructions ("compute cycles").
#[must_use]
pub fn profiling_set(program: &Program, result: &RunResult, fraction: f64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let blocks = program_blocks(program);
    // Cycles per block = dynamic instructions executed inside it.
    let mut weighted: Vec<(u64, usize)> = blocks
        .iter()
        .enumerate()
        .map(|(bid, &(s, e))| {
            let cycles: u64 = (s..e).map(|i| result.exec_counts[i]).sum();
            (cycles, bid)
        })
        .collect();
    weighted.sort_by_key(|&(c, _)| std::cmp::Reverse(c));
    let total: u64 = weighted.iter().map(|&(c, _)| c).sum();
    let target = (total as f64 * fraction) as u64;
    let mut covered = 0u64;
    let mut out = Vec::new();
    for (cycles, bid) in weighted {
        if covered >= target || cycles == 0 {
            break;
        }
        covered += cycles;
        let (s, e) = blocks[bid];
        for i in s..e {
            if program.insts[i].is_load() {
                out.push(i);
            }
        }
    }
    out.sort_unstable();
    out
}

/// ξ: the percentage of *dynamic* load executions spent on loads that
/// the heuristic flagged but the ideal set does not contain — the
/// dynamic cost of false positives (paper Table 11).
#[must_use]
pub fn xi(result: &RunResult, loads: &[usize], delta: &[usize], ideal: &[usize]) -> f64 {
    let total_dynamic: u64 = loads.iter().map(|&i| result.exec_counts[i]).sum();
    if total_dynamic == 0 {
        return 0.0;
    }
    let ideal_set: std::collections::BTreeSet<usize> = ideal.iter().copied().collect();
    let wasted: u64 = delta
        .iter()
        .filter(|i| !ideal_set.contains(i))
        .map(|&i| result.exec_counts[i])
        .sum();
    wasted as f64 / total_dynamic as f64
}

/// ρ\* — the random-selection control of Table 14: the mean coverage of
/// `k` loads drawn uniformly from the hotspot loads, averaged over
/// `trials` seeded draws.
#[must_use]
pub fn random_control(
    result: &RunResult,
    hot_loads: &[usize],
    k: usize,
    trials: u32,
    seed: u64,
) -> f64 {
    if hot_loads.is_empty() || k == 0 || trials == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for t in 0..trials {
        let mut rng = Rng::new(seed ^ u64::from(t).wrapping_mul(0x9e37_79b9));
        let mut pool: Vec<usize> = hot_loads.to_vec();
        let take = k.min(pool.len());
        // Partial Fisher-Yates for a uniform k-subset.
        for i in 0..take {
            let j = i + rng.index(pool.len() - i);
            pool.swap(i, j);
        }
        total += rho(result, &pool[..take]);
    }
    total / f64::from(trials)
}

/// Formats a fraction as a percentage with the given precision.
#[must_use]
pub fn pct(x: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(misses: Vec<u64>, execs: Vec<u64>) -> RunResult {
        let n = misses.len();
        let mut r = RunResult::with_len(n);
        r.load_misses_total = misses.iter().sum();
        r.load_misses = misses;
        r.exec_counts = execs;
        r
    }

    #[test]
    fn pi_and_rho_basics() {
        assert_eq!(pi(10, 100), 0.1);
        assert_eq!(pi(0, 0), 0.0);
        let r = result_with(vec![10, 0, 30, 60], vec![1; 4]);
        assert!((rho(&r, &[3]) - 0.6).abs() < 1e-12);
        assert!((rho(&r, &[0, 2, 3]) - 1.0).abs() < 1e-12);
        assert_eq!(rho(&r, &[]), 0.0);
    }

    #[test]
    fn ideal_set_is_greedy_minimal() {
        let r = result_with(vec![10, 0, 30, 60], vec![1; 4]);
        let loads = vec![0, 1, 2, 3];
        // 90% of 100 = 90: needs 60 + 30 = 90.
        let ideal = ideal_set(&r, &loads, 90);
        assert_eq!(ideal, vec![2, 3]);
        // 95 needs all three missing loads.
        let ideal = ideal_set(&r, &loads, 95);
        assert_eq!(ideal, vec![0, 2, 3]);
        // Zero target: empty.
        assert!(ideal_set(&r, &loads, 0).is_empty());
    }

    #[test]
    fn xi_counts_dynamic_false_positives() {
        let r = result_with(vec![0, 0, 50, 50], vec![100, 300, 100, 500]);
        let loads = vec![0, 1, 2, 3];
        // Heuristic flags 1 (false) and 3 (true); ideal = {2, 3}.
        let x = xi(&r, &loads, &[1, 3], &[2, 3]);
        assert!((x - 0.3).abs() < 1e-12);
        // No false positives.
        assert_eq!(xi(&r, &loads, &[2, 3], &[2, 3]), 0.0);
    }

    #[test]
    fn random_control_is_deterministic_and_bounded() {
        let r = result_with(vec![5, 10, 15, 70], vec![1; 4]);
        let hot = vec![0, 1, 2, 3];
        let a = random_control(&r, &hot, 2, 3, 42);
        let b = random_control(&r, &hot, 2, 3, 42);
        assert_eq!(a, b);
        assert!(a > 0.0 && a < 1.0);
        // Taking everything covers everything.
        assert!((random_control(&r, &hot, 4, 2, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.1234, 1), "12.3%");
        assert_eq!(pct(0.9, 0), "90%");
    }

    #[test]
    fn profiling_set_picks_hot_block_loads() {
        use dl_mips::parse::parse_asm;
        // Hot loop block with a load, cold tail block with a load.
        let p = parse_asm(
            "main:\n\
             \tli $t0, 1000\n\
             .Lloop:\n\
             \tlw $t1, 0($gp)\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lloop\n\
             \tlw $t2, 4($gp)\n\
             \tjr $ra\n",
        )
        .unwrap();
        let r = dl_sim::run(&p, &dl_sim::RunConfig::default()).unwrap();
        let hot = profiling_set(&p, &r, 0.9);
        assert!(hot.contains(&1), "hot-loop load selected");
        assert!(!hot.contains(&4), "cold load excluded");
    }
}
