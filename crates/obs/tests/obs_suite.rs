//! Integration tests for dl-obs: histogram bucket boundaries,
//! concurrent counter increments, span nesting, and a golden-file
//! assertion that the manifest structure is stable once timings are
//! zeroed.

use dl_obs::metrics::{Histogram, Registry, HISTOGRAM_BUCKETS};
use dl_obs::span::Spans;
use dl_obs::{Json, Manifest};

#[test]
fn histogram_bucket_boundaries() {
    // Bucket 0 holds exactly zero; bucket k holds [2^(k-1), 2^k).
    assert_eq!(Histogram::bucket_of(0), 0);
    assert_eq!(Histogram::bucket_of(1), 1);
    assert_eq!(Histogram::bucket_of(2), 2);
    assert_eq!(Histogram::bucket_of(3), 2);
    assert_eq!(Histogram::bucket_of(4), 3);
    assert_eq!(Histogram::bucket_of(7), 3);
    assert_eq!(Histogram::bucket_of(8), 4);
    assert_eq!(Histogram::bucket_of(1023), 10);
    assert_eq!(Histogram::bucket_of(1024), 11);
    assert_eq!(Histogram::bucket_of(u64::MAX), 64);

    // Bounds agree with bucket_of at every edge.
    for i in 0..HISTOGRAM_BUCKETS {
        let (low, high) = Histogram::bucket_bounds(i);
        assert_eq!(Histogram::bucket_of(low), i, "low edge of bucket {i}");
        if let Some(high) = high {
            assert_eq!(
                Histogram::bucket_of(high - 1),
                i,
                "inclusive top of bucket {i}"
            );
            if high < u64::MAX {
                assert_eq!(Histogram::bucket_of(high), i + 1, "exclusive top {i}");
            }
        }
    }

    let h = Histogram::default();
    for v in [0, 1, 1, 3, 8, 9] {
        h.record(v);
    }
    assert_eq!(h.bucket(0), 1);
    assert_eq!(h.bucket(1), 2);
    assert_eq!(h.bucket(2), 1);
    assert_eq!(h.bucket(4), 2);
    assert_eq!(h.count(), 6);
    assert_eq!(h.sum(), 22);
    assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (2, 1), (4, 2)]);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::default();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let c = registry.counter("shared");
                let h = registry.histogram("samples");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i % 16);
                }
            });
        }
    });
    assert_eq!(
        registry.counter("shared").get(),
        THREADS as u64 * PER_THREAD
    );
    assert_eq!(
        registry.histogram("samples").count(),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn span_nesting_composes_paths_and_times_nest() {
    let spans = Spans::default();
    {
        let root = spans.enter("repro");
        let warm = root.child("warm");
        {
            let _sim = warm.child("simulate");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    let records = spans.records();
    let paths: Vec<&str> = records.iter().map(|r| r.path.as_str()).collect();
    assert_eq!(paths, vec!["repro/warm/simulate", "repro/warm", "repro"]);
    // A parent's wall clock covers its children.
    let of = |p: &str| spans.total_secs(p).unwrap();
    assert!(of("repro") >= of("repro/warm"));
    assert!(of("repro/warm") >= of("repro/warm/simulate"));
}

/// The golden manifest: structure (keys, ordering, deterministic
/// values) must be byte-stable once timings are zeroed. If this test
/// fails because the schema deliberately changed, update the expected
/// string *and* the schema consumers (`ci.sh`, DESIGN.md).
#[test]
fn golden_manifest_structure_with_timings_zeroed() {
    let spans = Spans::default();
    spans.record("repro/warm", 1.234_567_9);
    spans.record("repro/tables/table3", 0.5);

    let registry = Registry::default();
    registry.counter("memo.hit").add(7);
    registry.counter("memo.miss").add(3);
    registry.histogram("sim.insts").record(1000);

    let mut manifest = Manifest::new("repro")
        .with_stages(&spans)
        .with_registry(&registry)
        .with(
            "memo",
            Json::obj()
                .with("hits", 7u64.into())
                .with("misses", 3u64.into())
                .with("hit_rate", Json::F64(0.7)),
        )
        .with(
            "sim",
            Json::obj()
                .with("instructions", 1000u64.into())
                .with("total_sim_secs", Json::F64(0.25))
                .with("insts_per_sec", Json::F64(4000.0)),
        );
    manifest.zero_timings();

    let expected = r#"{
  "schema": "dl-obs/1",
  "command": "repro",
  "stages": [
    {
      "name": "repro/tables/table3",
      "secs": 0.000000,
      "start_secs": 0.000000
    },
    {
      "name": "repro/warm",
      "secs": 0.000000,
      "start_secs": 0.000000
    }
  ],
  "counters": {
    "memo.hit": 7,
    "memo.miss": 3
  },
  "histograms": {
    "sim.insts": {
      "count": 1,
      "sum": 1000,
      "buckets": [
        {
          "bucket": 10,
          "count": 1
        }
      ]
    }
  },
  "memo": {
    "hits": 7,
    "misses": 3,
    "hit_rate": 0.700000
  },
  "sim": {
    "instructions": 1000,
    "total_sim_secs": 0.000000,
    "insts_per_sec": 0.000000
  }
}
"#;
    assert_eq!(manifest.render(), expected);
}
