//! Hierarchical wall-clock spans.
//!
//! A [`Spans`] collector accumulates finished [`SpanRecord`]s; a
//! [`SpanGuard`] times one region and records itself on drop. Nesting
//! is expressed through `/`-separated paths: `guard.child("sim")`
//! under a `repro/warm` guard records as `repro/warm/sim`. Guards can
//! be created and dropped on any thread — the collector is behind a
//! mutex that is only taken when a span *finishes*.
//!
//! Every record also carries a *timeline position*: `start_secs` is
//! the span's start offset from the collector's construction instant
//! (its epoch), and `tid` is a small dense id for the recording
//! thread. Together they let [`crate::trace::chrome_trace`] lay the
//! whole run out on a Perfetto-loadable timeline. Thread ids are
//! assigned in first-use order and are therefore *not* deterministic
//! across runs — deterministic outputs (manifests, golden tables)
//! must ignore them.
//!
//! Spans are the only place dl-obs stores wall-clock readings; see the
//! crate docs for why timings are segregated from metric values.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide source of dense thread ids for span records.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread, assigned on first use.
///
/// Ids are stable for the life of the thread but their *assignment
/// order* depends on scheduling — treat them as display labels, never
/// as deterministic data.
#[must_use]
pub fn current_tid() -> u64 {
    THREAD_TID.with(|t| *t)
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// `/`-separated hierarchical name, e.g. `repro/warm/sim`.
    pub path: String,
    /// Wall-clock duration in seconds.
    pub secs: f64,
    /// Start offset in seconds from the collector's epoch.
    pub start_secs: f64,
    /// Dense id of the thread that recorded the span (see
    /// [`current_tid`]; not deterministic across runs).
    pub tid: u64,
}

/// A thread-safe collector of finished spans.
#[derive(Debug)]
pub struct Spans {
    records: Mutex<Vec<SpanRecord>>,
    epoch: Instant,
}

impl Default for Spans {
    fn default() -> Self {
        Spans {
            records: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }
}

impl Spans {
    /// The instant all `start_secs` offsets are measured from (the
    /// collector's construction time).
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Starts a root span at `path`.
    #[must_use]
    pub fn enter<'a>(&'a self, path: &str) -> SpanGuard<'a> {
        SpanGuard {
            spans: self,
            path: path.to_owned(),
            start: Instant::now(),
        }
    }

    /// Times `f` under a root span at `path`.
    pub fn time<T>(&self, path: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.enter(path);
        f()
    }

    /// Records an externally measured duration (for callers that
    /// already hold a wall-clock reading). The span is positioned on
    /// the timeline as if it started `secs` ago.
    ///
    /// # Panics
    ///
    /// Panics if the collector lock is poisoned.
    pub fn record(&self, path: &str, secs: f64) {
        let now_offset = self.epoch.elapsed().as_secs_f64();
        self.push(SpanRecord {
            path: path.to_owned(),
            secs,
            start_secs: (now_offset - secs).max(0.0),
            tid: current_tid(),
        });
    }

    /// Records a span that started at `start` (measured on this
    /// collector's clock) and lasted `secs`.
    ///
    /// # Panics
    ///
    /// Panics if the collector lock is poisoned.
    pub fn record_at(&self, path: &str, start: Instant, secs: f64) {
        let start_secs = start
            .checked_duration_since(self.epoch)
            .map_or(0.0, |d| d.as_secs_f64());
        self.push(SpanRecord {
            path: path.to_owned(),
            secs,
            start_secs,
            tid: current_tid(),
        });
    }

    fn push(&self, record: SpanRecord) {
        self.records.lock().expect("span lock").push(record);
    }

    /// All finished spans, in completion order.
    ///
    /// # Panics
    ///
    /// Panics if the collector lock is poisoned.
    #[must_use]
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().expect("span lock").clone()
    }

    /// The total seconds recorded under exactly `path` (summed over
    /// repeats), or `None` if the path never finished.
    #[must_use]
    pub fn total_secs(&self, path: &str) -> Option<f64> {
        let records = self.records();
        let matching: Vec<f64> = records
            .iter()
            .filter(|r| r.path == path)
            .map(|r| r.secs)
            .collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching.iter().sum())
        }
    }
}

/// An in-progress span; records itself into the collector on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    spans: &'a Spans,
    path: String,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Starts a child span named `path/name`.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanGuard<'a> {
        SpanGuard {
            spans: self.spans,
            path: format!("{}/{name}", self.path),
            start: Instant::now(),
        }
    }

    /// This span's full path.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.spans.record_at(&self.path, self.start, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let spans = Spans::default();
        {
            let _g = spans.enter("root");
        }
        let records = spans.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, "root");
        assert!(records[0].secs >= 0.0);
        assert!(records[0].start_secs >= 0.0);
    }

    #[test]
    fn child_paths_compose() {
        let spans = Spans::default();
        {
            let outer = spans.enter("a");
            let inner = outer.child("b");
            let leaf = inner.child("c");
            assert_eq!(leaf.path(), "a/b/c");
        }
        let paths: Vec<String> = spans.records().into_iter().map(|r| r.path).collect();
        // Drop order: leaf first, root last.
        assert_eq!(
            paths,
            vec!["a/b/c".to_owned(), "a/b".to_owned(), "a".to_owned()]
        );
    }

    #[test]
    fn total_secs_sums_repeats() {
        let spans = Spans::default();
        spans.record("x", 1.5);
        spans.record("x", 0.5);
        assert_eq!(spans.total_secs("x"), Some(2.0));
        assert_eq!(spans.total_secs("y"), None);
    }

    #[test]
    fn time_returns_closure_value() {
        let spans = Spans::default();
        let v = spans.time("calc", || 41 + 1);
        assert_eq!(v, 42);
        assert!(spans.total_secs("calc").is_some());
    }

    #[test]
    fn record_at_positions_span_on_timeline() {
        let spans = Spans::default();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = start.elapsed().as_secs_f64();
        spans.record_at("timed", start, secs);
        let r = &spans.records()[0];
        assert!(r.start_secs >= 0.0);
        // The span must end no later than "now" on the collector clock.
        assert!(r.start_secs + r.secs <= spans.epoch().elapsed().as_secs_f64() + 1e-6);
    }

    #[test]
    fn start_before_epoch_clamps_to_zero() {
        let early = Instant::now();
        let spans = Spans::default();
        spans.record_at("pre-epoch", early, 0.0);
        assert_eq!(spans.records()[0].start_secs, 0.0);
    }

    #[test]
    fn nested_spans_are_ordered_on_the_timeline() {
        let spans = Spans::default();
        {
            let outer = spans.enter("outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _inner = outer.child("in");
        }
        let records = spans.records();
        let inner = records.iter().find(|r| r.path == "outer/in").unwrap();
        let outer = records.iter().find(|r| r.path == "outer").unwrap();
        assert!(inner.start_secs >= outer.start_secs);
        assert!(outer.secs >= inner.secs);
    }

    #[test]
    fn tid_is_stable_within_a_thread() {
        assert_eq!(current_tid(), current_tid());
        let spans = Spans::default();
        spans.record("a", 0.0);
        spans.record("b", 0.0);
        let records = spans.records();
        assert_eq!(records[0].tid, records[1].tid);
    }
}
