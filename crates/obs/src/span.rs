//! Hierarchical wall-clock spans.
//!
//! A [`Spans`] collector accumulates finished [`SpanRecord`]s; a
//! [`SpanGuard`] times one region and records itself on drop. Nesting
//! is expressed through `/`-separated paths: `guard.child("sim")`
//! under a `repro/warm` guard records as `repro/warm/sim`. Guards can
//! be created and dropped on any thread — the collector is behind a
//! mutex that is only taken when a span *finishes*.
//!
//! Spans are the only place dl-obs stores wall-clock readings; see the
//! crate docs for why timings are segregated from metric values.

use std::sync::Mutex;
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// `/`-separated hierarchical name, e.g. `repro/warm/sim`.
    pub path: String,
    /// Wall-clock duration in seconds.
    pub secs: f64,
}

/// A thread-safe collector of finished spans.
#[derive(Debug, Default)]
pub struct Spans {
    records: Mutex<Vec<SpanRecord>>,
}

impl Spans {
    /// Starts a root span at `path`.
    #[must_use]
    pub fn enter<'a>(&'a self, path: &str) -> SpanGuard<'a> {
        SpanGuard {
            spans: self,
            path: path.to_owned(),
            start: Instant::now(),
        }
    }

    /// Times `f` under a root span at `path`.
    pub fn time<T>(&self, path: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.enter(path);
        f()
    }

    /// Records an externally measured duration (for callers that
    /// already hold a wall-clock reading).
    ///
    /// # Panics
    ///
    /// Panics if the collector lock is poisoned.
    pub fn record(&self, path: &str, secs: f64) {
        self.records.lock().expect("span lock").push(SpanRecord {
            path: path.to_owned(),
            secs,
        });
    }

    /// All finished spans, in completion order.
    ///
    /// # Panics
    ///
    /// Panics if the collector lock is poisoned.
    #[must_use]
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().expect("span lock").clone()
    }

    /// The total seconds recorded under exactly `path` (summed over
    /// repeats), or `None` if the path never finished.
    #[must_use]
    pub fn total_secs(&self, path: &str) -> Option<f64> {
        let records = self.records();
        let matching: Vec<f64> = records
            .iter()
            .filter(|r| r.path == path)
            .map(|r| r.secs)
            .collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching.iter().sum())
        }
    }
}

/// An in-progress span; records itself into the collector on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    spans: &'a Spans,
    path: String,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Starts a child span named `path/name`.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanGuard<'a> {
        SpanGuard {
            spans: self.spans,
            path: format!("{}/{name}", self.path),
            start: Instant::now(),
        }
    }

    /// This span's full path.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.spans.record(&self.path, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let spans = Spans::default();
        {
            let _g = spans.enter("root");
        }
        let records = spans.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, "root");
        assert!(records[0].secs >= 0.0);
    }

    #[test]
    fn child_paths_compose() {
        let spans = Spans::default();
        {
            let outer = spans.enter("a");
            let inner = outer.child("b");
            let leaf = inner.child("c");
            assert_eq!(leaf.path(), "a/b/c");
        }
        let paths: Vec<String> = spans.records().into_iter().map(|r| r.path).collect();
        // Drop order: leaf first, root last.
        assert_eq!(
            paths,
            vec!["a/b/c".to_owned(), "a/b".to_owned(), "a".to_owned()]
        );
    }

    #[test]
    fn total_secs_sums_repeats() {
        let spans = Spans::default();
        spans.record("x", 1.5);
        spans.record("x", 0.5);
        assert_eq!(spans.total_secs("x"), Some(2.0));
        assert_eq!(spans.total_secs("y"), None);
    }

    #[test]
    fn time_returns_closure_value() {
        let spans = Spans::default();
        let v = spans.time("calc", || 41 + 1);
        assert_eq!(v, 42);
        assert!(spans.total_secs("calc").is_some());
    }
}
