//! Chrome trace-event export for span timelines.
//!
//! [`chrome_trace`] converts a [`Spans`] collector into the Trace
//! Event Format's JSON object form (`{"traceEvents": [...]}`), the
//! dialect both `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly. Every finished span becomes one complete (`"ph":
//! "X"`) event positioned by its `start_secs` offset, with the span's
//! thread id mapped to a trace `tid` so per-worker concurrency is
//! visible as parallel tracks.

use crate::json::Json;
use crate::span::{SpanRecord, Spans};

/// The timeline as a Chrome trace-event JSON document.
///
/// Event fields: `name` (full span path), `cat` (the path's first
/// `/`-segment, so Perfetto can filter by subsystem), `ph` = `"X"`
/// (complete event), `ts`/`dur` in integer microseconds, `pid` = 1,
/// and `tid` from the recording thread. Events are emitted in the
/// collector's completion order; trace viewers sort by `ts`
/// themselves.
#[must_use]
pub fn chrome_trace(spans: &Spans) -> Json {
    let events = spans.records().iter().map(event).collect();
    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", "ms".into())
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn micros(secs: f64) -> u64 {
    (secs.max(0.0) * 1e6).round() as u64
}

fn event(r: &SpanRecord) -> Json {
    let cat = r.path.split('/').next().unwrap_or("span");
    Json::obj()
        .with("name", r.path.as_str().into())
        .with("cat", cat.into())
        .with("ph", "X".into())
        .with("ts", micros(r.start_secs).into())
        .with("dur", micros(r.secs).into())
        .with("pid", 1u64.into())
        .with("tid", r.tid.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_one_complete_event_per_span() {
        let spans = Spans::default();
        spans.record("repro/warm", 0.5);
        spans.record("repro/tables/table3", 0.25);
        let trace = chrome_trace(&spans);
        let Some(Json::Arr(events)) = trace.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph"), Some(&Json::Str("X".into())));
            assert_eq!(e.get("cat"), Some(&Json::Str("repro".into())));
            assert_eq!(e.get("pid"), Some(&Json::U64(1)));
            assert!(matches!(e.get("ts"), Some(Json::U64(_))));
            assert!(matches!(e.get("dur"), Some(Json::U64(_))));
            assert!(matches!(e.get("tid"), Some(Json::U64(_))));
        }
        assert_eq!(events[0].get("name"), Some(&Json::Str("repro/warm".into())));
        assert_eq!(events[1].get("dur"), Some(&Json::U64(250_000)));
    }

    #[test]
    fn trace_json_round_trips_through_the_parser() {
        let spans = Spans::default();
        spans.time("a/b", || {});
        let trace = chrome_trace(&spans);
        let parsed = Json::parse(&trace.render()).expect("trace parses");
        assert_eq!(parsed, trace);
    }
}
