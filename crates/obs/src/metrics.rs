//! Thread-safe metric primitives and a named registry.
//!
//! All primitives are lock-free after creation: a [`Counter`] or
//! [`Histogram`] handle obtained from the [`Registry`] can be hammered
//! from any number of threads with only atomic adds. Values recorded
//! here must be *deterministic program facts* (counts, sizes, bucket
//! tallies) — wall-clock readings belong in [`crate::span`], never in
//! a metric, so metric snapshots are stable across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (atomic max).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `k` (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket boundaries are powers of two, so recording is a
/// `leading_zeros` and one atomic add — cheap enough for per-access
/// use — and the bucket layout is identical on every platform and
/// every run (no dynamic rebucketing).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The `[low, high)` range of bucket `i` (`high` is `None` for the
    /// final, unbounded-above bucket).
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        match i {
            0 => (0, Some(1)),
            64 => (1 << 63, None),
            _ => (1 << (i - 1), Some(1 << i)),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Count in bucket `i`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// An estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the
    /// recorded samples, or `None` if the histogram is empty.
    ///
    /// The rank is `ceil(q · count)` (clamped to `1..=count`), located
    /// by walking the log2 buckets; within a bucket holding `n`
    /// samples the estimate is the midpoint of the rank's equal-width
    /// sub-interval, so a single-sample bucket reports its midpoint
    /// and estimates are monotone in `q`. The final unbounded bucket
    /// reports its lower bound. Because bucket tallies are exact, the
    /// estimate is always within the true sample's bucket — a ≤ 2×
    /// relative error, constant memory.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        #[allow(
            clippy::cast_sign_loss,
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation
        )]
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let pos = rank - seen; // 1-based position within this bucket
                let (low, high) = Self::bucket_bounds(i);
                return Some(match high {
                    // Midpoint of the pos-th of n equal sub-intervals.
                    Some(high) => low + (high - low) * (2 * pos - 1) / (2 * n),
                    None => low,
                });
            }
            seen += n;
        }
        unreachable!("rank {rank} exceeds total {total}");
    }

    /// The non-empty buckets as `(index, count)`, lowest first.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// One histogram snapshot: `(count, sum, non-empty buckets)`, where
/// each bucket is `(index, samples)`.
pub type HistogramSnapshot = (u64, u64, Vec<(usize, u64)>);

/// A named, thread-safe registry of metrics.
///
/// Lookup takes a short-lived lock; the returned `Arc` handle is then
/// lock-free. Names are stored sorted so snapshots iterate in a
/// deterministic order.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Returns (creating on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Returns (creating on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Returns (creating on first use) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Snapshot of every counter value, sorted by name.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every gauge value, sorted by name.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn gauge_values(&self) -> BTreeMap<String, u64> {
        self.gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every histogram, sorted by name, as
    /// `(count, sum, non-empty buckets)`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn histogram_values(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), (v.count(), v.sum(), v.nonzero_buckets())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::default();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.raise(3); // lower: no-op
        assert_eq!(g.get(), 7);
        g.raise(9);
        assert_eq!(r.gauge("g").get(), 9);
    }

    #[test]
    fn registry_returns_same_instance() {
        let r = Registry::default();
        let a = r.counter("same");
        let b = r.counter("same");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn quantile_single_bucket_interpolates_midpoints() {
        let h = Histogram::default();
        // Four samples, all in bucket 7 ([64, 128)).
        for v in [64, 80, 100, 127] {
            h.record(v);
        }
        // Sub-interval width 64/4 = 16; midpoints 72, 88, 104, 120.
        assert_eq!(h.quantile(0.25), Some(72));
        assert_eq!(h.quantile(0.5), Some(88));
        assert_eq!(h.quantile(0.75), Some(104));
        assert_eq!(h.quantile(1.0), Some(120));
        // q = 0 clamps to rank 1 (the lowest sub-interval).
        assert_eq!(h.quantile(0.0), Some(72));
        // Every estimate stays inside the bucket's bounds.
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((64..128).contains(&v), "estimate {v} escaped bucket");
        }
    }

    #[test]
    fn quantile_respects_log2_bucket_boundaries() {
        let h = Histogram::default();
        // One sample per bucket, exactly on power-of-two boundaries:
        // 1 → bucket 1, 2 → bucket 2, 4 → bucket 3, 8 → bucket 4.
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        // Rank k lands in the k-th bucket; single-sample buckets
        // report their midpoint.
        assert_eq!(h.quantile(0.25), Some(1)); // bucket [1,2): midpoint 1
        assert_eq!(h.quantile(0.5), Some(3)); // bucket [2,4): midpoint 3
        assert_eq!(h.quantile(0.75), Some(6)); // bucket [4,8): midpoint 6
        assert_eq!(h.quantile(1.0), Some(12)); // bucket [8,16): midpoint 12
    }

    #[test]
    fn quantile_handles_zero_and_unbounded_buckets() {
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
        h.record(u64::MAX);
        // Rank 3 of 3 lands in the final unbounded bucket → lower bound.
        assert_eq!(h.quantile(1.0), Some(1 << 63));
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::default();
        for v in [0u64, 3, 3, 17, 900, 900, 4096, 1 << 40] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=20 {
            let v = h.quantile(f64::from(i) / 20.0).unwrap();
            assert!(v >= last, "quantile decreased at q={}", f64::from(i) / 20.0);
            last = v;
        }
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::default();
        r.counter("b").inc();
        r.counter("a").add(2);
        let names: Vec<String> = r.counter_values().into_keys().collect();
        assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
    }
}
