//! Thread-safe metric primitives and a named registry.
//!
//! All primitives are lock-free after creation: a [`Counter`] or
//! [`Histogram`] handle obtained from the [`Registry`] can be hammered
//! from any number of threads with only atomic adds. Values recorded
//! here must be *deterministic program facts* (counts, sizes, bucket
//! tallies) — wall-clock readings belong in [`crate::span`], never in
//! a metric, so metric snapshots are stable across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (atomic max).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `k` (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket boundaries are powers of two, so recording is a
/// `leading_zeros` and one atomic add — cheap enough for per-access
/// use — and the bucket layout is identical on every platform and
/// every run (no dynamic rebucketing).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The `[low, high)` range of bucket `i` (`high` is `None` for the
    /// final, unbounded-above bucket).
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        match i {
            0 => (0, Some(1)),
            64 => (1 << 63, None),
            _ => (1 << (i - 1), Some(1 << i)),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Count in bucket `i`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The non-empty buckets as `(index, count)`, lowest first.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// One histogram snapshot: `(count, sum, non-empty buckets)`, where
/// each bucket is `(index, samples)`.
pub type HistogramSnapshot = (u64, u64, Vec<(usize, u64)>);

/// A named, thread-safe registry of metrics.
///
/// Lookup takes a short-lived lock; the returned `Arc` handle is then
/// lock-free. Names are stored sorted so snapshots iterate in a
/// deterministic order.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Returns (creating on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Returns (creating on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Returns (creating on first use) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Snapshot of every counter value, sorted by name.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every gauge value, sorted by name.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn gauge_values(&self) -> BTreeMap<String, u64> {
        self.gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every histogram, sorted by name, as
    /// `(count, sum, non-empty buckets)`.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn histogram_values(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), (v.count(), v.sum(), v.nonzero_buckets())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::default();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.raise(3); // lower: no-op
        assert_eq!(g.get(), 7);
        g.raise(9);
        assert_eq!(r.gauge("g").get(), 9);
    }

    #[test]
    fn registry_returns_same_instance() {
        let r = Registry::default();
        let a = r.counter("same");
        let b = r.counter("same");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::default();
        r.counter("b").inc();
        r.counter("a").add(2);
        let names: Vec<String> = r.counter_values().into_keys().collect();
        assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
    }
}
