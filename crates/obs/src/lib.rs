//! # dl-obs
//!
//! Zero-dependency observability for the delinquent-loads pipeline:
//! hierarchical wall-clock [`span`]s, a thread-safe [`metrics`]
//! registry (counters, gauges, log2-bucket histograms), a minimal
//! [`json`] value model, and a [`manifest`] builder that renders both
//! the machine-readable `RUN_MANIFEST.json` and a human `--profile`
//! text report.
//!
//! Design rule: **recorded values are deterministic, timings are
//! segregated**. Counters and histograms only ever hold values the
//! program computed (memo hits, miss counts, bucket tallies); wall
//! clock readings live exclusively in span records and in manifest
//! fields whose key ends in `secs`, so [`manifest::Manifest::zero_timings`]
//! can strip every nondeterministic byte and golden tests can assert
//! the full manifest structure.
//!
//! # Example
//!
//! ```
//! use dl_obs::metrics::Registry;
//! use dl_obs::span::Spans;
//!
//! let registry = Registry::default();
//! let spans = Spans::default();
//! {
//!     let warm = spans.enter("repro/warm");
//!     registry.counter("memo.miss").add(3);
//!     let _sim = warm.child("simulate");
//! } // guards record on drop
//! assert_eq!(registry.counter("memo.miss").get(), 3);
//! assert_eq!(spans.records().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod metrics;
pub mod span;
pub mod trace;

pub use json::Json;
pub use manifest::Manifest;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use span::{current_tid, SpanGuard, SpanRecord, Spans};
pub use trace::chrome_trace;

/// Output mode selected by the `DL_OBS` environment variable.
///
/// * `off` (or unset / unrecognized) — no observability output.
/// * `text` — a human-readable profile report on stderr.
/// * `json` — a `RUN_MANIFEST.json` written next to the other outputs.
///
/// Explicit CLI flags (`--profile`, `--manifest`) override the
/// environment in the binaries that support them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No observability output (the default).
    #[default]
    Off,
    /// Human-readable text report on stderr.
    Text,
    /// Machine-readable JSON manifest.
    Json,
}

impl ObsMode {
    /// Parses a `DL_OBS` value. Unrecognized values fall back to `Off`.
    #[must_use]
    pub fn parse(value: &str) -> Self {
        match value.trim().to_ascii_lowercase().as_str() {
            "text" | "1" | "on" => ObsMode::Text,
            "json" => ObsMode::Json,
            _ => ObsMode::Off,
        }
    }

    /// Reads the mode from the `DL_OBS` environment variable.
    #[must_use]
    pub fn from_env() -> Self {
        std::env::var("DL_OBS").map_or(ObsMode::Off, |v| ObsMode::parse(&v))
    }

    /// Whether any observability output is enabled.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != ObsMode::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(ObsMode::parse("off"), ObsMode::Off);
        assert_eq!(ObsMode::parse(""), ObsMode::Off);
        assert_eq!(ObsMode::parse("bogus"), ObsMode::Off);
        assert_eq!(ObsMode::parse("text"), ObsMode::Text);
        assert_eq!(ObsMode::parse("TEXT"), ObsMode::Text);
        assert_eq!(ObsMode::parse("json"), ObsMode::Json);
        assert!(ObsMode::Json.enabled());
        assert!(!ObsMode::Off.enabled());
    }
}
