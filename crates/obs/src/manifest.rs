//! The run manifest: a structured, machine-readable record of one
//! pipeline run (`RUN_MANIFEST.json`) plus its human text rendering.
//!
//! A manifest is an ordered JSON object with a fixed `schema` tag.
//! Wall-clock readings only ever appear under keys containing `sec`
//! (`secs`, `busy_secs`, `insts_per_sec`, …), so
//! [`Manifest::zero_timings`] can strip every nondeterministic byte;
//! golden tests assert the zeroed rendering is stable.

use crate::json::Json;
use crate::metrics::Registry;
use crate::span::Spans;

/// Schema tag written into every manifest.
pub const SCHEMA: &str = "dl-obs/1";

/// Builder for `RUN_MANIFEST.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    root: Json,
}

impl Manifest {
    /// Creates a manifest for the named command (`repro`, `bench`, …).
    #[must_use]
    pub fn new(command: &str) -> Self {
        Manifest {
            root: Json::obj()
                .with("schema", SCHEMA.into())
                .with("command", command.into()),
        }
    }

    /// Sets a top-level section.
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.root.set(key, value);
        self
    }

    /// Sets a top-level section in place.
    pub fn set(&mut self, key: &str, value: Json) {
        self.root.set(key, value);
    }

    /// Reads a top-level section.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.root.get(key)
    }

    /// Adds a `stages` section from finished spans: one entry per
    /// span, in completion order, as
    /// `{ "name": path, "secs": f, "start_secs": f }`. Thread ids are
    /// deliberately omitted — their assignment order is scheduling-
    /// dependent and would break deterministic byte-compares.
    #[must_use]
    pub fn with_stages(self, spans: &Spans) -> Self {
        // Spans complete in whatever order worker threads finish, so
        // the raw record order is nondeterministic under --jobs > 1.
        // Sort by path (then start time for repeated paths) so the
        // stage list — and the zeroed manifest built from it — is
        // byte-stable across schedules.
        let mut records = spans.records();
        records.sort_by(|a, b| {
            a.path
                .cmp(&b.path)
                .then_with(|| a.start_secs.total_cmp(&b.start_secs))
        });
        let stages = records
            .into_iter()
            .map(|r| {
                Json::obj()
                    .with("name", r.path.into())
                    .with("secs", r.secs.into())
                    .with("start_secs", r.start_secs.into())
            })
            .collect();
        self.with("stages", Json::Arr(stages))
    }

    /// Adds `counters` / `gauges` / `histograms` sections from a
    /// registry snapshot (sorted by name; empty sections omitted).
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        let counters = registry.counter_values();
        if !counters.is_empty() {
            let obj = counters
                .into_iter()
                .map(|(k, v)| (k, Json::U64(v)))
                .collect();
            self.root.set("counters", Json::Obj(obj));
        }
        let gauges = registry.gauge_values();
        if !gauges.is_empty() {
            let obj = gauges.into_iter().map(|(k, v)| (k, Json::U64(v))).collect();
            self.root.set("gauges", Json::Obj(obj));
        }
        let histograms = registry.histogram_values();
        if !histograms.is_empty() {
            let obj = histograms
                .into_iter()
                .map(|(name, (count, sum, buckets))| {
                    let b = buckets
                        .into_iter()
                        .map(|(i, n)| Json::obj().with("bucket", i.into()).with("count", n.into()))
                        .collect();
                    (
                        name,
                        Json::obj()
                            .with("count", count.into())
                            .with("sum", sum.into())
                            .with("buckets", Json::Arr(b)),
                    )
                })
                .collect();
            self.root.set("histograms", Json::Obj(obj));
        }
        self
    }

    /// Zeroes every number stored under a timing key — one containing
    /// `sec` or ending in `_us`/`_ms`/`_ns` — i.e. every
    /// wall-clock-derived value, leaving deterministic values
    /// untouched. Integer timestamps (e.g. trace-event `ts`/`dur`
    /// microseconds) are zeroed too, not just floats. Used by golden
    /// tests to pin the manifest *structure* without pinning timings.
    pub fn zero_timings(&mut self) {
        zero_timings_in(&mut self.root, false);
    }

    /// Renders the manifest as pretty-printed JSON.
    #[must_use]
    pub fn render(&self) -> String {
        self.root.render()
    }

    /// The underlying JSON value.
    #[must_use]
    pub fn json(&self) -> &Json {
        &self.root
    }
}

/// Whether values under `key` are wall-clock-derived and must be
/// zeroed for deterministic comparison.
fn is_timing_key(key: &str) -> bool {
    key.contains("sec") || key.ends_with("_us") || key.ends_with("_ms") || key.ends_with("_ns")
}

fn zero_timings_in(value: &mut Json, under_timing_key: bool) {
    match value {
        Json::F64(v) if under_timing_key => *v = 0.0,
        Json::U64(v) if under_timing_key => *v = 0,
        Json::I64(v) if under_timing_key => *v = 0,
        Json::Arr(items) => {
            for item in items {
                zero_timings_in(item, under_timing_key);
            }
        }
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                zero_timings_in(v, is_timing_key(k));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_command_are_first() {
        let m = Manifest::new("repro");
        let text = m.render();
        assert!(text.starts_with("{\n  \"schema\": \"dl-obs/1\",\n  \"command\": \"repro\""));
    }

    #[test]
    fn zero_timings_only_touches_sec_keys() {
        let mut m = Manifest::new("x")
            .with("hit_rate", Json::F64(0.75))
            .with("warm_secs", Json::F64(1.25))
            .with(
                "sim",
                Json::obj()
                    .with("insts_per_sec", Json::F64(1e6))
                    .with("instructions", Json::U64(5)),
            );
        m.zero_timings();
        assert_eq!(m.get("hit_rate"), Some(&Json::F64(0.75)));
        assert_eq!(m.get("warm_secs"), Some(&Json::F64(0.0)));
        let sim = m.get("sim").unwrap();
        assert_eq!(sim.get("insts_per_sec"), Some(&Json::F64(0.0)));
        assert_eq!(sim.get("instructions"), Some(&Json::U64(5)));
    }

    #[test]
    fn zero_timings_covers_integer_timestamps_and_unit_suffixes() {
        let mut m = Manifest::new("x")
            .with("ts_us", Json::U64(123_456))
            .with("skew_ns", Json::I64(-40))
            .with("lat_ms", Json::F64(1.5))
            .with("bucket_us", Json::Arr(vec![Json::U64(3), Json::U64(9)]))
            .with("focus", Json::U64(7)) // "us" not a suffix match
            .with("instructions", Json::U64(5));
        m.zero_timings();
        assert_eq!(m.get("ts_us"), Some(&Json::U64(0)));
        assert_eq!(m.get("skew_ns"), Some(&Json::I64(0)));
        assert_eq!(m.get("lat_ms"), Some(&Json::F64(0.0)));
        assert_eq!(
            m.get("bucket_us"),
            Some(&Json::Arr(vec![Json::U64(0), Json::U64(0)]))
        );
        assert_eq!(m.get("focus"), Some(&Json::U64(7)));
        assert_eq!(m.get("instructions"), Some(&Json::U64(5)));
    }

    #[test]
    fn zeroed_stage_timeline_is_deterministic() {
        let spans = Spans::default();
        spans.record("warm", 0.25);
        let mut m = Manifest::new("repro").with_stages(&spans);
        m.zero_timings();
        let Some(Json::Arr(stages)) = m.get("stages") else {
            panic!("stages missing");
        };
        assert_eq!(stages[0].get("secs"), Some(&Json::F64(0.0)));
        assert_eq!(stages[0].get("start_secs"), Some(&Json::F64(0.0)));
    }

    #[test]
    fn stages_come_from_spans() {
        let spans = Spans::default();
        spans.record("warm", 1.0);
        spans.record("tables/table3", 2.0);
        let m = Manifest::new("repro").with_stages(&spans);
        let Some(Json::Arr(stages)) = m.get("stages") else {
            panic!("stages missing");
        };
        assert_eq!(stages.len(), 2);
        // Stages are sorted by path, not completion order, so the
        // list is deterministic under any worker schedule.
        assert_eq!(
            stages[0].get("name"),
            Some(&Json::Str("tables/table3".into()))
        );
        assert_eq!(stages[0].get("secs"), Some(&Json::F64(2.0)));
        assert_eq!(stages[1].get("name"), Some(&Json::Str("warm".into())));

        // Recording the same spans in the opposite order renders the
        // identical stage list.
        let reversed = Spans::default();
        reversed.record("tables/table3", 2.0);
        reversed.record("warm", 1.0);
        let m2 = Manifest::new("repro").with_stages(&reversed);
        assert_eq!(m.get("stages"), m2.get("stages"));
    }
}
