//! A minimal JSON value model with deterministic rendering.
//!
//! Just enough JSON to write manifests without an external crate:
//! object keys keep insertion order (builders insert deterministically),
//! floats render with a fixed precision, and strings are escaped per
//! RFC 8259. No parser — this crate only ever *emits* JSON.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered with six decimal places.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    #[must_use]
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object, returning `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.set(key, value);
        self
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(pairs) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
            pair.1 = value;
        } else {
            pairs.push((key.to_owned(), value));
        }
    }

    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders pretty-printed JSON with a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                // Fixed precision keeps rendering deterministic and
                // diff-friendly; manifests never need more than µs.
                if v.is_finite() {
                    let _ = write!(out, "{v:.6}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj()
            .with("name", "x".into())
            .with("n", 3u64.into())
            .with("xs", Json::Arr(vec![1u64.into(), 2u64.into()]));
        let text = j.render();
        assert!(text.contains("\"name\": \"x\""));
        assert!(text.contains("\"n\": 3"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn floats_are_fixed_precision() {
        assert_eq!(Json::F64(1.0).render(), "1.000000\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut j = Json::obj().with("k", 1u64.into());
        j.set("k", 2u64.into());
        assert_eq!(j.get("k"), Some(&Json::U64(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::obj().render(), "{}\n");
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
    }
}
