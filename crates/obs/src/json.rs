//! A minimal JSON value model with deterministic rendering.
//!
//! Just enough JSON to write manifests without an external crate:
//! object keys keep insertion order (builders insert deterministically),
//! floats render with a fixed precision, and strings are escaped per
//! RFC 8259. [`Json::parse`] reads the same dialect back (any
//! RFC 8259 document, in fact) so tools like `dlc bench-diff` can
//! compare previously emitted files without an external crate.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered with six decimal places.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    #[must_use]
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object, returning `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.set(key, value);
        self
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(pairs) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
            pair.1 = value;
        } else {
            pairs.push((key.to_owned(), value));
        }
    }

    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parses an RFC 8259 JSON document.
    ///
    /// Integral numbers without a fraction or exponent become
    /// [`Json::U64`] (or [`Json::I64`] when negative); everything else
    /// numeric becomes [`Json::F64`]. Duplicate object keys keep the
    /// last value, matching [`Json::set`] semantics.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders pretty-printed JSON with a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                // Fixed precision keeps rendering deterministic and
                // diff-friendly; manifests never need more than µs.
                if v.is_finite() {
                    let _ = write!(out, "{v:.6}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {}", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte '{}' at byte {}", *c as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut obj = Json::obj();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(obj);
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        obj.set(&key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(obj);
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string at byte {}", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(format!("lone surrogate at byte {}", *pos));
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!("invalid low surrogate at byte {}", *pos));
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(c)
                                .ok_or_else(|| format!("invalid codepoint at byte {}", *pos))?,
                        );
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte in string at byte {}", *pos))
            }
            Some(_) => {
                // Copy one UTF-8 scalar (the input is a &str, so byte
                // boundaries are already valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid utf-8"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    // Called with *pos on the 'u'; consumes it plus four hex digits,
    // leaving *pos on the final digit (the caller advances past it).
    let hex = bytes
        .get(*pos + 1..*pos + 5)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
    let code =
        u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape at byte {}", *pos))?;
    *pos += 4;
    Ok(code)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut integral = true;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                integral = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if integral {
        if text.starts_with('-') {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj()
            .with("name", "x".into())
            .with("n", 3u64.into())
            .with("xs", Json::Arr(vec![1u64.into(), 2u64.into()]));
        let text = j.render();
        assert!(text.contains("\"name\": \"x\""));
        assert!(text.contains("\"n\": 3"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn floats_are_fixed_precision() {
        assert_eq!(Json::F64(1.0).render(), "1.000000\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut j = Json::obj().with("k", 1u64.into());
        j.set("k", 2u64.into());
        assert_eq!(j.get("k"), Some(&Json::U64(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::obj().render(), "{}\n");
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let j = Json::obj()
            .with("name", "x \"quoted\"\n".into())
            .with("count", 42u64.into())
            .with("neg", Json::I64(-7))
            .with("rate", Json::F64(1.5))
            .with("flag", true.into())
            .with("nothing", Json::Null)
            .with(
                "xs",
                Json::Arr(vec![1u64.into(), Json::Arr(vec![]), Json::obj()]),
            );
        assert_eq!(Json::parse(&j.render()), Ok(j));
    }

    #[test]
    fn parse_number_types() {
        assert_eq!(Json::parse("42"), Ok(Json::U64(42)));
        assert_eq!(Json::parse("-42"), Ok(Json::I64(-42)));
        assert_eq!(Json::parse("1.5"), Ok(Json::F64(1.5)));
        assert_eq!(Json::parse("-2.5e3"), Ok(Json::F64(-2500.0)));
        assert_eq!(Json::parse("18446744073709551615"), Ok(Json::U64(u64::MAX)));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#),
            Ok(Json::Str("a\"b\\c\ndAé".to_owned()))
        );
        // Surrogate pair → astral-plane character.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#),
            Ok(Json::Str("😀".to_owned()))
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\""), Ok(Json::Str("héllo".to_owned())));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err()); // lone surrogate
    }

    #[test]
    fn parse_accepts_whitespace_everywhere() {
        let j = Json::parse(" {\n \"a\" : [ 1 , 2 ] ,\t\"b\" : { } } ").unwrap();
        assert_eq!(
            j.get("a"),
            Some(&Json::Arr(vec![Json::U64(1), Json::U64(2)]))
        );
        assert_eq!(j.get("b"), Some(&Json::obj()));
    }
}
