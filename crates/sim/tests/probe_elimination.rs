//! Probe-elimination layer tests: the decode-time coalescing and
//! per-site line-predictor fast path must be measurement-invisible.
//! These tests target the two ways it could silently stop being so —
//! a stale line prediction surviving an eviction (a missing
//! generation bump), and the coalesced fast path drifting from the
//! per-access accounting the observatory performs on the slow path.

use dl_mips::parse::parse_asm;
use dl_mips::program::Program;
use dl_sim::{run, run_full, CacheConfig, Engine, MemoryConfig, ObserveConfig, Policy, RunConfig};
use dl_testkit::{progen, Rng};

/// A set-thrashing kernel: five loads per trip, four of them 4 KiB
/// apart — the same set in any small L1 — so the first slot's line is
/// evicted and refetched every iteration. Each eviction must bump the
/// predictor generation; a stale `(line, generation)` entry surviving
/// would let the fast path claim hits the slow walk counts as misses.
fn thrash_program() -> Program {
    parse_asm(
        "main:\n\
         \taddiu $sp, $sp, -16384\n\
         \tli $s0, 300\n\
         .Lthrash:\n\
         \tlw $t0, 0($sp)\n\
         \tlw $t1, 4096($sp)\n\
         \tlw $t2, 8192($sp)\n\
         \tlw $t3, 12288($sp)\n\
         \tlw $t4, 0($sp)\n\
         \taddiu $s0, $s0, -1\n\
         \tbgtz $s0, .Lthrash\n\
         \tli $v0, 10\n\
         \tli $a0, 0\n\
         \tsyscall\n",
    )
    .unwrap()
}

/// Line-predictor generation invalidation: under tree-PLRU and random
/// eviction (and LRU as the control), a set-thrashing run with the
/// fast path on must match both the probe-layer escape hatch and the
/// step engine byte for byte.
#[test]
fn line_predictor_invalidates_on_eviction_under_plru_and_random() {
    let program = thrash_program();
    for policy in [Policy::Lru, Policy::Plru, Policy::Random] {
        let mk = |engine, probe_fast| RunConfig {
            engine,
            probe_fast,
            cache: CacheConfig::kb(8, 2),
            memory: MemoryConfig {
                policy,
                ..MemoryConfig::default()
            },
            ..RunConfig::default()
        };
        let fast = run(&program, &mk(Engine::Block, true)).unwrap();
        let plain = run(&program, &mk(Engine::Block, false)).unwrap();
        let step = run(&program, &mk(Engine::Step, true)).unwrap();
        assert_eq!(fast, plain, "fast path perturbs measurement ({policy:?})");
        assert_eq!(fast, step, "block diverges from step ({policy:?})");
        // The assertion is vacuous unless the kernel actually evicts:
        // the thrashed slot must re-miss on (nearly) every trip.
        assert!(
            fast.load_misses_total >= 300,
            "kernel failed to thrash under {policy:?}: {} misses",
            fast.load_misses_total
        );
    }
}

/// Observatory differential: per-site epoch miss totals collected on
/// the slow (observed) path equal the per-site miss counts the
/// coalesced fast path records — the fast path changes throughput,
/// never the measurement.
#[test]
fn fast_path_preserves_observatory_site_totals() {
    let mut rng = Rng::new(0x0B5E_EE01);
    let mut any_misses = false;
    for _ in 0..8 {
        let program = parse_asm(&progen::arb_stack_heavy_program(&mut rng)).unwrap();
        let base = RunConfig {
            cache: CacheConfig::kb(8, 2),
            ..RunConfig::default()
        };
        let observed = run_full(
            &program,
            &RunConfig {
                observe: Some(ObserveConfig { epoch_len: 64 }),
                ..base.clone()
            },
        )
        .unwrap();
        let obs = observed.observatory.expect("observatory collected");
        let fast = run(
            &program,
            &RunConfig {
                engine: Engine::Block,
                probe_fast: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(
            obs.site_totals(),
            fast.load_misses,
            "fast path changes per-site miss totals"
        );
        any_misses |= fast.load_misses_total > 0;
    }
    assert!(any_misses, "every generated program ran miss-free");
}
