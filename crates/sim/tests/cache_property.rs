//! Property tests: the optimized cache model agrees with a naive
//! reference implementation of set-associative LRU on arbitrary access
//! streams, and basic conservation laws hold.
//!
//! The streams deliberately include repeat-heavy segments (same
//! address, same block) so the MRU fast path in `Cache::access` is
//! exercised against the reference on every run, not just the generic
//! walk-the-set path.

use std::collections::VecDeque;

use dl_sim::{Cache, CacheConfig};
use dl_testkit::{cases, Rng};

/// A transparently-correct LRU model: one deque of tags per set,
/// most-recent at the front.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    block_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); cfg.sets() as usize],
            assoc: cfg.assoc() as usize,
            block_shift: cfg.block_bytes().trailing_zeros(),
            set_mask: u64::from(cfg.sets()) - 1,
        }
    }

    fn access(&mut self, addr: u32) -> bool {
        let block = u64::from(addr) >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_mask.count_ones();
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            let t = q.remove(pos).expect("found above");
            q.push_front(t);
            true
        } else {
            q.push_front(tag);
            if q.len() > self.assoc {
                q.pop_back();
            }
            false
        }
    }
}

fn arb_config(rng: &mut Rng) -> CacheConfig {
    let size = 1024 << rng.index(3); // 1-4 KiB keeps conflict pressure high
    let assoc = 1 << rng.index(4);
    let block = 16 << rng.index(3);
    CacheConfig::new(size, assoc, block).expect("valid geometry")
}

/// Address streams biased toward reuse: a small pool of hot addresses,
/// random cold ones, and immediate-repeat runs (same address or same
/// block) that land on the MRU fast path.
fn arb_stream(rng: &mut Rng) -> Vec<u32> {
    let len = 1 + rng.index(600);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let addr = if rng.chance(0.5) {
            0x1000_0000 + rng.range_u32(0, 64) * 4
        } else {
            0x2000_0000 + rng.range_u32(0, 100_000) * 4
        };
        out.push(addr);
        // With probability 1/2, dwell on this block a few accesses:
        // exact repeats and same-block neighbours (MRU hits).
        if rng.chance(0.5) {
            for _ in 0..rng.index(4) {
                if out.len() == len {
                    break;
                }
                out.push(addr ^ (rng.range_u32(0, 4) * 4));
            }
        }
    }
    out
}

#[test]
fn matches_reference_lru() {
    cases(128, 0xcac4e1, |rng| {
        let cfg = arb_config(rng);
        let stream = arb_stream(rng);
        let mut fast = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &addr in &stream {
            assert_eq!(
                fast.access(addr),
                reference.access(addr),
                "divergence at {addr:#x} under {cfg}"
            );
        }
    });
}

/// Long dwell runs on one block: every access after the first must take
/// the MRU fast path and still agree with the reference model.
#[test]
fn mru_fast_path_matches_reference_on_dwell_runs() {
    cases(128, 0xcac4e2, |rng| {
        let cfg = arb_config(rng);
        let mut fast = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for _ in 0..=rng.index(40) {
            let base = rng.range_u32(0, 1 << 20) * 4;
            let dwell = 1 + rng.index(16);
            for _ in 0..dwell {
                let addr = base ^ (rng.range_u32(0, cfg.block_bytes() / 4) * 4);
                assert_eq!(
                    fast.access(addr),
                    reference.access(addr),
                    "divergence at {addr:#x} under {cfg}"
                );
            }
        }
        assert!(fast.hits() + fast.misses() > 0);
    });
}

#[test]
fn hits_plus_misses_equals_accesses() {
    cases(128, 0xcac4e3, |rng| {
        let cfg = arb_config(rng);
        let stream = arb_stream(rng);
        let mut c = Cache::new(cfg);
        for &addr in &stream {
            c.access(addr);
        }
        assert_eq!(c.hits() + c.misses(), stream.len() as u64);
    });
}

#[test]
fn first_touch_of_each_block_misses() {
    cases(128, 0xcac4e4, |rng| {
        let cfg = arb_config(rng);
        let stream = arb_stream(rng);
        let mut c = Cache::new(cfg);
        let mut seen = std::collections::BTreeSet::new();
        for &addr in &stream {
            let block = addr / cfg.block_bytes();
            let hit = c.access(addr);
            if seen.insert(block) {
                assert!(!hit, "cold access hit at {addr:#x}");
            }
        }
    });
}

#[test]
fn repeat_access_always_hits() {
    cases(256, 0xcac4e5, |rng| {
        let cfg = arb_config(rng);
        let addr = rng.range_u32(0, 0x4000_0000);
        let mut c = Cache::new(cfg);
        c.access(addr);
        assert!(c.access(addr));
        assert!(c.access(addr));
    });
}
