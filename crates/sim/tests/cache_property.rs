//! Property tests: the optimized cache model agrees with a naive
//! reference implementation of set-associative LRU on arbitrary access
//! streams, and basic conservation laws hold.

use std::collections::VecDeque;

use proptest::prelude::*;

use dl_sim::{Cache, CacheConfig};

/// A transparently-correct LRU model: one deque of tags per set,
/// most-recent at the front.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    block_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); cfg.sets() as usize],
            assoc: cfg.assoc() as usize,
            block_shift: cfg.block_bytes().trailing_zeros(),
            set_mask: u64::from(cfg.sets()) - 1,
        }
    }

    fn access(&mut self, addr: u32) -> bool {
        let block = u64::from(addr) >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_mask.count_ones();
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            let t = q.remove(pos).expect("found above");
            q.push_front(t);
            true
        } else {
            q.push_front(tag);
            if q.len() > self.assoc {
                q.pop_back();
            }
            false
        }
    }
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (0u32..3, 0u32..4, 0u32..3).prop_map(|(s, a, b)| {
        let size = 1024 << s; // 1-4 KiB keeps conflict pressure high
        let assoc = 1 << a;
        let block = 16 << b;
        CacheConfig::new(size, assoc, block).expect("valid geometry")
    })
}

/// Address streams biased toward reuse (small pool of hot addresses
/// plus random ones) to exercise both hits and evictions.
fn arb_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..64).prop_map(|i| 0x1000_0000 + i * 4),
            (0u32..100_000).prop_map(|i| 0x2000_0000 + i * 4),
        ],
        1..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_reference_lru(cfg in arb_config(), stream in arb_stream()) {
        let mut fast = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &addr in &stream {
            prop_assert_eq!(fast.access(addr), reference.access(addr), "at {:#x}", addr);
        }
    }

    #[test]
    fn hits_plus_misses_equals_accesses(cfg in arb_config(), stream in arb_stream()) {
        let mut c = Cache::new(cfg);
        for &addr in &stream {
            c.access(addr);
        }
        prop_assert_eq!(c.hits() + c.misses(), stream.len() as u64);
    }

    #[test]
    fn first_touch_of_each_block_misses(cfg in arb_config(), stream in arb_stream()) {
        let mut c = Cache::new(cfg);
        let mut seen = std::collections::BTreeSet::new();
        for &addr in &stream {
            let block = addr / cfg.block_bytes();
            let hit = c.access(addr);
            if seen.insert(block) {
                prop_assert!(!hit, "cold access hit at {:#x}", addr);
            }
        }
    }

    #[test]
    fn repeat_access_always_hits(cfg in arb_config(), addr in 0u32..0x4000_0000) {
        let mut c = Cache::new(cfg);
        c.access(addr);
        prop_assert!(c.access(addr));
        prop_assert!(c.access(addr));
    }
}
