//! Differential property tests: the block-cached engine must be
//! observationally identical to the reference `step()` interpreter on
//! arbitrary programs — same `RunResult` byte for byte (including
//! `exec_counts` and three-Cs classes), same trap at the same
//! instruction, same `TraceRecord` stream, under every configuration
//! (step limits, tracing, prefetch, miss classification).

use dl_mips::parse::parse_asm;
use dl_mips::program::Program;
use dl_sim::trace::capture_trace;
use dl_sim::{
    run, CacheConfig, Engine, Inclusion, L2Config, MemoryConfig, Policy, PrefetchConfig, RunConfig,
    RunResult, StridePrefetchConfig, Trap,
};
use dl_testkit::{cases, progen, Rng};

/// A random multi-function program rich in memory traffic and control
/// flow: stack reloads, register-based dereferences, global accesses,
/// pointer arithmetic, stores, division (trap potential), calls, and
/// arbitrary branch/jump structure — the input space over which the
/// two engines could plausibly diverge.
fn arb_program(rng: &mut Rng) -> Program {
    let nfuncs = 1 + rng.index(3);
    let mut s = String::new();
    for fi in 0..nfuncs {
        if fi == 0 {
            s.push_str("main:\n");
        } else {
            s.push_str(&format!("f{fi}:\n"));
        }
        let nblocks = 1 + rng.index(4);
        for b in 0..nblocks {
            s.push_str(&format!(".L{fi}_{b}:\n"));
            for _ in 0..1 + rng.index(6) {
                let (d, a, c) = (rng.index(8), rng.index(8), rng.index(8));
                match rng.index(10) {
                    0 => s.push_str(&format!("\tlw $t{d}, {}($sp)\n", 4 * rng.index(16))),
                    1 => s.push_str(&format!("\tlw $t{d}, {}($t{a})\n", 4 * rng.index(8))),
                    2 => s.push_str(&format!("\tlw $t{d}, {}($gp)\n", 4 * rng.index(16))),
                    3 => s.push_str(&format!(
                        "\taddiu $t{d}, $t{a}, {}\n",
                        rng.range_i32(-8, 64)
                    )),
                    4 => s.push_str(&format!("\tsll $t{d}, $t{a}, {}\n", 1 + rng.index(3))),
                    5 => s.push_str(&format!("\tli $t{d}, {}\n", rng.index(4096))),
                    6 => s.push_str(&format!("\tsw $t{d}, {}($sp)\n", 4 * rng.index(16))),
                    7 => s.push_str(&format!("\tslt $t{d}, $t{a}, $t{c}\n")),
                    8 => s.push_str(&format!("\tdiv $t{d}, $t{a}, $t{c}\n")),
                    _ => s.push_str(&format!("\taddu $t{d}, $t{a}, $t{c}\n")),
                }
            }
            let target = rng.index(nblocks);
            match rng.index(5) {
                0 => {}
                1 => s.push_str(&format!("\tj .L{fi}_{target}\n")),
                2 if nfuncs > 1 => s.push_str(&format!("\tjal f{}\n", 1 + rng.index(nfuncs - 1))),
                3 => s.push_str(&format!(
                    "\tslt $t{}, $t{}, $t{}\n\tbeq $t0, $zero, .L{fi}_{target}\n",
                    rng.index(2),
                    rng.index(8),
                    rng.index(8)
                )),
                _ => s.push_str(&format!(
                    "\tbne $t{}, $zero, .L{fi}_{target}\n",
                    rng.index(8)
                )),
            }
        }
        s.push_str("\tjr $ra\n");
    }
    parse_asm(&s).expect("generated asm parses")
}

/// Runs `program` under both engines with otherwise identical
/// configuration and asserts the outcomes are identical — the
/// `RunResult` on success (full structural equality: every counter,
/// every per-site table), the `Trap` on failure.
fn assert_engines_agree(program: &Program, base: &RunConfig) -> Result<RunResult, Trap> {
    let step = run(
        program,
        &RunConfig {
            engine: Engine::Step,
            ..base.clone()
        },
    );
    let block = run(
        program,
        &RunConfig {
            engine: Engine::Block,
            ..base.clone()
        },
    );
    assert_eq!(step, block, "engines diverge");
    block
}

#[test]
fn random_programs_agree_across_engines() {
    let mut trapped = 0u32;
    let mut completed = 0u32;
    cases(60, 0xB10C_D1FF, |rng| {
        let program = arb_program(rng);
        // Small random step limits exercise mid-block splitting; the
        // larger ones let short programs complete.
        let max_steps = match rng.index(3) {
            0 => 1 + rng.below(50),
            1 => 1 + rng.below(5_000),
            _ => 200_000,
        };
        let config = RunConfig {
            max_steps,
            input: vec![rng.range_i32(-4, 100); 4],
            ..RunConfig::default()
        };
        match assert_engines_agree(&program, &config) {
            Ok(_) => completed += 1,
            Err(_) => trapped += 1,
        }
    });
    // The generator must exercise both outcomes or the test is weaker
    // than it claims.
    assert!(completed > 0, "no random program ran to completion");
    assert!(trapped > 0, "no random program trapped");
}

#[test]
fn random_programs_agree_with_classification() {
    cases(20, 0x3C15, |rng| {
        let program = arb_program(rng);
        let config = RunConfig {
            max_steps: 100_000,
            classify_misses: true,
            cache: CacheConfig::kb(8, 2),
            ..RunConfig::default()
        };
        if let Ok(result) = assert_engines_agree(&program, &config) {
            // Classification must actually have run for the equality
            // to mean anything.
            assert!(result.cache_profile.is_some());
            assert!(result.load_miss_classes.is_some());
        }
    });
}

#[test]
fn random_programs_agree_with_prefetch() {
    cases(20, 0x9F37, |rng| {
        let program = arb_program(rng);
        let sites: Vec<usize> = (0..program.insts.len())
            .filter(|_| rng.index(4) == 0)
            .collect();
        let config = RunConfig {
            max_steps: 100_000,
            prefetch: Some(PrefetchConfig::next_line(sites)),
            ..RunConfig::default()
        };
        let _ = assert_engines_agree(&program, &config);
    });
}

#[test]
fn random_programs_agree_on_traces() {
    cases(30, 0x7AACE, |rng| {
        let program = arb_program(rng);
        let mk = |engine| RunConfig {
            max_steps: 100_000,
            engine,
            ..RunConfig::default()
        };
        let step = capture_trace(&program, &mk(Engine::Step));
        let block = capture_trace(&program, &mk(Engine::Block));
        match (step, block) {
            (Ok((st, sr)), Ok((bt, br))) => {
                assert_eq!(st, bt, "trace streams diverge");
                assert_eq!(sr, br, "traced results diverge");
            }
            (Err(st), Err(bt)) => assert_eq!(st, bt, "traps diverge under tracing"),
            (s, b) => panic!("one engine trapped, the other did not: {s:?} vs {b:?}"),
        }
    });
}

/// Stack-slot-heavy programs — dense `$sp`-relative runs that the
/// block engine fuses into same-line coalescing groups — agree with
/// the step engine, including when a small `max_steps` limit lands in
/// the middle of a decoded group. These programs raise no trap other
/// than `StepLimit` by construction, so any other divergence or fault
/// is a coalescing bug.
#[test]
fn stack_heavy_programs_agree_including_mid_group_limits() {
    let mut completed = 0u32;
    let mut limited = 0u32;
    cases(40, 0x57AC_C0A1, |rng| {
        let program = parse_asm(&progen::arb_stack_heavy_program(rng)).unwrap();
        // Tiny limits land inside coalescing groups (forcing the
        // exact-step replay path); the large tier lets the loop finish
        // so whole groups retire on the fast path.
        let max_steps = match rng.index(3) {
            0 => 1 + rng.below(40),
            1 => 1 + rng.below(400),
            _ => 200_000,
        };
        let config = RunConfig {
            max_steps,
            ..RunConfig::default()
        };
        match assert_engines_agree(&program, &config) {
            Ok(_) => completed += 1,
            Err(Trap::StepLimit { .. }) => limited += 1,
            Err(t) => panic!("stack-heavy program must only step-limit, got {t:?}"),
        }
    });
    assert!(completed > 0, "no stack-heavy program completed");
    assert!(limited > 0, "no limit landed mid-program");
}

/// `max_steps` is exact inside a coalescing group: four same-line
/// `$sp` loads plus a store fuse under the block engine, and a limit
/// landing on each member must still report `StepLimit` at precisely
/// that instruction count, agreeing with the step engine.
#[test]
fn step_limit_is_exact_mid_coalescing_group() {
    let program = parse_asm(
        "main:\n\tlw $t0, 0($sp)\n\tlw $t1, 4($sp)\n\tlw $t2, 8($sp)\n\tlw $t3, 12($sp)\n\tsw $t0, 0($sp)\n\tjr $ra\n",
    )
    .unwrap();
    // 6 instructions total (including jr).
    for limit in 1..=5 {
        let config = RunConfig {
            max_steps: limit,
            ..RunConfig::default()
        };
        assert_eq!(
            assert_engines_agree(&program, &config),
            Err(Trap::StepLimit { limit }),
            "limit {limit} not exact mid-group"
        );
    }
    let config = RunConfig {
        max_steps: 6,
        ..RunConfig::default()
    };
    assert_engines_agree(&program, &config).expect("exactly enough steps");
}

/// `max_steps` is exact under the block engine: a limit landing in the
/// middle of a decoded block must report `StepLimit` without running
/// past it, and a limit of exactly the program length must succeed.
#[test]
fn step_limit_is_exact_mid_block() {
    let program =
        parse_asm("main:\n\tli $t0, 1\n\tli $t1, 2\n\tli $t2, 3\n\tli $t3, 4\n\tjr $ra\n").unwrap();
    // 5 instructions total (including jr).
    for limit in 1..=4 {
        let config = RunConfig {
            max_steps: limit,
            engine: Engine::Block,
            ..RunConfig::default()
        };
        assert_eq!(
            run(&program, &config),
            Err(Trap::StepLimit { limit }),
            "limit {limit} not exact"
        );
    }
    let config = RunConfig {
        max_steps: 5,
        engine: Engine::Block,
        ..RunConfig::default()
    };
    run(&program, &config).expect("exactly enough steps");
}

/// Traps attribute to the precise instruction index under the block
/// engine, even when the faulting instruction sits mid-block after
/// fusable neighbours.
#[test]
fn traps_attribute_to_exact_instruction() {
    // Index 2 divides by zero ($t9 is never written).
    let program =
        parse_asm("main:\n\tli $t0, 7\n\tli $t1, 3\n\tdiv $t2, $t0, $t9\n\tjr $ra\n").unwrap();
    for engine in [Engine::Step, Engine::Block] {
        let config = RunConfig {
            engine,
            ..RunConfig::default()
        };
        assert_eq!(
            run(&program, &config),
            Err(Trap::DivByZero { at: 2 }),
            "wrong attribution under {engine}"
        );
    }

    // Index 1 loads from an unmapped address.
    let program = parse_asm("main:\n\tli $t0, 64\n\tlw $t1, 0($t0)\n\tjr $ra\n").unwrap();
    for engine in [Engine::Step, Engine::Block] {
        let config = RunConfig {
            engine,
            ..RunConfig::default()
        };
        match run(&program, &config) {
            Err(Trap::Mem { at: 1, .. }) => {}
            other => panic!("expected mem trap at 1 under {engine}, got {other:?}"),
        }
    }
}

/// Every memory-system configuration the matrix table sweeps: each
/// policy, alone and behind each L2 inclusion mode, with and without
/// the stride prefetcher.
fn memory_matrix() -> Vec<MemoryConfig> {
    let mut configs = Vec::new();
    for policy in [Policy::Lru, Policy::Plru, Policy::Random] {
        for l2 in [
            None,
            Some(L2Config::kb(64, 8, Inclusion::Inclusive)),
            Some(L2Config::kb(64, 8, Inclusion::Exclusive)),
        ] {
            for prefetch in [None, Some(StridePrefetchConfig::degree(2))] {
                configs.push(MemoryConfig {
                    policy,
                    l2,
                    prefetch,
                });
            }
        }
    }
    configs
}

/// Step ≡ block across the full policy × hierarchy × prefetch matrix,
/// on access patterns chosen to actually stress each dimension
/// (strided scans train the prefetcher and sweep PLRU sets, pointer
/// chases defeat it, random programs cover the rest).
#[test]
fn memory_matrix_agrees_across_engines() {
    let mut programs: Vec<Program> = vec![
        parse_asm(&progen::strided_scan_program(16, 600)).unwrap(),
        parse_asm(&progen::pointer_chase_program(48, 40, 4)).unwrap(),
    ];
    let mut rng = Rng::new(0x00AB_5E11);
    for _ in 0..2 {
        programs.push(arb_program(&mut rng));
    }
    // Coalescing groups must agree under every policy/hierarchy/
    // prefetch shape, not just the default walk.
    programs.push(parse_asm(&progen::arb_stack_heavy_program(&mut rng)).unwrap());
    for memory in memory_matrix() {
        for (pi, program) in programs.iter().enumerate() {
            let config = RunConfig {
                max_steps: 100_000,
                cache: CacheConfig::kb(8, 4),
                memory,
                ..RunConfig::default()
            };
            // Random programs may legitimately trap; engine agreement
            // on the trap is already asserted inside the helper.
            if let Ok(result) = assert_engines_agree(program, &config) {
                if memory.l2.is_some() {
                    assert_eq!(
                        result.l2_hits + result.l2_misses,
                        result.dcache_misses + result.prefetch_fills,
                        "L2 sees every L1 fill ({memory}, program {pi})"
                    );
                }
                result
                    .check_consistency()
                    .unwrap_or_else(|e| panic!("{memory}, program {pi}: {e}"));
            }
        }
    }
}

/// Rich-config runs must not perturb the measurement record relative
/// to a plain run when observability is layered on: classification +
/// observatory + matrix config still equals the bare matrix run.
#[test]
fn matrix_observability_is_zero_perturbation() {
    let program = parse_asm(&progen::strided_scan_program(8, 500)).unwrap();
    for memory in [
        MemoryConfig {
            policy: Policy::Plru,
            l2: Some(L2Config::kb(64, 8, Inclusion::Exclusive)),
            prefetch: None,
        },
        MemoryConfig {
            policy: Policy::Random,
            l2: Some(L2Config::kb(64, 8, Inclusion::Inclusive)),
            prefetch: Some(StridePrefetchConfig::degree(2)),
        },
    ] {
        let plain = RunConfig {
            max_steps: 100_000,
            memory,
            ..RunConfig::default()
        };
        let bare = assert_engines_agree(&program, &plain).expect("bare run completes");
        let observed = RunConfig {
            classify_misses: true,
            observe: Some(dl_sim::ObserveConfig::default()),
            ..plain.clone()
        };
        let rich = assert_engines_agree(&program, &observed).expect("observed run completes");
        assert_eq!(rich.load_misses, bare.load_misses, "{memory}");
        assert_eq!(rich.load_hits, bare.load_hits, "{memory}");
        assert_eq!(rich.l2_hits, bare.l2_hits, "{memory}");
        assert_eq!(rich.l2_misses, bare.l2_misses, "{memory}");
        assert_eq!(rich.prefetch_fills, bare.prefetch_fills, "{memory}");
        assert_eq!(rich.prefetch_useful, bare.prefetch_useful, "{memory}");
        assert!(rich.cache_profile.is_some());
    }
}

/// The stride prefetcher must demonstrably hide misses on a strided
/// scan (trained per-PC), and win nothing on a pointer chase whose
/// address stream carries no stride.
#[test]
fn stride_prefetcher_hides_streaming_misses_only() {
    let prefetch = MemoryConfig {
        prefetch: Some(StridePrefetchConfig::degree(2)),
        ..MemoryConfig::default()
    };
    let scan = parse_asm(&progen::strided_scan_program(32, 900)).unwrap();
    let base = run(&scan, &RunConfig::default()).unwrap();
    let pf = run(
        &scan,
        &RunConfig {
            memory: prefetch,
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert!(base.load_misses_total > 500, "scan misses in the base run");
    assert!(
        pf.load_misses_total * 4 <= base.load_misses_total,
        "stride prefetch barely helped: {} vs {}",
        pf.load_misses_total,
        base.load_misses_total
    );
    assert!(pf.prefetch_useful > 0);

    let chase = parse_asm(&progen::pointer_chase_program(64, 400, 2)).unwrap();
    let base = run(&chase, &RunConfig::default()).unwrap();
    let pf = run(
        &chase,
        &RunConfig {
            memory: prefetch,
            ..RunConfig::default()
        },
    )
    .unwrap();
    // The chasing site's address stream is load-fed: misses on the
    // walk may not improve beyond what the (strided) build phase and
    // payload loads earn.
    assert!(
        pf.load_misses_total * 10 >= base.load_misses_total * 7,
        "pointer chase should not be prefetchable: {} vs {}",
        pf.load_misses_total,
        base.load_misses_total
    );
}

/// Random replacement is seeded from `RunConfig::seed`: identical
/// seeds agree byte-for-byte across engines (already swept above) and
/// across repeated runs; different seeds genuinely change evictions.
#[test]
fn random_policy_is_seed_deterministic() {
    let program = parse_asm(&progen::strided_scan_program(32, 800)).unwrap();
    let mk = |seed: u64, engine| RunConfig {
        seed,
        engine,
        cache: CacheConfig::kb(8, 4),
        memory: MemoryConfig {
            policy: Policy::Random,
            ..MemoryConfig::default()
        },
        ..RunConfig::default()
    };
    let a = run(&program, &mk(7, Engine::Block)).unwrap();
    let b = run(&program, &mk(7, Engine::Block)).unwrap();
    let c = run(&program, &mk(7, Engine::Step)).unwrap();
    assert_eq!(a, b, "same seed must reproduce");
    assert_eq!(a, c, "seeded randomness diverges across engines");
    // A footprint larger than the cache re-walked twice: eviction
    // order (hence misses) depends on the random victim stream.
    let wide = parse_asm(&progen::pointer_chase_program(32, 900, 3)).unwrap();
    let x = run(&wide, &mk(7, Engine::Block)).unwrap();
    let y = run(&wide, &mk(8, Engine::Block)).unwrap();
    assert_ne!(
        x.load_misses_total, y.load_misses_total,
        "different seeds should visibly change random evictions"
    );
}

#[test]
fn engine_parse_and_names() {
    assert_eq!("step".parse::<Engine>(), Ok(Engine::Step));
    assert_eq!("BLOCK".parse::<Engine>(), Ok(Engine::Block));
    assert!("jit".parse::<Engine>().is_err());
    assert_eq!(Engine::Step.name(), "step");
    assert_eq!(Engine::Block.name(), "block");
    assert_eq!(Engine::default(), Engine::Block);
    assert_eq!(Engine::Block.to_string(), "block");
}
