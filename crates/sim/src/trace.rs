//! Memory-trace capture and trace-driven cache simulation.
//!
//! The paper (§3) describes the conventional off-line methodology its
//! static heuristic replaces: *"instrument the code such that a memory
//! trace is produced … it is necessary to run the output memory trace
//! through a cache simulator in order to obtain the cache miss data"*.
//! This module implements that methodology: [`capture_trace`] records
//! every data access of one execution, and [`replay_trace`] runs the
//! trace through any cache geometry without re-executing the program —
//! which is exactly how one explores cache-configuration sweeps at
//! trace speed.
//!
//! # Example
//!
//! ```
//! use dl_mips::parse::parse_asm;
//! use dl_sim::trace::{capture_trace, replay_trace};
//! use dl_sim::{run, CacheConfig, RunConfig};
//!
//! let p = parse_asm(
//!     "main:\n\
//!      \tli $t0, 64\n\
//!      .Lloop:\n\
//!      \tsll $t1, $t0, 4\n\
//!      \taddu $t1, $t1, $gp\n\
//!      \tlw $t2, 0($t1)\n\
//!      \taddiu $t0, $t0, -1\n\
//!      \tbgtz $t0, .Lloop\n\
//!      \tli $v0, 10\n\
//!      \tsyscall\n",
//! ).unwrap();
//! let cfg = RunConfig::default();
//! let (trace, _result) = capture_trace(&p, &cfg).unwrap();
//! // Replay against a different geometry; no re-execution needed.
//! let small = replay_trace(&trace, CacheConfig::kb(8, 2), p.insts.len());
//! let direct = run(&p, &RunConfig { cache: CacheConfig::kb(8, 2), ..cfg }).unwrap();
//! assert_eq!(small.load_misses, direct.load_misses);
//! ```

use dl_mips::program::Program;

use crate::cache::{Cache, CacheConfig};
use crate::cpu::{Machine, RunConfig, Trap};
use crate::stats::RunResult;

/// One data access, as recorded during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instruction index of the access.
    pub at: u32,
    /// Effective address.
    pub addr: u32,
    /// `true` for stores.
    pub store: bool,
}

/// Statistics recovered by replaying a trace through a cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Per-instruction load miss counts (parallel to the program).
    pub load_misses: Vec<u64>,
    /// Per-instruction load hit counts.
    pub load_hits: Vec<u64>,
    /// Total load misses.
    pub load_misses_total: u64,
    /// Total misses including stores.
    pub dcache_misses: u64,
}

/// Runs `program` while recording its full data-access trace.
///
/// The trace can afterwards be replayed against arbitrary cache
/// geometries with [`replay_trace`]. Memory cost is 12 bytes per
/// dynamic access, so keep workloads scaled (as ours are).
///
/// # Errors
///
/// Returns the [`Trap`] if execution faults.
pub fn capture_trace(
    program: &Program,
    config: &RunConfig,
) -> Result<(Vec<TraceRecord>, RunResult), Trap> {
    let mut machine = Machine::new(program, config);
    machine.record_trace();
    let (result, trace) = machine.run_traced(config.max_steps)?;
    Ok((trace, result))
}

/// Replays a captured trace through a fresh cache of the given
/// geometry, recovering per-instruction miss statistics without
/// re-executing the program.
#[must_use]
pub fn replay_trace(
    trace: &[TraceRecord],
    geometry: CacheConfig,
    inst_count: usize,
) -> ReplayStats {
    let mut cache = Cache::new(geometry);
    let mut stats = ReplayStats {
        load_misses: vec![0; inst_count],
        load_hits: vec![0; inst_count],
        ..ReplayStats::default()
    };
    for rec in trace {
        let hit = cache.access(rec.addr);
        if rec.store {
            if !hit {
                stats.dcache_misses += 1;
            }
        } else if hit {
            stats.load_hits[rec.at as usize] += 1;
        } else {
            stats.load_misses[rec.at as usize] += 1;
            stats.load_misses_total += 1;
            stats.dcache_misses += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::run;
    use dl_mips::parse::parse_asm;

    fn scanning_program() -> Program {
        parse_asm(
            "main:\n\
             \tli  $t0, 0\n\
             \tli  $t3, 2048\n\
             .Lloop:\n\
             \tsll $t1, $t0, 2\n\
             \taddu $t1, $t1, $gp\n\
             \tlw  $t2, 0($t1)\n\
             \tsw  $t2, 4($gp)\n\
             \taddiu $t0, $t0, 1\n\
             \tbne $t0, $t3, .Lloop\n\
             \tli $v0, 10\n\
             \tsyscall\n",
        )
        .unwrap()
    }

    #[test]
    fn replay_matches_direct_simulation_same_config() {
        let p = scanning_program();
        let cfg = RunConfig::default();
        let (trace, captured) = capture_trace(&p, &cfg).unwrap();
        assert_eq!(trace.len() as u64, captured.dcache_accesses);
        let replay = replay_trace(&trace, cfg.cache, p.insts.len());
        assert_eq!(replay.load_misses, captured.load_misses);
        assert_eq!(replay.load_hits, captured.load_hits);
        assert_eq!(replay.dcache_misses, captured.dcache_misses);
    }

    #[test]
    fn replay_matches_direct_simulation_other_configs() {
        let p = scanning_program();
        let base = RunConfig::default();
        let (trace, _) = capture_trace(&p, &base).unwrap();
        for geometry in [
            CacheConfig::kb(1, 1),
            CacheConfig::kb(8, 2),
            CacheConfig::kb(64, 8),
        ] {
            let replay = replay_trace(&trace, geometry, p.insts.len());
            let direct = run(
                &p,
                &RunConfig {
                    cache: geometry,
                    ..base.clone()
                },
            )
            .unwrap();
            assert_eq!(
                replay.load_misses, direct.load_misses,
                "divergence at {geometry}"
            );
        }
    }

    #[test]
    fn trace_records_loads_and_stores() {
        let p = scanning_program();
        let (trace, result) = capture_trace(&p, &RunConfig::default()).unwrap();
        let stores = trace.iter().filter(|r| r.store).count() as u64;
        let loads = trace.iter().filter(|r| !r.store).count() as u64;
        assert_eq!(stores, result.stores);
        assert_eq!(loads, result.loads);
    }

    #[test]
    fn capture_does_not_perturb_results() {
        let p = scanning_program();
        let cfg = RunConfig::default();
        let (_, with_trace) = capture_trace(&p, &cfg).unwrap();
        let without = run(&p, &cfg).unwrap();
        assert_eq!(with_trace, without);
    }
}
