//! The per-load-site miss observatory: epoch-windowed miss counts.
//!
//! The paper's claim is about load *sites* — a handful of static loads
//! produce most misses. [`MissObservatory`] watches that claim live:
//! it splits a run into fixed-size epochs and records, per epoch, how
//! many misses each load site produced, so phase behaviour (a site hot
//! early, cold late) is visible instead of being averaged away.
//!
//! Epochs are windows of **observed load accesses**, not instructions.
//! The block engine batches instruction counting per dispatched
//! superblock (its running total is only flushed at the end of the
//! run), so instruction-aligned windows could not be reproduced
//! exactly across engines — but both engines feed every load through
//! the same per-access hook in the same order, so access-aligned
//! windows are deterministic *and* engine-invariant.
//!
//! Collection rides the simulator's existing instrumented (slow) path;
//! with the observatory off the fast path is untouched, which the
//! zero-overhead byte-compare test enforces.

/// Configuration for the miss observatory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Load accesses per epoch window. The final epoch may be shorter.
    pub epoch_len: u64,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        // Wide enough that even full workloads produce a handful of
        // epochs, narrow enough to expose phases in smoke runs.
        ObserveConfig { epoch_len: 1 << 20 }
    }
}

/// One finished epoch: which sites missed, and how often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochMisses {
    /// Zero-based epoch index.
    pub epoch: u32,
    /// Load accesses observed in this epoch (`epoch_len` for all but
    /// possibly the final epoch).
    pub loads: u64,
    /// Sparse `(site, misses)` pairs, site index ascending; sites with
    /// no misses in the epoch are omitted.
    pub misses: Vec<(u32, u64)>,
    /// Sparse `(site, hidden)` pairs: demand hits on lines a prefetcher
    /// filed ahead of time — misses the memory system hid rather than
    /// true locality. Empty unless a prefetcher is configured.
    pub hidden: Vec<(u32, u64)>,
}

/// Collects per-load-site miss counts in fixed-size epoch windows.
#[derive(Debug, Clone)]
pub struct MissObservatory {
    epoch_len: u64,
    /// Dense per-site miss counts for the epoch in progress.
    current: Vec<u64>,
    /// Dense per-site prefetch-hidden counts for the epoch in progress.
    current_hidden: Vec<u64>,
    /// Load accesses observed in the epoch in progress.
    seen: u64,
    epochs: Vec<EpochMisses>,
}

impl MissObservatory {
    /// Creates an observatory for a program with `sites` instruction
    /// slots.
    ///
    /// # Panics
    ///
    /// Panics if `config.epoch_len` is zero.
    #[must_use]
    pub fn new(sites: usize, config: ObserveConfig) -> Self {
        assert!(config.epoch_len > 0, "epoch_len must be positive");
        MissObservatory {
            epoch_len: config.epoch_len,
            current: vec![0; sites],
            current_hidden: vec![0; sites],
            seen: 0,
            epochs: Vec::new(),
        }
    }

    /// Records one load access at site `at`; rolls the epoch when the
    /// window fills.
    pub fn observe(&mut self, at: usize, miss: bool) {
        if miss {
            self.current[at] += 1;
        }
        self.seen += 1;
        if self.seen == self.epoch_len {
            self.roll();
        }
    }

    /// Records that the access about to be [`Self::observe`]d at `at`
    /// hit only because a prefetch filed the line ahead of demand.
    /// Call *before* `observe` so the count lands in the same epoch.
    pub fn observe_hidden(&mut self, at: usize) {
        self.current_hidden[at] += 1;
    }

    /// Closes the final (possibly partial) epoch. Idempotent.
    pub fn finish(&mut self) {
        if self.seen > 0 {
            self.roll();
        }
    }

    fn roll(&mut self) {
        fn drain_sparse(dense: &mut [u64]) -> Vec<(u32, u64)> {
            dense
                .iter_mut()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| {
                    let count = std::mem::take(n);
                    (u32::try_from(i).expect("site index fits u32"), count)
                })
                .collect()
        }
        let misses = drain_sparse(&mut self.current);
        let hidden = drain_sparse(&mut self.current_hidden);
        self.epochs.push(EpochMisses {
            epoch: u32::try_from(self.epochs.len()).expect("epoch count fits u32"),
            loads: self.seen,
            misses,
            hidden,
        });
        self.seen = 0;
    }

    /// The configured window size, in load accesses.
    #[must_use]
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// All finished epochs, in order. Call [`Self::finish`] first to
    /// include the trailing partial window.
    #[must_use]
    pub fn epochs(&self) -> &[EpochMisses] {
        &self.epochs
    }

    /// Dense per-site miss totals summed over every finished epoch
    /// (plus the window in progress).
    #[must_use]
    pub fn site_totals(&self) -> Vec<u64> {
        let mut totals = self.current.clone();
        for epoch in &self.epochs {
            for &(site, n) in &epoch.misses {
                totals[site as usize] += n;
            }
        }
        totals
    }

    /// Total misses observed across all sites and epochs.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.site_totals().iter().sum()
    }

    /// Dense per-site prefetch-hidden totals summed over every
    /// finished epoch (plus the window in progress).
    #[must_use]
    pub fn hidden_totals(&self) -> Vec<u64> {
        let mut totals = self.current_hidden.clone();
        for epoch in &self.epochs {
            for &(site, n) in &epoch.hidden {
                totals[site as usize] += n;
            }
        }
        totals
    }

    /// Total prefetch-hidden accesses observed across all sites.
    #[must_use]
    pub fn total_hidden(&self) -> u64 {
        self.hidden_totals().iter().sum()
    }

    /// Total load accesses observed.
    #[must_use]
    pub fn total_loads(&self) -> u64 {
        self.epochs.iter().map(|e| e.loads).sum::<u64>() + self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_roll_on_access_windows() {
        let mut obs = MissObservatory::new(4, ObserveConfig { epoch_len: 3 });
        // Epoch 0: sites 1 and 2 miss, site 1 hits once.
        obs.observe(1, true);
        obs.observe(1, false);
        obs.observe(2, true);
        // Epoch 1 (partial): site 1 misses again.
        obs.observe(1, true);
        obs.finish();
        let epochs = obs.epochs();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].epoch, 0);
        assert_eq!(epochs[0].loads, 3);
        assert_eq!(epochs[0].misses, vec![(1, 1), (2, 1)]);
        assert_eq!(epochs[1].loads, 1);
        assert_eq!(epochs[1].misses, vec![(1, 1)]);
        assert_eq!(obs.site_totals(), vec![0, 2, 1, 0]);
        assert_eq!(obs.total_misses(), 3);
        assert_eq!(obs.total_loads(), 4);
    }

    #[test]
    fn finish_is_idempotent_and_skips_empty_windows() {
        let mut obs = MissObservatory::new(2, ObserveConfig { epoch_len: 2 });
        obs.observe(0, true);
        obs.observe(0, true); // fills epoch 0 exactly
        obs.finish();
        obs.finish();
        assert_eq!(obs.epochs().len(), 1);
        assert_eq!(obs.site_totals(), vec![2, 0]);
    }

    #[test]
    fn totals_include_window_in_progress() {
        let mut obs = MissObservatory::new(1, ObserveConfig::default());
        obs.observe(0, true);
        assert_eq!(obs.site_totals(), vec![1]);
        assert_eq!(obs.total_loads(), 1);
        assert!(obs.epochs().is_empty());
    }

    #[test]
    #[should_panic(expected = "epoch_len must be positive")]
    fn zero_epoch_len_panics() {
        let _ = MissObservatory::new(1, ObserveConfig { epoch_len: 0 });
    }

    #[test]
    fn hidden_counts_land_in_the_same_epoch() {
        let mut obs = MissObservatory::new(3, ObserveConfig { epoch_len: 2 });
        // A prefetch-hidden hit on the epoch's final access: record
        // hidden first, then the access itself (which rolls the epoch).
        obs.observe(0, true);
        obs.observe_hidden(1);
        obs.observe(1, false);
        obs.observe(2, true);
        obs.finish();
        let epochs = obs.epochs();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].misses, vec![(0, 1)]);
        assert_eq!(epochs[0].hidden, vec![(1, 1)]);
        assert_eq!(epochs[1].hidden, vec![]);
        assert_eq!(obs.hidden_totals(), vec![0, 1, 0]);
        assert_eq!(obs.total_hidden(), 1);
        assert_eq!(obs.site_totals(), vec![1, 0, 1]);
    }
}
